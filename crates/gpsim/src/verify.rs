//! kverify — static verification of kernels before a single cycle runs.
//!
//! Where [`crate::sanitizer`] observes one execution of one geometry, this
//! module *proves* properties of the instruction stream for the whole
//! block, GPUVerify-style, using three cooperating analyses:
//!
//! 1. **Uniformity dataflow** over a CFG built from `Label` targets:
//!    values seeded from `threadIdx`-derived [`SpecialReg`]s are
//!    *divergent*; block/grid ids and parameters are *uniform*. A
//!    [`Inst::Bar`] control-dependent on a divergent branch is a static
//!    synccheck finding — the barrier-divergence hang simsan can only see
//!    when the scheduler reaches it.
//! 2. **Affine per-thread evaluation** of shared-memory address
//!    expressions (`k + cx·tidx + cy·tidy`): for each access whose
//!    address and divergent guards are provably affine, the analysis
//!    enumerates the exact byte footprint of every thread in the block.
//!    Two accesses that may fall in the same barrier-delimited interval
//!    (a reaching-barriers dataflow over the CFG, so loop back edges are
//!    handled) and touch a common byte from *different warps* with at
//!    least one write are a static racecheck finding; same-warp conflicts
//!    are exempt, matching both simsan and the paper's §3.3 warp-
//!    synchronous tail argument.
//! 3. **Bounds/init checking** of the same footprints against the
//!    kernel's declared `shared_bytes` and the set of statically written
//!    bytes.
//!
//! Shared accesses the affine lattice cannot prove (e.g. the loop-carried
//! stride register of the PGI-style `Looped` tree) are counted as
//! *unproven* and reported as warnings, never as errors: the verifier's
//! contract is zero false positives on hazard-free kernels, with simsan
//! as the dynamic backstop for whatever stays unproven.

use crate::coalesce::bank_conflict_degree;
use crate::exec::LaunchConfig;
use crate::ir::{CmpOp, Inst, Kernel, MemRef, Operand, Reg, SpecialReg};
use crate::types::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Classes of static findings, mirroring the dynamic
/// [`crate::sanitizer::HazardClass`] plus the purely static bounds and
/// bank-conflict diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyClass {
    /// Barrier control-dependent on a divergent branch.
    SyncCheck,
    /// Cross-warp shared-memory conflict within one barrier interval.
    RaceCheck,
    /// Shared access provably outside the declared shared window.
    BoundsCheck,
    /// Shared read of bytes no instruction ever writes.
    InitCheck,
    /// Intra-warp shared bank conflict (warn-only performance finding).
    BankConflict,
}

impl fmt::Display for VerifyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerifyClass::SyncCheck => "synccheck",
            VerifyClass::RaceCheck => "racecheck",
            VerifyClass::BoundsCheck => "boundscheck",
            VerifyClass::InitCheck => "initcheck",
            VerifyClass::BankConflict => "bankconflict",
        };
        f.write_str(s)
    }
}

/// One static finding, citing stable disasm instruction indices.
#[derive(Debug, Clone)]
pub struct VerifyFinding {
    pub class: VerifyClass,
    /// Instruction index the finding is anchored to.
    pub pc: usize,
    /// Second instruction involved (the other access of a race, the
    /// divergent branch of a synccheck).
    pub other_pc: Option<usize>,
    /// Warnings (bank conflicts, unproven accesses) never fail a kernel.
    pub warning: bool,
    pub detail: String,
}

impl fmt::Display for VerifyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = if self.warning { "warn" } else { "error" };
        write!(f, "{sev} [{}] at #{}", self.class, self.pc)?;
        if let Some(o) = self.other_pc {
            write!(f, " (with #{o})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The verifier's answer for one kernel at one launch geometry.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    pub kernel: String,
    pub block: (u32, u32),
    pub findings: Vec<VerifyFinding>,
    /// Shared accesses whose address or guard the affine analysis could
    /// not prove (skipped, also surfaced as warnings).
    pub unproven: usize,
}

impl VerifyReport {
    /// Number of findings of one class (warnings included).
    pub fn count(&self, c: VerifyClass) -> u64 {
        self.findings.iter().filter(|f| f.class == c).count() as u64
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> u64 {
        self.findings.iter().filter(|f| !f.warning).count() as u64
    }

    /// True when the kernel verified with no error-severity finding.
    pub fn clean(&self) -> bool {
        self.errors() == 0
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify {} (block {}x{}): {} error(s), {} warning(s), {} unproven",
            self.kernel,
            self.block.0,
            self.block.1,
            self.errors(),
            self.findings.len() as u64 - self.errors(),
            self.unproven
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Knobs for the static verifier.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Threads per warp (same-warp conflicts are exempt, as in simsan).
    pub warp_size: u32,
    /// Shared-memory banks for the bank-conflict diagnostic.
    pub shared_banks: u32,
    /// Emit warn-only bank-conflict findings.
    pub bank_conflicts: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            warp_size: 32,
            shared_banks: 32,
            bank_conflicts: true,
        }
    }
}

/// Statically verify `kernel` for a launch at `cfg`'s block shape.
///
/// Grid shape is irrelevant: the properties proved are intra-block. The
/// result is deterministic and purely structural — nothing is executed.
pub fn verify_kernel(kernel: &Kernel, cfg: LaunchConfig, vc: &VerifyConfig) -> VerifyReport {
    Verifier::new(kernel, cfg.block, vc).run()
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

pub(crate) struct Block {
    pub(crate) start: usize,
    /// Exclusive end.
    pub(crate) end: usize,
    /// Successor block indices; `nb` (one past the last block) is the
    /// virtual exit. For a conditional branch, `succs[0]` is the taken
    /// edge and `succs[1]` the fallthrough.
    pub(crate) succs: Vec<usize>,
}

pub(crate) struct Cfg {
    pub(crate) blocks: Vec<Block>,
    pub(crate) block_of: Vec<usize>,
}

impl Cfg {
    pub(crate) fn build(k: &Kernel) -> Cfg {
        let n = k.insts.len();
        let mut leaders = vec![false; n.max(1)];
        if n > 0 {
            leaders[0] = true;
        }
        for (pc, inst) in k.insts.iter().enumerate() {
            match inst {
                Inst::Bra { target, .. } => {
                    let t = k.target(*target);
                    if t < n {
                        leaders[t] = true;
                    }
                    if pc + 1 < n {
                        leaders[pc + 1] = true;
                    }
                }
                Inst::Ret if pc + 1 < n => leaders[pc + 1] = true,
                _ => {}
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&i| leaders[i]).collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        for (bi, &s) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(n);
            blocks.push(Block {
                start: s,
                end,
                succs: Vec::new(),
            });
        }
        let mut block_of = vec![0usize; n];
        for (bi, b) in blocks.iter().enumerate() {
            for slot in &mut block_of[b.start..b.end] {
                *slot = bi;
            }
        }
        let nb = blocks.len();
        let block_at = |pc: usize| if pc < n { block_of[pc] } else { nb };
        let succ_sets: Vec<Vec<usize>> = blocks
            .iter()
            .map(|b| match &k.insts[b.end - 1] {
                Inst::Bra { target, cond } => {
                    let mut s = vec![block_at(k.target(*target))];
                    if cond.is_some() {
                        s.push(block_at(b.end));
                    }
                    s
                }
                Inst::Ret => vec![nb],
                _ => vec![block_at(b.end)],
            })
            .collect();
        for (b, s) in blocks.iter_mut().zip(succ_sets) {
            b.succs = s;
        }
        Cfg { blocks, block_of }
    }

    /// The conditional-branch predicate register of `b`'s terminator.
    pub(crate) fn branch_cond(&self, k: &Kernel, b: usize) -> Option<(Reg, bool)> {
        match &k.insts[self.blocks[b].end - 1] {
            Inst::Bra {
                cond: Some((r, expect)),
                ..
            } => Some((*r, *expect)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Bitsets for postdominators
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq)]
pub(crate) struct BitSet(Vec<u64>);

impl BitSet {
    pub(crate) fn empty(n: usize) -> Self {
        BitSet(vec![0; n.div_ceil(64)])
    }
    pub(crate) fn full(n: usize) -> Self {
        let mut s = BitSet(vec![!0u64; n.div_ceil(64)]);
        if !n.is_multiple_of(64) {
            *s.0.last_mut().unwrap() = (1u64 << (n % 64)) - 1;
        }
        s
    }
    pub(crate) fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    pub(crate) fn has(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
    pub(crate) fn intersect(&mut self, other: &BitSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a &= b;
        }
    }
}

/// Iterative postdominator sets over the CFG plus a virtual exit node.
pub(crate) fn postdominators(cfg: &Cfg) -> Vec<BitSet> {
    let nb = cfg.blocks.len();
    let n = nb + 1;
    let mut pdom: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
    pdom[nb] = BitSet::empty(n);
    pdom[nb].set(nb);
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut new = BitSet::full(n);
            for &s in &cfg.blocks[b].succs {
                new.intersect(&pdom[s]);
            }
            new.set(b);
            if new != pdom[b] {
                pdom[b] = new;
                changed = true;
            }
        }
    }
    pdom
}

/// `deps[x]` = conditional branches `x` is control-dependent on, as
/// `(branch_block, edge_index)` with edge 0 = taken, 1 = fallthrough.
pub(crate) fn control_deps(cfg: &Cfg, pdom: &[BitSet]) -> Vec<Vec<(usize, usize)>> {
    let nb = cfg.blocks.len();
    let mut deps: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nb];
    for b in 0..nb {
        if cfg.blocks[b].succs.len() < 2 {
            continue;
        }
        for (e, &s) in cfg.blocks[b].succs.iter().enumerate() {
            for (x, dep) in deps.iter_mut().enumerate() {
                let strictly_postdominates = x != b && pdom[b].has(x);
                if pdom[s].has(x) && !strictly_postdominates {
                    dep.push((b, e));
                }
            }
        }
    }
    deps
}

// ---------------------------------------------------------------------------
// Affine values
// ---------------------------------------------------------------------------

/// The affine lattice: `Bot` (never defined) ⊑ `k + cx·tidx + cy·tidy` ⊑
/// `Top` (not provably affine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aff {
    Bot,
    Lin { k: i64, cx: i64, cy: i64 },
    Top,
}

impl Aff {
    fn konst(k: i64) -> Aff {
        Aff::Lin { k, cx: 0, cy: 0 }
    }

    fn as_const(self) -> Option<i64> {
        match self {
            Aff::Lin { k, cx: 0, cy: 0 } => Some(k),
            _ => None,
        }
    }

    fn join(self, other: Aff) -> Aff {
        match (self, other) {
            (Aff::Bot, x) | (x, Aff::Bot) => x,
            (a, b) if a == b => a,
            _ => Aff::Top,
        }
    }

    fn add(self, other: Aff) -> Aff {
        self.zip(other, i64::checked_add)
    }

    fn sub(self, other: Aff) -> Aff {
        self.zip(other, i64::checked_sub)
    }

    fn zip(self, other: Aff, f: impl Fn(i64, i64) -> Option<i64>) -> Aff {
        match (self, other) {
            (Aff::Bot, _) | (_, Aff::Bot) => Aff::Bot,
            (
                Aff::Lin { k, cx, cy },
                Aff::Lin {
                    k: k2,
                    cx: cx2,
                    cy: cy2,
                },
            ) => match (f(k, k2), f(cx, cx2), f(cy, cy2)) {
                (Some(k), Some(cx), Some(cy)) => Aff::Lin { k, cx, cy },
                _ => Aff::Top,
            },
            _ => Aff::Top,
        }
    }

    fn scale(self, m: i64) -> Aff {
        match self {
            Aff::Bot => Aff::Bot,
            Aff::Lin { k, cx, cy } => {
                match (k.checked_mul(m), cx.checked_mul(m), cy.checked_mul(m)) {
                    (Some(k), Some(cx), Some(cy)) => Aff::Lin { k, cx, cy },
                    _ => Aff::Top,
                }
            }
            Aff::Top => Aff::Top,
        }
    }

    fn mul(self, other: Aff) -> Aff {
        if let Some(c) = self.as_const() {
            other.scale(c)
        } else if let Some(c) = other.as_const() {
            self.scale(c)
        } else if self == Aff::Bot || other == Aff::Bot {
            Aff::Bot
        } else {
            Aff::Top
        }
    }

    /// Evaluate at a concrete thread `(x, y)`.
    fn eval(self, x: i64, y: i64) -> Option<i64> {
        match self {
            Aff::Lin { k, cx, cy } => Some(k + cx * x + cy * y),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Divergent parts
// ---------------------------------------------------------------------------

/// The thread-varying component of a register, with its uniform component
/// abstracted away: `v = uniform + divpart(tid)`. Two values whose
/// divergent parts are *structurally equal* differ by a uniform amount,
/// so any comparison between them is warp-uniform — this is what proves
/// the trip count of a `for (i = tid*chunk; i < tid*chunk + chunk; i++)`
/// worker-chunk loop uniform even though both bounds are thread-dependent.
///
/// `Mul` multipliers are restricted to immediates and *stable* registers
/// (single static def whose transitive operand chain is also single-def
/// and memory-free), so a symbol denotes the same runtime value at every
/// occurrence. Indices are assumed not to wrap, like the affine analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DivPart {
    /// Never defined on any path considered so far.
    Bot,
    /// No thread-varying component: the value is warp-uniform.
    Zero,
    TidX,
    TidY,
    Lane,
    /// `part * symbol` for a uniform, execution-stable symbol.
    Mul(Box<DivPart>, Sym),
    /// Thread-varying with unknown structure.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sym {
    Imm(i64),
    Reg(u32),
}

impl DivPart {
    fn join(self, other: DivPart) -> DivPart {
        match (self, other) {
            (DivPart::Bot, x) | (x, DivPart::Bot) => x,
            (a, b) if a == b => a,
            _ => DivPart::Unknown,
        }
    }

    fn is_bot(&self) -> bool {
        matches!(self, DivPart::Bot)
    }

    fn is_zero(&self) -> bool {
        matches!(self, DivPart::Zero)
    }

    /// Uniform = provably no thread-varying component. `Bot` (dead code)
    /// counts as uniform.
    fn uniform(&self) -> bool {
        matches!(self, DivPart::Bot | DivPart::Zero)
    }

    /// Known structure, usable for cancellation.
    fn concrete(&self) -> bool {
        !matches!(self, DivPart::Bot | DivPart::Unknown)
    }

    fn depth(&self) -> u32 {
        match self {
            DivPart::Mul(inner, _) => 1 + inner.depth(),
            _ => 0,
        }
    }

    /// `self * o`, where `o` must be uniform: a constant multiplier or a
    /// stable uniform register.
    fn mul(self, o: &Operand, stable: &[bool]) -> DivPart {
        if self.is_zero() {
            return DivPart::Zero;
        }
        let sym = match o {
            Operand::Imm(v) => match const_value(*v).as_const() {
                Some(0) => return DivPart::Zero,
                Some(1) => return self,
                Some(c) => Sym::Imm(c),
                None => return DivPart::Unknown,
            },
            Operand::Reg(r) => {
                if stable[r.0 as usize] {
                    Sym::Reg(r.0)
                } else {
                    return DivPart::Unknown;
                }
            }
        };
        if self.depth() >= 3 {
            DivPart::Unknown
        } else {
            DivPart::Mul(Box::new(self), sym)
        }
    }
}

fn const_value(v: Value) -> Aff {
    match v {
        Value::I32(x) => Aff::konst(x as i64),
        Value::I64(x) => Aff::konst(x),
        Value::U64(x) => i64::try_from(x).map_or(Aff::Top, Aff::konst),
        Value::F32(_) | Value::F64(_) | Value::Pred(_) => Aff::Top,
    }
}

fn eval_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

// ---------------------------------------------------------------------------
// Per-byte warp footprints
// ---------------------------------------------------------------------------

/// Which warps touch a byte. `Many` already implies a cross-warp pair, so
/// exact membership beyond the second warp is irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WarpSet {
    One(u32),
    Many,
}

impl WarpSet {
    fn add(self, w: u32) -> WarpSet {
        match self {
            WarpSet::One(a) if a == w => self,
            WarpSet::One(_) => WarpSet::Many,
            WarpSet::Many => WarpSet::Many,
        }
    }

    fn cross_warp(self, other: WarpSet) -> bool {
        match (self, other) {
            (WarpSet::One(a), WarpSet::One(b)) => a != b,
            _ => true,
        }
    }
}

/// One shared access with everything later phases need.
struct SharedAccess {
    pc: usize,
    store: bool,
    /// Barrier-interval reach set (bit 0 = kernel entry).
    reach: u128,
    /// Provable byte footprint: first byte -> warps touching it. `None`
    /// when the address or a divergent guard was not provable.
    touch: Option<BTreeMap<i64, WarpSet>>,
    /// Per-warp `(addr, size)` lists for the bank-conflict diagnostic.
    per_warp: HashMap<u32, Vec<(u64, usize)>>,
}

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

struct Verifier<'a> {
    k: &'a Kernel,
    block: (u32, u32),
    vc: &'a VerifyConfig,
    cfg: Cfg,
    deps: Vec<Vec<(usize, usize)>>,
    div_reg: Vec<bool>,
    vals: Vec<Aff>,
    /// `r -> (op, a, b)` for predicate registers with exactly one def.
    preds: HashMap<Reg, (CmpOp, Operand, Operand)>,
    findings: Vec<VerifyFinding>,
    unproven: usize,
}

impl<'a> Verifier<'a> {
    fn new(k: &'a Kernel, block: (u32, u32), vc: &'a VerifyConfig) -> Self {
        let cfg = Cfg::build(k);
        let pdom = postdominators(&cfg);
        let deps = control_deps(&cfg, &pdom);
        Verifier {
            k,
            block,
            vc,
            cfg,
            deps,
            div_reg: vec![false; k.num_regs as usize],
            vals: vec![Aff::Bot; k.num_regs as usize],
            preds: HashMap::new(),
            findings: Vec::new(),
            unproven: 0,
        }
    }

    fn run(mut self) -> VerifyReport {
        if self.k.insts.is_empty() {
            return self.report();
        }
        self.divergence_fixpoint();
        self.affine_fixpoint();
        self.collect_preds();
        self.synccheck();
        let reach = self.barrier_reach();
        let accesses = self.shared_accesses(&reach);
        self.racecheck(&accesses);
        self.initcheck(&accesses);
        if self.vc.bank_conflicts {
            self.bank_conflicts(&accesses);
        }
        self.report()
    }

    fn report(self) -> VerifyReport {
        VerifyReport {
            kernel: self.k.name.clone(),
            block: self.block,
            findings: self.findings,
            unproven: self.unproven,
        }
    }

    /// Is the value defined by reading `sr` thread-dependent at this
    /// block shape?
    fn special_divergent(&self, sr: SpecialReg) -> bool {
        let (bx, by) = self.block;
        match sr {
            SpecialReg::TidX => bx > 1,
            SpecialReg::TidY => by > 1,
            SpecialReg::LaneLinear => bx * by > 1,
            _ => false,
        }
    }

    /// *Stable* registers: exactly one static def, computing from
    /// immediates, params, specials, and other stable registers only (no
    /// memory). Such a register holds the same value at every dynamic
    /// execution of its def, so it can serve as a symbolic multiplier in
    /// [`DivPart`] comparisons. Computed pessimistically, so a
    /// self-recurrent single def (`r = r + 1`) never qualifies.
    fn stable_regs(&self) -> Vec<bool> {
        let nr = self.k.num_regs as usize;
        let mut def_count = vec![0u32; nr];
        for inst in &self.k.insts {
            if let Some(d) = inst.def() {
                def_count[d.0 as usize] += 1;
            }
        }
        let mut stable = vec![false; nr];
        loop {
            let mut changed = false;
            for inst in &self.k.insts {
                let Some(d) = inst.def() else { continue };
                if stable[d.0 as usize] || def_count[d.0 as usize] != 1 {
                    continue;
                }
                let pure = !matches!(
                    inst,
                    Inst::LdGlobal { .. } | Inst::LdShared { .. } | Inst::AtomGlobal { .. }
                );
                let mut ok = pure;
                inst.for_each_use(|u| ok &= stable[u.0 as usize]);
                if ok {
                    stable[d.0 as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                return stable;
            }
        }
    }

    /// Flow-insensitive divergence fixpoint over the [`DivPart`] domain:
    /// a register is divergent if any def reads a divergent source, is
    /// inherently thread-dependent, or sits in divergent control flow —
    /// *except* that a comparison of two values with equal divergent
    /// parts is uniform (the thread-varying components cancel).
    fn divergence_fixpoint(&mut self) {
        let nb = self.cfg.blocks.len();
        let nr = self.k.num_regs as usize;
        let stable = self.stable_regs();
        let mut dp: Vec<DivPart> = vec![DivPart::Bot; nr];
        let mut div_block = vec![false; nb];
        loop {
            let mut changed = false;
            for (b, div) in div_block.iter_mut().enumerate() {
                if *div {
                    continue;
                }
                let divergent_parent = self.deps[b].iter().any(|&(br, _)| {
                    self.cfg
                        .branch_cond(self.k, br)
                        .is_some_and(|(r, _)| !dp[r.0 as usize].uniform())
                });
                if divergent_parent {
                    *div = true;
                    changed = true;
                }
            }
            for (b, blk) in self.cfg.blocks.iter().enumerate() {
                for pc in blk.start..blk.end {
                    let inst = &self.k.insts[pc];
                    let Some(d) = inst.def() else { continue };
                    let nv = if div_block[b] {
                        DivPart::Unknown
                    } else {
                        self.dp_transfer(inst, &dp, &stable)
                    };
                    let joined = dp[d.0 as usize].clone().join(nv);
                    if joined != dp[d.0 as usize] {
                        dp[d.0 as usize] = joined;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for (r, part) in dp.into_iter().enumerate() {
            self.div_reg[r] = !part.uniform();
        }
    }

    /// [`DivPart`] transfer function for one instruction. Any `Bot` input
    /// yields `Bot` (no commitment until real values arrive), which keeps
    /// the equality-based cancellation rules monotone.
    fn dp_transfer(&self, inst: &Inst, dp: &[DivPart], stable: &[bool]) -> DivPart {
        use crate::ir::BinOp;
        let reg = |r: &Reg| dp[r.0 as usize].clone();
        let op = |o: &Operand| match o {
            Operand::Reg(r) => dp[r.0 as usize].clone(),
            Operand::Imm(_) => DivPart::Zero,
        };
        match inst {
            Inst::MovImm { .. } | Inst::ReadParam { .. } => DivPart::Zero,
            Inst::ReadSpecial { sr, .. } => {
                if self.special_divergent(*sr) {
                    match sr {
                        SpecialReg::TidX => DivPart::TidX,
                        SpecialReg::TidY => DivPart::TidY,
                        SpecialReg::LaneLinear => DivPart::Lane,
                        _ => DivPart::Unknown,
                    }
                } else {
                    DivPart::Zero
                }
            }
            Inst::Mov { src, .. } => reg(src),
            // Integer conversions preserve the divergent part for the
            // in-range values the codegen produces; float/pred lose the
            // additive structure but stay uniform if the source is.
            Inst::Cvt { ty, src, .. } => {
                let d = op(src);
                if ty.is_float() || *ty == crate::types::Ty::Pred {
                    match d {
                        DivPart::Bot => DivPart::Bot,
                        DivPart::Zero => DivPart::Zero,
                        _ => DivPart::Unknown,
                    }
                } else {
                    d
                }
            }
            Inst::Bin { op: bop, a, b, .. } => {
                let (da, db) = (op(a), op(b));
                if da.is_bot() || db.is_bot() {
                    return DivPart::Bot;
                }
                match bop {
                    BinOp::Add => match (da.is_zero(), db.is_zero()) {
                        (true, _) => db,
                        (_, true) => da,
                        _ => DivPart::Unknown,
                    },
                    BinOp::Sub => {
                        if db.is_zero() {
                            da
                        } else if da == db && da.concrete() {
                            DivPart::Zero
                        } else {
                            DivPart::Unknown
                        }
                    }
                    BinOp::Mul => {
                        if da.is_zero() && db.is_zero() {
                            DivPart::Zero
                        } else if db.is_zero() {
                            da.mul(b, stable)
                        } else if da.is_zero() {
                            db.mul(a, stable)
                        } else {
                            DivPart::Unknown
                        }
                    }
                    BinOp::Shl => {
                        if da.is_zero() && db.is_zero() {
                            DivPart::Zero
                        } else if let (false, Operand::Imm(v)) = (da.is_zero(), b) {
                            match const_value(*v).as_const() {
                                Some(c) if (0..63).contains(&c) => {
                                    da.mul(&Operand::Imm(Value::I64(1i64 << c)), stable)
                                }
                                _ => DivPart::Unknown,
                            }
                        } else {
                            DivPart::Unknown
                        }
                    }
                    BinOp::Div
                    | BinOp::Rem
                    | BinOp::Min
                    | BinOp::Max
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
                    | BinOp::Shr => {
                        if da.is_zero() && db.is_zero() {
                            DivPart::Zero
                        } else {
                            DivPart::Unknown
                        }
                    }
                }
            }
            Inst::Cmp { a, b, .. } => {
                let (da, db) = (op(a), op(b));
                if da.is_bot() || db.is_bot() {
                    DivPart::Bot
                } else if da == db && da.concrete() {
                    // Equal divergent parts cancel: `(u1 + f(tid)) <cmp>
                    // (u2 + f(tid))` is decided by `u1 <cmp> u2` alone.
                    DivPart::Zero
                } else {
                    DivPart::Unknown
                }
            }
            Inst::Un { a, .. } => {
                let d = op(a);
                if d.is_bot() {
                    DivPart::Bot
                } else if d.is_zero() {
                    DivPart::Zero
                } else {
                    DivPart::Unknown
                }
            }
            Inst::Select { cond, a, b, .. } => {
                let (dc, da, db) = (reg(cond), op(a), op(b));
                if dc.is_bot() || da.is_bot() || db.is_bot() {
                    DivPart::Bot
                } else if dc.is_zero() && da == db && da.concrete() {
                    da
                } else {
                    DivPart::Unknown
                }
            }
            Inst::LdGlobal { .. } | Inst::LdShared { .. } | Inst::AtomGlobal { .. } => {
                DivPart::Unknown
            }
            Inst::StGlobal { .. }
            | Inst::StShared { .. }
            | Inst::Bar
            | Inst::Bra { .. }
            | Inst::Ret => unreachable!("no def"),
        }
    }

    /// Flow-insensitive affine fixpoint over all defs; a register defined
    /// twice with different affine forms joins to `Top`.
    fn affine_fixpoint(&mut self) {
        let (bx, by) = (self.block.0 as i64, self.block.1 as i64);
        loop {
            let mut changed = false;
            for inst in &self.k.insts {
                let Some(d) = inst.def() else { continue };
                let operand = |o: &Operand| match o {
                    Operand::Reg(r) => self.vals[r.0 as usize],
                    Operand::Imm(v) => const_value(*v),
                };
                let nv = match inst {
                    Inst::MovImm { value, .. } => const_value(*value),
                    Inst::Mov { src, .. } => self.vals[src.0 as usize],
                    Inst::ReadSpecial { sr, .. } => match sr {
                        SpecialReg::TidX => Aff::Lin { k: 0, cx: 1, cy: 0 },
                        SpecialReg::TidY => Aff::Lin { k: 0, cx: 0, cy: 1 },
                        SpecialReg::TidZ => Aff::konst(0),
                        SpecialReg::LaneLinear => Aff::Lin {
                            k: 0,
                            cx: 1,
                            cy: bx,
                        },
                        SpecialReg::NTidX => Aff::konst(bx),
                        SpecialReg::NTidY => Aff::konst(by),
                        SpecialReg::NTidZ => Aff::konst(1),
                        SpecialReg::CtaIdX
                        | SpecialReg::CtaIdY
                        | SpecialReg::NCtaIdX
                        | SpecialReg::NCtaIdY => Aff::Top,
                    },
                    Inst::Bin { op, a, b, .. } => {
                        use crate::ir::BinOp::*;
                        let (a, b) = (operand(a), operand(b));
                        match op {
                            Add => a.add(b),
                            Sub => a.sub(b),
                            Mul => a.mul(b),
                            Shl => match b.as_const() {
                                Some(c) if (0..63).contains(&c) => a.scale(1i64 << c),
                                _ => Aff::Top,
                            },
                            Div | Rem | Min | Max | And | Or | Xor | Shr => {
                                match (a.as_const(), b.as_const()) {
                                    (Some(x), Some(y)) => {
                                        const_binop(*op, x, y).map_or(Aff::Top, Aff::konst)
                                    }
                                    _ => Aff::Top,
                                }
                            }
                        }
                    }
                    Inst::Un { op, a, .. } => match (op, operand(a)) {
                        (crate::ir::UnOp::Neg, v) => Aff::konst(0).sub(v),
                        (crate::ir::UnOp::Abs, v) => match v.as_const() {
                            Some(c) => Aff::konst(c.abs()),
                            None => Aff::Top,
                        },
                        _ => Aff::Top,
                    },
                    Inst::Select { a, b, .. } => {
                        let (a, b) = (operand(a), operand(b));
                        if a == b {
                            a
                        } else {
                            Aff::Top
                        }
                    }
                    // Int conversions preserve the value for the in-range
                    // indices the codegen produces; float/pred do not.
                    Inst::Cvt { ty, src, .. } => {
                        if ty.is_float() || *ty == crate::types::Ty::Pred {
                            Aff::Top
                        } else {
                            operand(src)
                        }
                    }
                    Inst::ReadParam { .. }
                    | Inst::Cmp { .. }
                    | Inst::LdGlobal { .. }
                    | Inst::LdShared { .. }
                    | Inst::AtomGlobal { .. } => Aff::Top,
                    Inst::StGlobal { .. }
                    | Inst::StShared { .. }
                    | Inst::Bar
                    | Inst::Bra { .. }
                    | Inst::Ret => unreachable!("no def"),
                };
                let joined = self.vals[d.0 as usize].join(nv);
                if joined != self.vals[d.0 as usize] {
                    self.vals[d.0 as usize] = joined;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Record the comparison behind every single-def predicate register,
    /// so divergent guards can be evaluated per thread.
    fn collect_preds(&mut self) {
        let mut def_count: HashMap<Reg, u32> = HashMap::new();
        for inst in &self.k.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_default() += 1;
            }
        }
        for inst in &self.k.insts {
            if let Inst::Cmp { op, dst, a, b, .. } = inst {
                if def_count.get(dst) == Some(&1) {
                    self.preds.insert(*dst, (*op, *a, *b));
                }
            }
        }
    }

    fn operand_aff(&self, o: &Operand) -> Aff {
        match o {
            Operand::Reg(r) => self.vals[r.0 as usize],
            Operand::Imm(v) => const_value(*v),
        }
    }

    /// Static synccheck: a barrier control-dependent on a divergent
    /// branch can be reached by part of a warp set — the canonical
    /// barrier-divergence hang.
    fn synccheck(&mut self) {
        for (pc, inst) in self.k.insts.iter().enumerate() {
            if !matches!(inst, Inst::Bar) {
                continue;
            }
            let b = self.cfg.block_of[pc];
            for &(br, _) in &self.deps[b] {
                let Some((r, _)) = self.cfg.branch_cond(self.k, br) else {
                    continue;
                };
                if self.div_reg[r.0 as usize] {
                    let branch_pc = self.cfg.blocks[br].end - 1;
                    self.findings.push(VerifyFinding {
                        class: VerifyClass::SyncCheck,
                        pc,
                        other_pc: Some(branch_pc),
                        warning: false,
                        detail: format!(
                            "barrier is control-dependent on divergent branch `{}`",
                            crate::ir::format_inst(&self.k.insts[branch_pc])
                        ),
                    });
                }
            }
        }
    }

    /// Reaching-barriers dataflow: for every instruction, the set of
    /// barriers (plus kernel entry, bit 0) that may immediately precede
    /// it on some path. Two shared accesses may be concurrent iff their
    /// sets intersect. Returns per-block entry states.
    fn barrier_reach(&self) -> Vec<u128> {
        let nb = self.cfg.blocks.len();
        let mut bar_bit: HashMap<usize, u128> = HashMap::new();
        let mut next = 1u32;
        for (pc, inst) in self.k.insts.iter().enumerate() {
            if matches!(inst, Inst::Bar) {
                // Saturate past 127 barriers: extra barriers share a bit,
                // which is conservative (more may-concurrency, and every
                // kernel here has far fewer).
                bar_bit.insert(pc, 1u128 << next.min(127));
                next += 1;
            }
        }
        let transfer = |bi: usize, mut cur: u128| {
            for pc in self.cfg.blocks[bi].start..self.cfg.blocks[bi].end {
                if let Some(&bit) = bar_bit.get(&pc) {
                    cur = bit;
                }
            }
            cur
        };
        let mut inn = vec![0u128; nb];
        inn[0] = 1;
        loop {
            let mut changed = false;
            for b in 0..nb {
                let out = transfer(b, inn[b]);
                for &s in &self.cfg.blocks[b].succs {
                    if s < nb && inn[s] | out != inn[s] {
                        inn[s] |= out;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Re-key to per-pc reach for shared accesses on demand: store the
        // block entry states; `reach_at` walks the prefix.
        inn
    }

    fn reach_at(&self, inn: &[u128], pc: usize) -> u128 {
        let b = self.cfg.block_of[pc];
        let mut cur = inn[b];
        for p in self.cfg.blocks[b].start..pc {
            if matches!(self.k.insts[p], Inst::Bar) {
                // Recompute the bar's bit: count bars up to and incl. p.
                let id = self.k.insts[..=p]
                    .iter()
                    .filter(|i| matches!(i, Inst::Bar))
                    .count() as u32;
                cur = 1u128 << id.min(127);
            }
        }
        cur
    }

    /// Divergent, evaluable guards for the block of `pc`:
    /// `Some(guards)` where each guard decides per-thread membership, or
    /// `None` when some divergent guard is not provable. Uniform guards
    /// are ignored: they gate whether the access happens at all, not
    /// *which* threads of the block perform it together.
    #[allow(clippy::type_complexity)]
    fn guards_of(&self, pc: usize) -> Option<Vec<(CmpOp, Aff, Aff, bool)>> {
        let b = self.cfg.block_of[pc];
        let mut out = Vec::new();
        for &(br, edge) in &self.deps[b] {
            let Some((r, expect)) = self.cfg.branch_cond(self.k, br) else {
                continue;
            };
            if !self.div_reg[r.0 as usize] {
                continue;
            }
            let &(op, a, bb) = self.preds.get(&r)?;
            let (aa, ba) = (self.operand_aff(&a), self.operand_aff(&bb));
            if !matches!(aa, Aff::Lin { .. }) || !matches!(ba, Aff::Lin { .. }) {
                return None;
            }
            // Membership: predicate == expect takes edge 0 (the branch),
            // != expect falls through to edge 1.
            let want_true = expect == (edge == 0);
            out.push((op, aa, ba, want_true));
        }
        Some(out)
    }

    /// Enumerate every shared access with its interval reach set and, when
    /// provable, its exact per-byte warp footprint over the block.
    fn shared_accesses(&mut self, inn: &[u128]) -> Vec<SharedAccess> {
        let (bx, by) = self.block;
        let shared = self.k.shared_bytes as i64;
        let mut out = Vec::new();
        for (pc, inst) in self.k.insts.iter().enumerate() {
            let (store, ty, mref) = match inst {
                Inst::LdShared { ty, mref, .. } => (false, ty, mref),
                Inst::StShared { ty, src: _, mref } => (true, ty, mref),
                _ => continue,
            };
            let size = ty.size();
            let reach = self.reach_at(inn, pc);
            let addr = self.mref_aff(mref);
            let guards = self.guards_of(pc);
            let (touch, per_warp, oob) = match (addr, guards) {
                (Aff::Lin { .. }, Some(guards)) => {
                    let mut touch = BTreeMap::new();
                    let mut per_warp: HashMap<u32, Vec<(u64, usize)>> = HashMap::new();
                    let mut oob: Option<(i64, u32, u32)> = None;
                    for y in 0..by {
                        for x in 0..bx {
                            let member = guards.iter().all(|&(op, a, b, want)| {
                                let (av, bv) =
                                    (a.eval(x as i64, y as i64), b.eval(x as i64, y as i64));
                                match (av, bv) {
                                    (Some(av), Some(bv)) => eval_cmp(op, av, bv) == want,
                                    _ => false,
                                }
                            });
                            if !member {
                                continue;
                            }
                            let byte = addr.eval(x as i64, y as i64).unwrap();
                            if byte < 0 || byte + size as i64 > shared {
                                oob.get_or_insert((byte, x, y));
                            }
                            let lin = y * bx + x;
                            let warp = lin / self.vc.warp_size.max(1);
                            for b in byte..byte + size as i64 {
                                touch
                                    .entry(b)
                                    .and_modify(|w: &mut WarpSet| *w = w.add(warp))
                                    .or_insert(WarpSet::One(warp));
                            }
                            if byte >= 0 {
                                per_warp.entry(warp).or_default().push((byte as u64, size));
                            }
                        }
                    }
                    (Some(touch), per_warp, oob)
                }
                _ => {
                    self.unproven += 1;
                    self.findings.push(VerifyFinding {
                        class: VerifyClass::RaceCheck,
                        pc,
                        other_pc: None,
                        warning: true,
                        detail: format!(
                            "shared {} `{}` not provable by the affine analysis; \
                             relying on the dynamic sanitizer",
                            if store { "store" } else { "load" },
                            crate::ir::format_inst(inst)
                        ),
                    });
                    (None, HashMap::new(), None)
                }
            };
            if let Some((byte, x, y)) = oob {
                self.findings.push(VerifyFinding {
                    class: VerifyClass::BoundsCheck,
                    pc,
                    other_pc: None,
                    warning: false,
                    detail: format!(
                        "thread ({x},{y}) touches shared byte {byte} outside the declared \
                         {shared}-byte window"
                    ),
                });
            }
            out.push(SharedAccess {
                pc,
                store,
                reach,
                touch,
                per_warp,
            });
        }
        out
    }

    fn mref_aff(&self, m: &MemRef) -> Aff {
        let base = match &m.base {
            Operand::Reg(r) => self.vals[r.0 as usize],
            Operand::Imm(v) => const_value(*v),
        };
        let idx = match m.index {
            Some(r) => self.vals[r.0 as usize],
            None => Aff::konst(0),
        };
        let scaled = match i64::try_from(m.scale) {
            Ok(s) => idx.scale(s),
            Err(_) => Aff::Top,
        };
        base.add(scaled).add(Aff::konst(m.disp))
    }

    /// Static racecheck: two shared accesses, at least one a store, that
    /// may share a barrier interval and touch a common byte from two
    /// different warps.
    fn racecheck(&mut self, accesses: &[SharedAccess]) {
        for i in 0..accesses.len() {
            for j in i..accesses.len() {
                let (a, b) = (&accesses[i], &accesses[j]);
                if !a.store && !b.store {
                    continue;
                }
                if a.reach & b.reach == 0 {
                    continue;
                }
                let (Some(ta), Some(tb)) = (&a.touch, &b.touch) else {
                    continue;
                };
                let (small, big) = if ta.len() <= tb.len() {
                    (ta, tb)
                } else {
                    (tb, ta)
                };
                let conflict = small.iter().find_map(|(byte, wa)| {
                    big.get(byte)
                        .filter(|wb| wa.cross_warp(**wb))
                        .map(|_| *byte)
                });
                if let Some(byte) = conflict {
                    let kind = match (a.store, b.store) {
                        (true, true) => "write-write",
                        _ => "read-write",
                    };
                    self.findings.push(VerifyFinding {
                        class: VerifyClass::RaceCheck,
                        pc: a.pc,
                        other_pc: Some(b.pc).filter(|&p| p != a.pc),
                        warning: false,
                        detail: format!(
                            "{kind} conflict on shared byte {byte} between warps in the same \
                             barrier interval (`{}` / `{}`)",
                            crate::ir::format_inst(&self.k.insts[a.pc]),
                            crate::ir::format_inst(&self.k.insts[b.pc]),
                        ),
                    });
                }
            }
        }
    }

    /// Static initcheck: a provable shared load reading bytes no shared
    /// store in the kernel can ever write. Skipped entirely when any
    /// store is unproven (its footprint is unknown).
    fn initcheck(&mut self, accesses: &[SharedAccess]) {
        if accesses.iter().any(|a| a.store && a.touch.is_none()) {
            return;
        }
        let mut written: std::collections::HashSet<i64> = std::collections::HashSet::new();
        for a in accesses.iter().filter(|a| a.store) {
            if let Some(t) = &a.touch {
                written.extend(t.keys());
            }
        }
        for a in accesses.iter().filter(|a| !a.store) {
            let Some(t) = &a.touch else { continue };
            if let Some(byte) = t.keys().find(|b| !written.contains(b)) {
                self.findings.push(VerifyFinding {
                    class: VerifyClass::InitCheck,
                    pc: a.pc,
                    other_pc: None,
                    warning: false,
                    detail: format!(
                        "shared load reads byte {byte}, which no store in this kernel writes"
                    ),
                });
            }
        }
    }

    /// Warn-only bank-conflict diagnostic: worst replay degree of each
    /// provable shared access across the block's warps, via the same
    /// [`bank_conflict_degree`] model the timing simulator charges.
    fn bank_conflicts(&mut self, accesses: &[SharedAccess]) {
        for a in accesses {
            if a.touch.is_none() {
                continue;
            }
            let worst = a
                .per_warp
                .values()
                .map(|accs| bank_conflict_degree(accs, self.vc.shared_banks))
                .max()
                .unwrap_or(0);
            if worst > 1 {
                self.findings.push(VerifyFinding {
                    class: VerifyClass::BankConflict,
                    pc: a.pc,
                    other_pc: None,
                    warning: true,
                    detail: format!(
                        "{}-way shared bank conflict (`{}`)",
                        worst,
                        crate::ir::format_inst(&self.k.insts[a.pc])
                    ),
                });
            }
        }
    }
}

fn const_binop(op: crate::ir::BinOp, a: i64, b: i64) -> Option<i64> {
    use crate::ir::BinOp::*;
    match op {
        Add => a.checked_add(b),
        Sub => a.checked_sub(b),
        Mul => a.checked_mul(b),
        Div => a.checked_div(b),
        Rem => a.checked_rem(b),
        Min => Some(a.min(b)),
        Max => Some(a.max(b)),
        And => Some(a & b),
        Or => Some(a | b),
        Xor => Some(a ^ b),
        Shl => u32::try_from(b).ok().and_then(|s| a.checked_shl(s)),
        Shr => u32::try_from(b).ok().and_then(|s| a.checked_shr(s)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::ir::BinOp;
    use crate::types::Ty;

    fn vc() -> VerifyConfig {
        VerifyConfig::default()
    }

    fn verify(k: &Kernel, block_x: u32) -> VerifyReport {
        verify_kernel(k, LaunchConfig::d1(1, block_x), &vc())
    }

    /// `tid < 32 ? bar : bar` — both warps reach *different* barriers:
    /// the canonical static synccheck case.
    #[test]
    fn divergent_barrier_is_flagged() {
        let mut b = KernelBuilder::new("divbar");
        let tid = b.special(SpecialReg::TidX);
        let c = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
        let els = b.new_label();
        let end = b.new_label();
        b.bra_unless(c, els);
        b.bar();
        b.bra(end);
        b.place(els);
        b.bar();
        b.place(end);
        let k = b.finish();
        let rep = verify(&k, 64);
        assert_eq!(rep.count(VerifyClass::SyncCheck), 2, "{rep}");
        assert!(!rep.clean());
    }

    /// A barrier inside a loop whose bound is a (uniform) parameter must
    /// not be flagged: params are uniform even though their value is
    /// unknown.
    #[test]
    fn uniform_param_loop_barrier_is_clean() {
        let mut b = KernelBuilder::new("uloop");
        let n = b.param(0);
        let i = b.mov_imm(Value::I32(0));
        let top = b.new_label();
        let done = b.new_label();
        b.place(top);
        let c = b.cmp(CmpOp::Ge, Ty::I32, i, n);
        b.bra_if(c, done);
        b.bar();
        let i2 = b.bin(BinOp::Add, Ty::I32, i, Value::I32(1));
        b.mov_to(i, i2);
        b.bra(top);
        b.place(done);
        let k = b.finish();
        let rep = verify(&k, 64);
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.count(VerifyClass::SyncCheck), 0);
    }

    fn slab_kernel(f: impl FnOnce(&mut KernelBuilder, usize, Reg)) -> Kernel {
        let mut b = KernelBuilder::new("slab");
        let slab = b.alloc_shared(256, 8);
        let tid = b.special(SpecialReg::TidX);
        f(&mut b, slab, tid);
        b.finish()
    }

    /// Cross-warp read-after-write without a barrier races; the same
    /// pattern with a barrier in between verifies clean.
    #[test]
    fn cross_warp_race_and_barrier_fix() {
        let direct = |with_bar: bool| {
            slab_kernel(|b, slab, tid| {
                let t64 = b.cvt(Ty::I64, tid);
                b.st_shared(
                    Ty::I32,
                    MemRef::indexed(Value::U64(slab as u64), t64, 4),
                    tid,
                );
                if with_bar {
                    b.bar();
                }
                // tid 0..32 reads slot tid+32 (warp 1's slots).
                let g = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(32));
                let skip = b.new_label();
                b.bra_unless(g, skip);
                let o = b.bin(BinOp::Add, Ty::I32, tid, Value::I32(32));
                let o64 = b.cvt(Ty::I64, o);
                let _ = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), o64, 4));
                b.place(skip);
            })
        };
        let racy = verify(&direct(false), 64);
        assert!(racy.count(VerifyClass::RaceCheck) > 0, "{racy}");
        let fixed = verify(&direct(true), 64);
        assert!(fixed.clean(), "{fixed}");
    }

    /// Same conflict pattern entirely within one warp: exempt, as in
    /// simsan (lockstep warp execution orders the accesses).
    #[test]
    fn same_warp_conflict_is_exempt() {
        let k = slab_kernel(|b, slab, tid| {
            let t64 = b.cvt(Ty::I64, tid);
            b.st_shared(
                Ty::I32,
                MemRef::indexed(Value::U64(slab as u64), t64, 4),
                tid,
            );
            // tid reads slot 31-tid: different thread, same warp.
            let m = b.bin(BinOp::Sub, Ty::I32, Value::I32(31), tid);
            let m64 = b.cvt(Ty::I64, m);
            let _ = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), m64, 4));
        });
        let rep = verify(&k, 32);
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.count(VerifyClass::RaceCheck), 0);
    }

    /// Reading shared memory nothing wrote is a static initcheck finding.
    #[test]
    fn uninitialized_read_is_flagged() {
        let k = slab_kernel(|b, slab, tid| {
            let t64 = b.cvt(Ty::I64, tid);
            let _ = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), t64, 4));
        });
        let rep = verify(&k, 32);
        assert_eq!(rep.count(VerifyClass::InitCheck), 1, "{rep}");
    }

    /// An access past `shared_bytes` is a static boundscheck finding.
    #[test]
    fn out_of_bounds_access_is_flagged() {
        let k = slab_kernel(|b, slab, tid| {
            let t64 = b.cvt(Ty::I64, tid);
            b.st_shared(
                Ty::I32,
                MemRef::indexed(Value::U64(slab as u64), t64, 4).with_disp(256 - 4),
                tid,
            );
        });
        let rep = verify(&k, 32);
        assert_eq!(rep.count(VerifyClass::BoundsCheck), 1, "{rep}");
    }

    /// Stride-32 word accesses within a warp all land in one bank: the
    /// warn-only bank-conflict diagnostic fires, but the kernel is clean.
    #[test]
    fn bank_conflict_is_warn_only() {
        let mut b = KernelBuilder::new("banks");
        let slab = b.alloc_shared(32 * 32 * 4, 8);
        let tid = b.special(SpecialReg::TidX);
        let idx = b.bin(BinOp::Mul, Ty::I32, tid, Value::I32(32));
        let i64v = b.cvt(Ty::I64, idx);
        b.st_shared(
            Ty::I32,
            MemRef::indexed(Value::U64(slab as u64), i64v, 4),
            tid,
        );
        let k = b.finish();
        let rep = verify(&k, 32);
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.count(VerifyClass::BankConflict), 1, "{rep}");
        // Degree is in the message.
        assert!(rep.findings[0].detail.contains("32-way"), "{rep}");
    }

    /// An address the affine lattice cannot express (shared load through
    /// a value loaded from memory) is unproven, not a false positive.
    #[test]
    fn unprovable_address_is_a_warning_not_an_error() {
        let k = slab_kernel(|b, slab, tid| {
            let t64 = b.cvt(Ty::I64, tid);
            b.st_shared(
                Ty::I32,
                MemRef::indexed(Value::U64(slab as u64), t64, 4),
                tid,
            );
            b.bar();
            let v = b.ld_shared(Ty::I32, MemRef::direct(Value::U64(slab as u64)));
            let v64 = b.cvt(Ty::I64, v);
            let _ = b.ld_shared(Ty::I32, MemRef::indexed(Value::U64(slab as u64), v64, 4));
        });
        let rep = verify(&k, 64);
        assert!(rep.clean(), "{rep}");
        assert_eq!(rep.unproven, 1);
    }
}
