//! Simulated device memories.
//!
//! Global memory is a flat byte array with a bump allocator (like a simple
//! `cudaMalloc` pool). Shared memory is a per-block byte array sized by the
//! kernel's requirement and bounded by the device's per-block limit.

use crate::error::SimError;
use crate::types::{Ty, Value};

/// Alignment applied to every global allocation (matches CUDA's 256-byte
/// `cudaMalloc` alignment, and keeps allocations segment-aligned for the
/// coalescing model).
pub const GLOBAL_ALLOC_ALIGN: u64 = 256;

/// A device global-memory buffer handle: base byte address plus length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferHandle {
    pub addr: u64,
    pub len: u64,
}

impl BufferHandle {
    /// Address one past the end of the buffer.
    pub fn end(&self) -> u64 {
        self.addr + self.len
    }
}

/// Simulated global memory with a bump allocator.
#[derive(Debug)]
pub struct GlobalMemory {
    data: Vec<u8>,
    next: u64,
    capacity: u64,
}

impl GlobalMemory {
    /// Create a global memory of `capacity` bytes. Address 0 is reserved as
    /// a null address: allocations start at `GLOBAL_ALLOC_ALIGN`.
    pub fn new(capacity: u64) -> Self {
        GlobalMemory {
            data: Vec::new(),
            next: GLOBAL_ALLOC_ALIGN,
            capacity,
        }
    }

    /// Bytes currently allocated (high-water mark).
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocate `len` bytes, 256-byte aligned.
    pub fn alloc(&mut self, len: u64) -> Result<BufferHandle, SimError> {
        let addr = (self.next + GLOBAL_ALLOC_ALIGN - 1) & !(GLOBAL_ALLOC_ALIGN - 1);
        let end = addr
            .checked_add(len)
            .ok_or(SimError::OutOfMemory { requested: len })?;
        if end > self.capacity {
            return Err(SimError::OutOfMemory { requested: len });
        }
        self.next = end;
        if self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        Ok(BufferHandle { addr, len })
    }

    /// Reset the allocator and zero the memory (device reset).
    pub fn reset(&mut self) {
        self.next = GLOBAL_ALLOC_ALIGN;
        self.data.clear();
    }

    fn check(&self, addr: u64, len: usize) -> Result<(), SimError> {
        let end = addr as usize + len;
        if addr == 0 || end > self.data.len() {
            return Err(SimError::GlobalOutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Read a typed value.
    pub fn read(&self, ty: Ty, addr: u64) -> Result<Value, SimError> {
        self.check(addr, ty.size())?;
        Ok(Value::from_bytes(ty, &self.data[addr as usize..]))
    }

    /// Write a typed value.
    pub fn write(&mut self, addr: u64, v: Value) -> Result<(), SimError> {
        let (bytes, n) = v.to_bytes();
        self.check(addr, n)?;
        self.data[addr as usize..addr as usize + n].copy_from_slice(&bytes[..n]);
        Ok(())
    }

    /// Raw byte read (host-side transfers).
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) -> Result<(), SimError> {
        self.check(addr, out.len())?;
        out.copy_from_slice(&self.data[addr as usize..addr as usize + out.len()]);
        Ok(())
    }

    /// Raw byte write (host-side transfers).
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) -> Result<(), SimError> {
        self.check(addr, src.len())?;
        self.data[addr as usize..addr as usize + src.len()].copy_from_slice(src);
        Ok(())
    }
}

/// Per-block shared memory.
#[derive(Debug)]
pub struct SharedMemory {
    data: Vec<u8>,
}

impl SharedMemory {
    /// Create a shared memory window of `len` bytes (zero-initialized; real
    /// hardware leaves it undefined, but deterministic zero simplifies
    /// failure-reproduction tests).
    pub fn new(len: usize) -> Self {
        SharedMemory { data: vec![0; len] }
    }

    /// Window size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the kernel requested no shared memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn check(&self, off: u64, len: usize) -> Result<(), SimError> {
        if off as usize + len > self.data.len() {
            return Err(SimError::SharedOutOfBounds {
                off,
                len,
                window: self.data.len(),
            });
        }
        Ok(())
    }

    /// Read a typed value at byte offset `off`.
    pub fn read(&self, ty: Ty, off: u64) -> Result<Value, SimError> {
        self.check(off, ty.size())?;
        Ok(Value::from_bytes(ty, &self.data[off as usize..]))
    }

    /// Write a typed value at byte offset `off`.
    pub fn write(&mut self, off: u64, v: Value) -> Result<(), SimError> {
        let (bytes, n) = v.to_bytes();
        self.check(off, n)?;
        self.data[off as usize..off as usize + n].copy_from_slice(&bytes[..n]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new(1 << 20);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(10).unwrap();
        assert_eq!(a.addr % GLOBAL_ALLOC_ALIGN, 0);
        assert_eq!(b.addr % GLOBAL_ALLOC_ALIGN, 0);
        assert!(b.addr >= a.end());
        assert_ne!(a.addr, 0, "null address must stay unmapped");
    }

    #[test]
    fn alloc_oom() {
        let mut m = GlobalMemory::new(1024);
        assert!(m.alloc(512).is_ok());
        assert!(matches!(m.alloc(1024), Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn global_rw_roundtrip() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(64).unwrap();
        m.write(b.addr, Value::F64(2.5)).unwrap();
        m.write(b.addr + 8, Value::I32(-9)).unwrap();
        assert_eq!(m.read(Ty::F64, b.addr).unwrap(), Value::F64(2.5));
        assert_eq!(m.read(Ty::I32, b.addr + 8).unwrap(), Value::I32(-9));
    }

    #[test]
    fn global_oob_and_null_detected() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(8).unwrap();
        assert!(m.read(Ty::I64, b.addr).is_ok());
        assert!(matches!(
            m.read(Ty::I32, 0),
            Err(SimError::GlobalOutOfBounds { .. })
        ));
        assert!(matches!(
            m.write(m.used() + 100_000, Value::I32(1)),
            Err(SimError::GlobalOutOfBounds { .. })
        ));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(16).unwrap();
        m.write_bytes(b.addr, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        m.read_bytes(b.addr, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn shared_rw_and_oob() {
        let mut s = SharedMemory::new(32);
        s.write(0, Value::F32(1.5)).unwrap();
        assert_eq!(s.read(Ty::F32, 0).unwrap(), Value::F32(1.5));
        assert!(matches!(
            s.write(30, Value::F64(1.0)),
            Err(SimError::SharedOutOfBounds { .. })
        ));
        assert!(!s.is_empty());
        assert!(SharedMemory::new(0).is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(8).unwrap();
        m.write(b.addr, Value::I64(7)).unwrap();
        m.reset();
        let b2 = m.alloc(8).unwrap();
        assert_eq!(b2.addr, b.addr);
        assert_eq!(m.read(Ty::I64, b2.addr).unwrap(), Value::I64(0));
    }
}
