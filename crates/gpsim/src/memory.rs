//! Simulated device memories.
//!
//! Global memory is a flat byte array with a bump allocator (like a simple
//! `cudaMalloc` pool). Shared memory is a per-block byte array sized by the
//! kernel's requirement and bounded by the device's per-block limit.

use crate::error::SimError;
use crate::types::{Ty, Value};

/// Alignment applied to every global allocation (matches CUDA's 256-byte
/// `cudaMalloc` alignment, and keeps allocations segment-aligned for the
/// coalescing model).
pub const GLOBAL_ALLOC_ALIGN: u64 = 256;

/// A device global-memory buffer handle: base byte address plus length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferHandle {
    pub addr: u64,
    pub len: u64,
}

impl BufferHandle {
    /// Address one past the end of the buffer.
    pub fn end(&self) -> u64 {
        self.addr + self.len
    }
}

/// Simulated global memory with a bump allocator.
#[derive(Debug)]
pub struct GlobalMemory {
    data: Vec<u8>,
    next: u64,
    capacity: u64,
}

impl GlobalMemory {
    /// Create a global memory of `capacity` bytes. Address 0 is reserved as
    /// a null address: allocations start at `GLOBAL_ALLOC_ALIGN`.
    pub fn new(capacity: u64) -> Self {
        GlobalMemory {
            data: Vec::new(),
            next: GLOBAL_ALLOC_ALIGN,
            capacity,
        }
    }

    /// Bytes currently allocated (allocator high-water mark, excluding the
    /// reserved 256-byte null page — a fresh device reports 0).
    pub fn used(&self) -> u64 {
        self.next - GLOBAL_ALLOC_ALIGN
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocate `len` bytes, 256-byte aligned.
    pub fn alloc(&mut self, len: u64) -> Result<BufferHandle, SimError> {
        let addr = (self.next + GLOBAL_ALLOC_ALIGN - 1) & !(GLOBAL_ALLOC_ALIGN - 1);
        let end = addr
            .checked_add(len)
            .ok_or(SimError::OutOfMemory { requested: len })?;
        if end > self.capacity {
            return Err(SimError::OutOfMemory { requested: len });
        }
        self.next = end;
        if self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        Ok(BufferHandle { addr, len })
    }

    /// Reset the allocator and zero the memory (device reset).
    pub fn reset(&mut self) {
        self.next = GLOBAL_ALLOC_ALIGN;
        self.data.clear();
    }

    /// Bounds-check a `[addr, addr + len)` access. Kernel index arithmetic
    /// can produce wild pointers anywhere in the 64-bit space, so the end
    /// address must be computed overflow-safely: a pointer near `u64::MAX`
    /// is out of bounds, not a wrapped-around hit.
    pub(crate) fn check(&self, addr: u64, len: usize) -> Result<(), SimError> {
        let end = addr.checked_add(len as u64);
        match end {
            Some(end) if addr != 0 && end <= self.data.len() as u64 => Ok(()),
            _ => Err(SimError::GlobalOutOfBounds { addr, len }),
        }
    }

    /// Read a typed value.
    pub fn read(&self, ty: Ty, addr: u64) -> Result<Value, SimError> {
        self.check(addr, ty.size())?;
        Ok(Value::from_bytes(ty, &self.data[addr as usize..]))
    }

    /// Write a typed value.
    pub fn write(&mut self, addr: u64, v: Value) -> Result<(), SimError> {
        let (bytes, n) = v.to_bytes();
        self.check(addr, n)?;
        self.data[addr as usize..addr as usize + n].copy_from_slice(&bytes[..n]);
        Ok(())
    }

    /// Raw byte read (host-side transfers).
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) -> Result<(), SimError> {
        self.check(addr, out.len())?;
        out.copy_from_slice(&self.data[addr as usize..addr as usize + out.len()]);
        Ok(())
    }

    /// Raw byte write (host-side transfers).
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) -> Result<(), SimError> {
        self.check(addr, src.len())?;
        self.data[addr as usize..addr as usize + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Copy the 256-byte page starting at `page * PAGE_BYTES` into `out`,
    /// zero-filling any tail past the mapped range (the last allocation
    /// need not end on a page boundary).
    fn copy_page(&self, page: u64, out: &mut [u8; PAGE_BYTES as usize]) {
        let start = (page * PAGE_BYTES) as usize;
        let avail = self.data.len().saturating_sub(start).min(out.len());
        out[..avail].copy_from_slice(&self.data[start..start + avail]);
        out[avail..].fill(0);
    }

    /// Read a typed value as the compiled tier's raw bit encoding without
    /// materializing a [`Value`] (identical bounds and bit semantics to
    /// [`GlobalMemory::read`] followed by the row encoding).
    pub(crate) fn read_bits(&self, ty: Ty, addr: u64) -> Result<u64, SimError> {
        self.check(addr, ty.size())?;
        Ok(load_bits(ty, &self.data[addr as usize..]))
    }

    /// Write a typed value given as the compiled tier's raw bit encoding.
    pub(crate) fn write_bits(&mut self, ty: Ty, addr: u64, bits: u64) -> Result<(), SimError> {
        let n = ty.size();
        self.check(addr, n)?;
        store_bits(ty, bits, &mut self.data[addr as usize..addr as usize + n]);
        Ok(())
    }

    /// Span read for a perfectly coalesced warp access: `out.len()`
    /// consecutive `ty`-typed values starting at `addr`. Returns `false`
    /// (having done nothing) when the span cannot be served whole — the
    /// caller then replays per-lane for exact error semantics.
    pub(crate) fn read_span_bits(&self, ty: Ty, addr: u64, out: &mut [u64]) -> bool {
        let n = ty.size();
        if self.check(addr, out.len() * n).is_err() {
            return false;
        }
        let src = &self.data[addr as usize..];
        for (i, o) in out.iter_mut().enumerate() {
            *o = load_bits(ty, &src[i * n..]);
        }
        true
    }

    /// Span write twin of [`GlobalMemory::read_span_bits`].
    pub(crate) fn write_span_bits(&mut self, ty: Ty, addr: u64, src: &[u64]) -> bool {
        let n = ty.size();
        if self.check(addr, src.len() * n).is_err() {
            return false;
        }
        let dst = &mut self.data[addr as usize..];
        for (i, &bits) in src.iter().enumerate() {
            store_bits(ty, bits, &mut dst[i * n..i * n + n]);
        }
        true
    }

    /// Commit one overlay page: copy exactly the dirty bytes into this
    /// memory. All dirty bytes were bounds-checked when written into the
    /// overlay and the mapped range cannot shrink during a launch, so this
    /// cannot fail.
    pub(crate) fn apply_overlay_page(&mut self, page: u64, p: &OverlayPage) {
        let base = (page * PAGE_BYTES) as usize;
        for (w, &word) in p.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                let i = w * 64 + bit;
                self.data[base + i] = p.bytes[i];
                bits &= bits - 1;
            }
        }
    }
}

/// Decode the compiled tier's u64 row encoding for `ty` from little-endian
/// bytes: the bit-level twin of [`Value::from_bytes`] (4-byte types are
/// zero-extended, floats carry their IEEE bits, predicates normalize any
/// non-zero byte to 1 exactly as `bytes[0] != 0` does).
#[inline(always)]
pub(crate) fn load_bits(ty: Ty, bytes: &[u8]) -> u64 {
    match ty.size() {
        4 => u32::from_le_bytes(bytes[..4].try_into().unwrap()) as u64,
        8 => u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        _ => (bytes[0] != 0) as u64,
    }
}

/// Encode the compiled tier's u64 row encoding into `ty.size()` little-endian
/// bytes: the bit-level twin of [`Value::to_bytes`]. Predicate rows only ever
/// hold 0 or 1, matching `v as u8`.
#[inline(always)]
pub(crate) fn store_bits(ty: Ty, bits: u64, out: &mut [u8]) {
    match ty.size() {
        4 => out[..4].copy_from_slice(&(bits as u32).to_le_bytes()),
        8 => out[..8].copy_from_slice(&bits.to_le_bytes()),
        _ => out[0] = bits as u8,
    }
}

/// Set the dirty bits for byte range `[off, off + len)` word-wise.
fn mark_dirty(dirty: &mut [u64; PAGE_BYTES as usize / 64], off: usize, len: usize) {
    let end = off + len;
    let mut b = off;
    while b < end {
        let w = b / 64;
        let lo = b % 64;
        let take = (64 - lo).min(end - b);
        let m = if take == 64 {
            u64::MAX
        } else {
            ((1u64 << take) - 1) << lo
        };
        dirty[w] |= m;
        b += take;
    }
}

/// Overlay page granularity. Equal to [`GLOBAL_ALLOC_ALIGN`], so distinct
/// allocations never share a page's *allocation*, though neighbouring
/// blocks may still write disjoint bytes of one page (dirty bitmaps keep
/// that safe).
pub(crate) const PAGE_BYTES: u64 = GLOBAL_ALLOC_ALIGN;

/// Deterministic multiplicative hasher for page ids / byte addresses on the
/// overlay hot path (a fixed-seed FxHash-style mix; `RandomState` would be
/// needlessly slow here and determinism of iteration is never relied on).
#[derive(Clone, Copy, Default)]
pub(crate) struct AddrHasher(u64);

impl std::hash::Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

/// `BuildHasher` for [`AddrHasher`].
#[derive(Clone, Copy, Default)]
pub(crate) struct AddrHashState;

impl std::hash::BuildHasher for AddrHashState {
    type Hasher = AddrHasher;
    fn build_hasher(&self) -> AddrHasher {
        AddrHasher(0)
    }
}

pub(crate) type AddrSet = std::collections::HashSet<u64, AddrHashState>;
type PageMap = std::collections::HashMap<u64, OverlayPage, AddrHashState>;

/// One copy-on-write page of a [`BlockOverlay`]: a private copy of the base
/// page plus a bitmap of the bytes this block actually wrote (only those
/// are copied back at commit, so blocks writing disjoint bytes of a shared
/// page merge losslessly).
pub(crate) struct OverlayPage {
    pub(crate) bytes: Box<[u8; PAGE_BYTES as usize]>,
    pub(crate) dirty: [u64; PAGE_BYTES as usize / 64],
}

/// One deferred global atomic, replayed in program order at commit time so
/// cross-block atomic combination (including floating-point, where order
/// changes the bits) happens in exactly the sequential block order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AtomicLogEntry {
    pub(crate) op: crate::ir::AtomOp,
    pub(crate) ty: Ty,
    pub(crate) addr: u64,
    pub(crate) val: Value,
}

/// Why a block aborted: a real simulator error, or a memory-access pattern
/// the copy-on-write overlay cannot reproduce bit-identically — the launch
/// is then re-run on the sequential path, which handles everything.
#[derive(Debug)]
pub(crate) enum AccessAbort {
    Sim(SimError),
    NeedsSequential(&'static str),
}

impl From<SimError> for AccessAbort {
    fn from(e: SimError) -> Self {
        AccessAbort::Sim(e)
    }
}

/// A block's private view of global memory during parallel execution: reads
/// fall through to the frozen launch-entry snapshot (`base`), writes go to
/// copy-on-write pages, and atomics are logged for ordered replay. Each
/// block also records which pages it read from, so the committer can prove
/// no block observed a value an earlier block's writes would have changed —
/// and fall back to sequential execution when it cannot.
pub(crate) struct BlockOverlay<'a> {
    base: &'a GlobalMemory,
    pages: PageMap,
    /// Pages any load touched (conservatively including overlay hits: an
    /// overlay page is a *base* snapshot everywhere the block didn't write).
    read_pages: AddrSet,
    atomics: Vec<AtomicLogEntry>,
    /// Byte addresses targeted by logged atomics; a plain access overlapping
    /// these cannot see the deferred atomic's effect and forces fallback.
    atomic_bytes: AddrSet,
    /// One-entry cache: a page id already recorded in `read_pages` and known
    /// absent from `pages`, so repeat reads can hit `base` directly without
    /// hashing. Invalidated when a write materializes that overlay page.
    base_page: u64,
}

impl<'a> BlockOverlay<'a> {
    pub(crate) fn new(base: &'a GlobalMemory) -> Self {
        BlockOverlay {
            base,
            pages: PageMap::default(),
            read_pages: AddrSet::default(),
            atomics: Vec::new(),
            atomic_bytes: AddrSet::default(),
            base_page: u64::MAX,
        }
    }

    /// Bounds-check against the base mapping (the mapped range cannot
    /// change during a launch). Exposed so the atomic path can surface an
    /// out-of-bounds error *before* validating the operation type, matching
    /// the sequential executor's error precedence (read first, then eval).
    pub(crate) fn check(&self, addr: u64, len: usize) -> Result<(), SimError> {
        self.base.check(addr, len)
    }

    fn overlaps_atomic(&self, addr: u64, len: usize) -> bool {
        !self.atomic_bytes.is_empty()
            && (addr..addr + len as u64).any(|b| self.atomic_bytes.contains(&b))
    }

    fn gather(&mut self, addr: u64, out: &mut [u8]) {
        let mut i = 0usize;
        while i < out.len() {
            let a = addr + i as u64;
            let page = a / PAGE_BYTES;
            let off = (a % PAGE_BYTES) as usize;
            let n = (out.len() - i).min(PAGE_BYTES as usize - off);
            self.read_pages.insert(page);
            match self.pages.get(&page) {
                Some(p) => out[i..i + n].copy_from_slice(&p.bytes[off..off + n]),
                None => {
                    let start = (page * PAGE_BYTES) as usize + off;
                    out[i..i + n].copy_from_slice(&self.base.data[start..start + n]);
                }
            }
            i += n;
        }
    }

    /// Read a typed value (bounds and error semantics identical to
    /// [`GlobalMemory::read`]).
    pub(crate) fn read(&mut self, ty: Ty, addr: u64) -> Result<Value, AccessAbort> {
        self.base.check(addr, ty.size())?;
        if self.overlaps_atomic(addr, ty.size()) {
            return Err(AccessAbort::NeedsSequential(
                "plain read of an address this block updated atomically",
            ));
        }
        let mut buf = [0u8; 8];
        self.gather(addr, &mut buf[..ty.size()]);
        Ok(Value::from_bytes(ty, &buf))
    }

    /// Write a typed value into the copy-on-write overlay.
    pub(crate) fn write(&mut self, addr: u64, v: Value) -> Result<(), AccessAbort> {
        let (bytes, n) = v.to_bytes();
        self.base.check(addr, n)?;
        if self.overlaps_atomic(addr, n) {
            return Err(AccessAbort::NeedsSequential(
                "plain write to an address this block updated atomically",
            ));
        }
        self.scatter(addr, &bytes[..n]);
        Ok(())
    }

    /// Copy already-bounds-checked bytes into the overlay pages they span,
    /// marking them dirty (and dropping the base-page read cache for any
    /// page this write materializes).
    fn scatter(&mut self, addr: u64, src: &[u8]) {
        let n = src.len();
        let mut i = 0usize;
        while i < n {
            let a = addr + i as u64;
            let page = a / PAGE_BYTES;
            let off = (a % PAGE_BYTES) as usize;
            let seg = (n - i).min(PAGE_BYTES as usize - off);
            if page == self.base_page {
                self.base_page = u64::MAX;
            }
            let p = self.pages.entry(page).or_insert_with(|| {
                let mut bytes = Box::new([0u8; PAGE_BYTES as usize]);
                self.base.copy_page(page, &mut bytes);
                OverlayPage {
                    bytes,
                    dirty: [0; PAGE_BYTES as usize / 64],
                }
            });
            p.bytes[off..off + seg].copy_from_slice(&src[i..i + seg]);
            for b in off..off + seg {
                p.dirty[b / 64] |= 1u64 << (b % 64);
            }
            i += seg;
        }
    }

    /// Bit-encoding twin of [`BlockOverlay::read`]: same bounds checks, same
    /// atomic-overlap fallback, same observed bytes — minus the `Value`
    /// round-trip, plus a one-page cache that skips both hash-map probes on
    /// the common many-reads-per-page pattern.
    pub(crate) fn read_bits(&mut self, ty: Ty, addr: u64) -> Result<u64, AccessAbort> {
        let n = ty.size();
        self.base.check(addr, n)?;
        if self.overlaps_atomic(addr, n) {
            return Err(AccessAbort::NeedsSequential(
                "plain read of an address this block updated atomically",
            ));
        }
        let page = addr / PAGE_BYTES;
        let off = (addr % PAGE_BYTES) as usize;
        if off + n <= PAGE_BYTES as usize {
            if page != self.base_page {
                self.read_pages.insert(page);
                if let Some(p) = self.pages.get(&page) {
                    return Ok(load_bits(ty, &p.bytes[off..]));
                }
                self.base_page = page;
            }
            Ok(load_bits(ty, &self.base.data[addr as usize..]))
        } else {
            let mut buf = [0u8; 8];
            self.gather(addr, &mut buf[..n]);
            Ok(load_bits(ty, &buf))
        }
    }

    /// Span read for a perfectly coalesced warp access. Returns `false`
    /// (having touched no tracking state) when the span cannot take the
    /// fast path — out of bounds, overlapping a logged atomic, or lanes
    /// straddling a page boundary (only possible unaligned) — and the
    /// caller replays per-lane for exact error/fallback semantics.
    pub(crate) fn read_span_bits(&mut self, ty: Ty, addr: u64, out: &mut [u64]) -> bool {
        let n = ty.size();
        let count = out.len();
        if self.base.check(addr, count * n).is_err()
            || !self.atomic_bytes.is_empty()
            || !addr.is_multiple_of(n as u64)
        {
            return false;
        }
        let mut i = 0usize;
        while i < count {
            let a = addr + (i * n) as u64;
            let page = a / PAGE_BYTES;
            let off = (a % PAGE_BYTES) as usize;
            // `addr` is element-aligned and PAGE_BYTES is a multiple of
            // every element size, so lanes never straddle the page edge.
            let fit = ((PAGE_BYTES as usize - off) / n).min(count - i);
            let src: &[u8] = if page == self.base_page {
                &self.base.data[a as usize..]
            } else {
                self.read_pages.insert(page);
                match self.pages.get(&page) {
                    Some(p) => &p.bytes[off..],
                    None => {
                        self.base_page = page;
                        &self.base.data[a as usize..]
                    }
                }
            };
            for (l, o) in out[i..i + fit].iter_mut().enumerate() {
                *o = load_bits(ty, &src[l * n..]);
            }
            i += fit;
        }
        true
    }

    /// Span write twin of [`BlockOverlay::read_span_bits`].
    pub(crate) fn write_span_bits(&mut self, ty: Ty, addr: u64, src: &[u64]) -> bool {
        let n = ty.size();
        let count = src.len();
        if self.base.check(addr, count * n).is_err()
            || !self.atomic_bytes.is_empty()
            || !addr.is_multiple_of(n as u64)
        {
            return false;
        }
        let mut i = 0usize;
        while i < count {
            let a = addr + (i * n) as u64;
            let page = a / PAGE_BYTES;
            let off = (a % PAGE_BYTES) as usize;
            let fit = ((PAGE_BYTES as usize - off) / n).min(count - i);
            if page == self.base_page {
                self.base_page = u64::MAX;
            }
            let p = self.pages.entry(page).or_insert_with(|| {
                let mut bytes = Box::new([0u8; PAGE_BYTES as usize]);
                self.base.copy_page(page, &mut bytes);
                OverlayPage {
                    bytes,
                    dirty: [0; PAGE_BYTES as usize / 64],
                }
            });
            for (l, &bits) in src[i..i + fit].iter().enumerate() {
                store_bits(ty, bits, &mut p.bytes[off + l * n..off + (l + 1) * n]);
            }
            mark_dirty(&mut p.dirty, off, fit * n);
            i += fit;
        }
        true
    }

    /// Bit-encoding twin of [`BlockOverlay::write`].
    pub(crate) fn write_bits(&mut self, ty: Ty, addr: u64, bits: u64) -> Result<(), AccessAbort> {
        let n = ty.size();
        self.base.check(addr, n)?;
        if self.overlaps_atomic(addr, n) {
            return Err(AccessAbort::NeedsSequential(
                "plain write to an address this block updated atomically",
            ));
        }
        let mut buf = [0u8; 8];
        store_bits(ty, bits, &mut buf[..n]);
        self.scatter(addr, &buf[..n]);
        Ok(())
    }

    /// Log a global atomic for ordered replay at commit. The caller has
    /// already validated the (op, ty) combination, so replay cannot fail.
    pub(crate) fn log_atomic(&mut self, e: AtomicLogEntry) -> Result<(), AccessAbort> {
        let n = e.ty.size();
        self.base.check(e.addr, n)?;
        // A block that mixes plain writes and atomics on one address has an
        // intra-block ordering the dirty-bytes-then-replay commit would
        // reorder; take the sequential path instead.
        for b in e.addr..e.addr + n as u64 {
            let page = b / PAGE_BYTES;
            if let Some(p) = self.pages.get(&page) {
                let off = (b % PAGE_BYTES) as usize;
                if p.dirty[off / 64] & (1u64 << (off % 64)) != 0 {
                    return Err(AccessAbort::NeedsSequential(
                        "atomic to an address this block wrote plainly",
                    ));
                }
            }
            self.atomic_bytes.insert(b);
        }
        self.atomics.push(e);
        Ok(())
    }

    /// Tear the overlay off its base borrow so the committer can take
    /// `&mut GlobalMemory` again.
    pub(crate) fn into_data(self) -> OverlayData {
        OverlayData {
            pages: self.pages,
            read_pages: self.read_pages,
            atomics: self.atomics,
            atomic_bytes: self.atomic_bytes,
        }
    }
}

/// The owned outcome of one block's overlay (see [`BlockOverlay`]).
pub(crate) struct OverlayData {
    pub(crate) pages: PageMap,
    pub(crate) read_pages: AddrSet,
    pub(crate) atomics: Vec<AtomicLogEntry>,
    pub(crate) atomic_bytes: AddrSet,
}

impl OverlayData {
    /// Pages this block's commit will modify (written pages plus atomic
    /// targets).
    pub(crate) fn write_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages
            .keys()
            .copied()
            .chain(self.atomic_bytes.iter().map(|b| b / PAGE_BYTES))
    }

    /// True if any page this block read from base is in `written` — i.e. an
    /// earlier block's commit would have changed what this block observed.
    pub(crate) fn reads_overlap(&self, written: &AddrSet) -> bool {
        if written.is_empty() {
            return false;
        }
        self.read_pages.iter().any(|p| written.contains(p))
    }
}

/// Per-block shared memory.
#[derive(Debug)]
pub struct SharedMemory {
    data: Vec<u8>,
}

impl SharedMemory {
    /// Create a shared memory window of `len` bytes (zero-initialized; real
    /// hardware leaves it undefined, but deterministic zero simplifies
    /// failure-reproduction tests).
    pub fn new(len: usize) -> Self {
        SharedMemory { data: vec![0; len] }
    }

    /// Window size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the kernel requested no shared memory.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn check(&self, off: u64, len: usize) -> Result<(), SimError> {
        // Checked end-of-access: a wild offset near `u64::MAX` must be an
        // out-of-bounds error, not a debug overflow panic (or, worse, a
        // release-mode wraparound that *passes* the check and then panics
        // when slicing).
        let in_bounds = usize::try_from(off)
            .ok()
            .and_then(|o| o.checked_add(len))
            .is_some_and(|end| end <= self.data.len());
        if !in_bounds {
            return Err(SimError::SharedOutOfBounds {
                off,
                len,
                window: self.data.len(),
            });
        }
        Ok(())
    }

    /// Read a typed value at byte offset `off`.
    pub fn read(&self, ty: Ty, off: u64) -> Result<Value, SimError> {
        self.check(off, ty.size())?;
        Ok(Value::from_bytes(ty, &self.data[off as usize..]))
    }

    /// Write a typed value at byte offset `off`.
    pub fn write(&mut self, off: u64, v: Value) -> Result<(), SimError> {
        let (bytes, n) = v.to_bytes();
        self.check(off, n)?;
        self.data[off as usize..off as usize + n].copy_from_slice(&bytes[..n]);
        Ok(())
    }

    /// Bit-encoding twin of [`SharedMemory::read`] for the compiled tier.
    pub(crate) fn read_bits(&self, ty: Ty, off: u64) -> Result<u64, SimError> {
        self.check(off, ty.size())?;
        Ok(load_bits(ty, &self.data[off as usize..]))
    }

    /// Bit-encoding twin of [`SharedMemory::write`] for the compiled tier.
    pub(crate) fn write_bits(&mut self, ty: Ty, off: u64, bits: u64) -> Result<(), SimError> {
        let n = ty.size();
        self.check(off, n)?;
        store_bits(ty, bits, &mut self.data[off as usize..off as usize + n]);
        Ok(())
    }

    /// Span read for a coalesced warp access (see
    /// [`GlobalMemory::read_span_bits`]); `false` means replay per-lane.
    pub(crate) fn read_span_bits(&self, ty: Ty, off: u64, out: &mut [u64]) -> bool {
        let n = ty.size();
        if self.check(off, out.len() * n).is_err() {
            return false;
        }
        let src = &self.data[off as usize..];
        for (i, o) in out.iter_mut().enumerate() {
            *o = load_bits(ty, &src[i * n..]);
        }
        true
    }

    /// Span write twin of [`SharedMemory::read_span_bits`].
    pub(crate) fn write_span_bits(&mut self, ty: Ty, off: u64, src: &[u64]) -> bool {
        let n = ty.size();
        if self.check(off, src.len() * n).is_err() {
            return false;
        }
        let dst = &mut self.data[off as usize..];
        for (i, &bits) in src.iter().enumerate() {
            store_bits(ty, bits, &mut dst[i * n..i * n + n]);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new(1 << 20);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(10).unwrap();
        assert_eq!(a.addr % GLOBAL_ALLOC_ALIGN, 0);
        assert_eq!(b.addr % GLOBAL_ALLOC_ALIGN, 0);
        assert!(b.addr >= a.end());
        assert_ne!(a.addr, 0, "null address must stay unmapped");
    }

    #[test]
    fn alloc_oom() {
        let mut m = GlobalMemory::new(1024);
        assert!(m.alloc(512).is_ok());
        assert!(matches!(m.alloc(1024), Err(SimError::OutOfMemory { .. })));
    }

    #[test]
    fn global_rw_roundtrip() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(64).unwrap();
        m.write(b.addr, Value::F64(2.5)).unwrap();
        m.write(b.addr + 8, Value::I32(-9)).unwrap();
        assert_eq!(m.read(Ty::F64, b.addr).unwrap(), Value::F64(2.5));
        assert_eq!(m.read(Ty::I32, b.addr + 8).unwrap(), Value::I32(-9));
    }

    #[test]
    fn global_oob_and_null_detected() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(8).unwrap();
        assert!(m.read(Ty::I64, b.addr).is_ok());
        assert!(matches!(
            m.read(Ty::I32, 0),
            Err(SimError::GlobalOutOfBounds { .. })
        ));
        assert!(matches!(
            m.write(m.used() + 100_000, Value::I32(1)),
            Err(SimError::GlobalOutOfBounds { .. })
        ));
    }

    /// Regression: a wild shared-memory offset near `u64::MAX` is an
    /// out-of-bounds error, not an arithmetic overflow panic (debug) or a
    /// wrapped check that passes and panics at the slice (release).
    #[test]
    fn shared_wild_offset_is_oob_not_overflow() {
        let mut s = SharedMemory::new(64);
        assert!(matches!(
            s.read(Ty::I32, u64::MAX - 1),
            Err(SimError::SharedOutOfBounds { .. })
        ));
        assert!(matches!(
            s.write(u64::MAX - 2, Value::I32(1)),
            Err(SimError::SharedOutOfBounds { .. })
        ));
        // Boundary still exact: last word is readable, one past is not.
        assert!(s.read(Ty::I32, 60).is_ok());
        assert!(matches!(
            s.read(Ty::I64, 60),
            Err(SimError::SharedOutOfBounds { .. })
        ));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(16).unwrap();
        m.write_bytes(b.addr, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        m.read_bytes(b.addr, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn shared_rw_and_oob() {
        let mut s = SharedMemory::new(32);
        s.write(0, Value::F32(1.5)).unwrap();
        assert_eq!(s.read(Ty::F32, 0).unwrap(), Value::F32(1.5));
        assert!(matches!(
            s.write(30, Value::F64(1.0)),
            Err(SimError::SharedOutOfBounds { .. })
        ));
        assert!(!s.is_empty());
        assert!(SharedMemory::new(0).is_empty());
    }

    /// Regression: a wild pointer near `u64::MAX` must report out-of-bounds,
    /// not wrap the end-address computation (panic in debug builds, bounds
    /// bypass in release).
    #[test]
    fn near_max_address_is_out_of_bounds() {
        let mut m = GlobalMemory::new(1 << 16);
        let _ = m.alloc(64).unwrap();
        for addr in [u64::MAX, u64::MAX - 1, u64::MAX - 7] {
            assert!(matches!(
                m.read(Ty::I64, addr),
                Err(SimError::GlobalOutOfBounds { .. })
            ));
            assert!(matches!(
                m.write(addr, Value::I64(1)),
                Err(SimError::GlobalOutOfBounds { .. })
            ));
        }
        let mut out = [0u8; 4];
        assert!(matches!(
            m.read_bytes(u64::MAX - 2, &mut out),
            Err(SimError::GlobalOutOfBounds { .. })
        ));
    }

    /// Regression: `used()` excludes the reserved null page — a fresh
    /// device has allocated nothing.
    #[test]
    fn used_excludes_null_page() {
        let mut m = GlobalMemory::new(1 << 16);
        assert_eq!(m.used(), 0);
        m.alloc(8).unwrap();
        assert_eq!(m.used(), 8);
        m.alloc(100).unwrap();
        // Second allocation is 256-aligned: high-water = 256 + 100.
        assert_eq!(m.used(), GLOBAL_ALLOC_ALIGN + 100);
        m.reset();
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn overlay_reads_base_and_buffers_writes() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(512).unwrap();
        m.write(b.addr, Value::I32(7)).unwrap();
        let mut ov = BlockOverlay::new(&m);
        assert_eq!(ov.read(Ty::I32, b.addr).unwrap(), Value::I32(7));
        ov.write(b.addr, Value::I32(9)).unwrap();
        ov.write(b.addr + 300, Value::I32(5)).unwrap(); // second page
        assert_eq!(ov.read(Ty::I32, b.addr).unwrap(), Value::I32(9));
        let data = ov.into_data();
        // Base untouched until commit.
        assert_eq!(m.read(Ty::I32, b.addr).unwrap(), Value::I32(7));
        for (&page, p) in &data.pages {
            m.apply_overlay_page(page, p);
        }
        assert_eq!(m.read(Ty::I32, b.addr).unwrap(), Value::I32(9));
        assert_eq!(m.read(Ty::I32, b.addr + 300).unwrap(), Value::I32(5));
    }

    #[test]
    fn overlay_commit_merges_disjoint_bytes_of_one_page() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(256).unwrap();
        let mut o1 = BlockOverlay::new(&m);
        o1.write(b.addr, Value::I32(1)).unwrap();
        let d1 = o1.into_data();
        let mut o2 = BlockOverlay::new(&m);
        o2.write(b.addr + 4, Value::I32(2)).unwrap();
        let d2 = o2.into_data();
        for d in [d1, d2] {
            for (&page, p) in &d.pages {
                m.apply_overlay_page(page, p);
            }
        }
        assert_eq!(m.read(Ty::I32, b.addr).unwrap(), Value::I32(1));
        assert_eq!(m.read(Ty::I32, b.addr + 4).unwrap(), Value::I32(2));
    }

    #[test]
    fn overlay_oob_and_atomic_interactions() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(64).unwrap();
        let mut ov = BlockOverlay::new(&m);
        assert!(matches!(
            ov.read(Ty::I64, u64::MAX - 3),
            Err(AccessAbort::Sim(SimError::GlobalOutOfBounds { .. }))
        ));
        ov.log_atomic(AtomicLogEntry {
            op: crate::ir::AtomOp::Add,
            ty: Ty::I32,
            addr: b.addr,
            val: Value::I32(1),
        })
        .unwrap();
        // Plain accesses overlapping a logged atomic force the sequential path.
        assert!(matches!(
            ov.read(Ty::I32, b.addr),
            Err(AccessAbort::NeedsSequential(_))
        ));
        assert!(matches!(
            ov.write(b.addr + 2, Value::I32(3)),
            Err(AccessAbort::NeedsSequential(_))
        ));
        // And a plain write followed by an atomic on the same address too.
        let mut ov2 = BlockOverlay::new(&m);
        ov2.write(b.addr, Value::I32(5)).unwrap();
        assert!(matches!(
            ov2.log_atomic(AtomicLogEntry {
                op: crate::ir::AtomOp::Add,
                ty: Ty::I32,
                addr: b.addr,
                val: Value::I32(1),
            }),
            Err(AccessAbort::NeedsSequential(_))
        ));
    }

    #[test]
    fn overlay_read_write_page_tracking() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(256).unwrap();
        let b = m.alloc(256).unwrap();
        let mut o1 = BlockOverlay::new(&m);
        o1.write(b.addr, Value::I32(1)).unwrap();
        let d1 = o1.into_data();
        let mut o2 = BlockOverlay::new(&m);
        o2.read(Ty::I32, a.addr).unwrap();
        let d2 = o2.into_data();
        let mut written = AddrSet::default();
        written.extend(d1.write_pages());
        // Block 2 only read buffer `a`; block 1 only wrote buffer `b`.
        assert!(!d2.reads_overlap(&written));
        let mut o3 = BlockOverlay::new(&m);
        o3.read(Ty::I32, b.addr + 8).unwrap();
        assert!(o3.into_data().reads_overlap(&written));
    }

    #[test]
    fn reset_clears() {
        let mut m = GlobalMemory::new(1 << 16);
        let b = m.alloc(8).unwrap();
        m.write(b.addr, Value::I64(7)).unwrap();
        m.reset();
        let b2 = m.alloc(8).unwrap();
        assert_eq!(b2.addr, b.addr);
        assert_eq!(m.read(Ty::I64, b2.addr).unwrap(), Value::I64(0));
    }
}
