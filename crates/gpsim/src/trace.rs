//! Execution tracing: capture the first N warp-instructions of a launch
//! with their active masks — the "look at what the machine actually did"
//! debugging facility. Memory instructions additionally carry the address
//! range the warp touched and which space it lives in, which is what the
//! sanitizer's reports point back into.

/// Which address space a traced memory access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSpace {
    Shared,
    Global,
}

/// The warp-aggregate footprint of one memory instruction: the half-open
/// `[lo, hi)` byte range covering every active lane's access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTouch {
    pub space: TraceSpace,
    pub lo: u64,
    pub hi: u64,
}

/// One executed warp-instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Block index (x, y).
    pub block: (u32, u32),
    /// Warp index within the block.
    pub warp: u32,
    /// Instruction index in the kernel.
    pub pc: usize,
    /// Number of active lanes.
    pub active: u32,
    /// Disassembled instruction text.
    pub text: String,
    /// For memory instructions: the space and address range touched.
    pub mem: Option<MemTouch>,
}

/// A bounded trace buffer.
#[derive(Debug, Clone)]
pub struct Trace {
    limit: usize,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Trace {
    /// Capture at most `limit` events (the rest are dropped and
    /// [`Trace::truncated`] reports it).
    pub fn with_limit(limit: usize) -> Self {
        Trace {
            limit,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// Record an event; returns whether it was kept (false once full).
    pub(crate) fn record(&mut self, ev: TraceEvent) -> bool {
        if self.events.len() < self.limit {
            self.events.push(ev);
            true
        } else {
            self.truncated = true;
            false
        }
    }

    /// Attach a memory footprint to the most recently recorded event. Only
    /// called when that event was actually kept, so a truncated buffer
    /// never has a stale event annotated.
    pub(crate) fn annotate_mem(&mut self, mem: MemTouch) {
        if let Some(e) = self.events.last_mut() {
            e.mem = Some(mem);
        }
    }

    /// The configured event limit.
    pub(crate) fn limit(&self) -> usize {
        self.limit
    }

    /// Append another trace's events (in order) until this buffer's limit
    /// is reached. Used by the parallel block executor: each block records
    /// into its own buffer (with the launch-wide limit) and the buffers are
    /// merged in block-id order, which reproduces the sequential capture
    /// byte for byte — a block that overflowed its own buffer would also
    /// have overflowed the launch buffer at the same event.
    pub(crate) fn merge_from(&mut self, other: Trace) {
        for ev in other.events {
            if !self.record(ev) {
                break;
            }
        }
        self.truncated |= other.truncated;
    }

    /// The captured events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if events were dropped because the limit was reached.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Render the trace as a listing.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(
                out,
                "b({:>2},{}) w{:<2} pc {:>4} [{:>2} lanes]  {}",
                e.block.0, e.block.1, e.warp, e.pc, e.active, e.text
            );
            if let Some(m) = e.mem {
                let tag = match m.space {
                    TraceSpace::Shared => "shared",
                    TraceSpace::Global => "global",
                };
                let _ = write!(out, "  <{tag} {:#x}..{:#x}>", m.lo, m.hi);
            }
            out.push('\n');
        }
        if self.truncated {
            let _ = writeln!(out, "... (truncated at {} events)", self.limit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: usize) -> TraceEvent {
        TraceEvent {
            block: (0, 0),
            warp: 0,
            pc,
            active: 32,
            text: format!("inst{pc}"),
            mem: None,
        }
    }

    #[test]
    fn bounded_and_renders() {
        let mut t = Trace::with_limit(2);
        for pc in 0..3 {
            t.record(ev(pc));
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        let r = t.render();
        assert!(r.contains("inst0"));
        assert!(r.contains("inst1"));
        assert!(!r.contains("inst2"));
        assert!(r.contains("truncated"));
    }

    #[test]
    fn merge_respects_limit_and_propagates_truncation() {
        let mut a = Trace::with_limit(3);
        a.record(ev(0));
        let mut b = Trace::with_limit(3);
        for pc in 10..13 {
            b.record(ev(pc));
        }
        b.record(ev(99)); // overflows b -> truncated
        a.merge_from(b);
        assert_eq!(a.events().len(), 3);
        assert_eq!(a.events()[1].pc, 10);
        assert_eq!(a.events()[2].pc, 11);
        assert!(a.truncated());

        // Truncation propagates even when the destination has room left.
        let mut c = Trace::with_limit(100);
        let mut d = Trace::with_limit(1);
        d.record(ev(0));
        d.record(ev(1));
        assert!(d.truncated());
        c.merge_from(d);
        assert_eq!(c.events().len(), 1);
        assert!(c.truncated());
        assert_eq!(c.limit(), 100);
    }

    #[test]
    fn record_reports_kept_and_mem_annotates_last() {
        let mut t = Trace::with_limit(1);
        assert!(t.record(ev(0)));
        t.annotate_mem(MemTouch {
            space: TraceSpace::Shared,
            lo: 0x40,
            hi: 0x80,
        });
        assert!(!t.record(ev(1)));
        assert_eq!(
            t.events()[0].mem,
            Some(MemTouch {
                space: TraceSpace::Shared,
                lo: 0x40,
                hi: 0x80
            })
        );
        let r = t.render();
        assert!(r.contains("<shared 0x40..0x80>"), "{r}");
    }
}
