//! Execution tracing: capture the first N warp-instructions of a launch
//! with their active masks — the "look at what the machine actually did"
//! debugging facility.

/// One executed warp-instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Block index (x, y).
    pub block: (u32, u32),
    /// Warp index within the block.
    pub warp: u32,
    /// Instruction index in the kernel.
    pub pc: usize,
    /// Number of active lanes.
    pub active: u32,
    /// Disassembled instruction text.
    pub text: String,
}

/// A bounded trace buffer.
#[derive(Debug, Clone)]
pub struct Trace {
    limit: usize,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Trace {
    /// Capture at most `limit` events (the rest are dropped and
    /// [`Trace::truncated`] reports it).
    pub fn with_limit(limit: usize) -> Self {
        Trace {
            limit,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// Record an event (drops once full).
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.limit {
            self.events.push(ev);
        } else {
            self.truncated = true;
        }
    }

    /// The captured events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if events were dropped because the limit was reached.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Render the trace as a listing.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "b({:>2},{}) w{:<2} pc {:>4} [{:>2} lanes]  {}",
                e.block.0, e.block.1, e.warp, e.pc, e.active, e.text
            );
        }
        if self.truncated {
            let _ = writeln!(out, "... (truncated at {} events)", self.limit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_and_renders() {
        let mut t = Trace::with_limit(2);
        for pc in 0..3 {
            t.record(TraceEvent {
                block: (0, 0),
                warp: 0,
                pc,
                active: 32,
                text: format!("inst{pc}"),
            });
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        let r = t.render();
        assert!(r.contains("inst0"));
        assert!(r.contains("inst1"));
        assert!(!r.contains("inst2"));
        assert!(r.contains("truncated"));
    }
}
