//! Execution statistics collected per kernel launch and per device session.

use std::ops::AddAssign;

/// Counters collected while executing one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    /// Warp-instructions executed (one per (warp, pc-group) step).
    pub warp_insts: u64,
    /// Lane-instructions executed (warp-insts weighted by active lanes).
    pub lane_insts: u64,
    /// Global memory transactions (coalescing-model segments).
    pub global_transactions: u64,
    /// Global memory instructions (warp-level).
    pub global_accesses: u64,
    /// Shared memory instructions (warp-level).
    pub shared_accesses: u64,
    /// Sum of bank-conflict serialization ways over shared accesses.
    pub shared_ways: u64,
    /// Barrier arrivals (warp-level).
    pub barriers: u64,
    /// Atomic instructions (warp-level).
    pub atomics: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Modelled execution cycles for the launch (max over SMs).
    pub cycles: u64,
    /// Distinct hazards the sanitizer observed (0 when it is off; see
    /// [`crate::sanitizer`]).
    pub hazards: u64,
}

impl LaunchStats {
    /// Average active lanes per warp-instruction — 32.0 means no divergence.
    pub fn avg_active_lanes(&self) -> f64 {
        if self.warp_insts == 0 {
            0.0
        } else {
            self.lane_insts as f64 / self.warp_insts as f64
        }
    }

    /// Average transactions per global access — 1.0 means perfectly coalesced.
    pub fn transactions_per_access(&self) -> f64 {
        if self.global_accesses == 0 {
            0.0
        } else {
            self.global_transactions as f64 / self.global_accesses as f64
        }
    }

    /// Average bank-conflict ways per shared access — 1.0 means conflict-free.
    pub fn conflict_ways_per_access(&self) -> f64 {
        if self.shared_accesses == 0 {
            0.0
        } else {
            self.shared_ways as f64 / self.shared_accesses as f64
        }
    }
}

impl AddAssign for LaunchStats {
    fn add_assign(&mut self, o: Self) {
        self.warp_insts += o.warp_insts;
        self.lane_insts += o.lane_insts;
        self.global_transactions += o.global_transactions;
        self.global_accesses += o.global_accesses;
        self.shared_accesses += o.shared_accesses;
        self.shared_ways += o.shared_ways;
        self.barriers += o.barriers;
        self.atomics += o.atomics;
        self.blocks += o.blocks;
        self.cycles += o.cycles;
        self.hazards += o.hazards;
    }
}

/// Accumulated statistics for a whole device session (multiple launches and
/// transfers): what a profiler would report for an application run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Number of kernel launches.
    pub launches: u64,
    /// Sum of per-launch stats.
    pub totals: LaunchStats,
    /// Cycles spent in kernels (including launch overheads).
    pub kernel_cycles: u64,
    /// Cycles spent in host<->device transfers.
    pub transfer_cycles: u64,
    /// Bytes moved host->device.
    pub bytes_h2d: u64,
    /// Bytes moved device->host.
    pub bytes_d2h: u64,
}

impl SessionStats {
    /// Total modelled cycles (kernels + transfers).
    pub fn total_cycles(&self) -> u64 {
        self.kernel_cycles + self.transfer_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = LaunchStats {
            warp_insts: 10,
            lane_insts: 160,
            global_transactions: 30,
            global_accesses: 10,
            shared_accesses: 5,
            shared_ways: 10,
            ..Default::default()
        };
        assert_eq!(s.avg_active_lanes(), 16.0);
        assert_eq!(s.transactions_per_access(), 3.0);
        assert_eq!(s.conflict_ways_per_access(), 2.0);
    }

    #[test]
    fn zero_division_guarded() {
        let s = LaunchStats::default();
        assert_eq!(s.avg_active_lanes(), 0.0);
        assert_eq!(s.transactions_per_access(), 0.0);
        assert_eq!(s.conflict_ways_per_access(), 0.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = LaunchStats {
            warp_insts: 1,
            cycles: 10,
            ..Default::default()
        };
        let b = LaunchStats {
            warp_insts: 2,
            cycles: 5,
            blocks: 3,
            hazards: 2,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.warp_insts, 3);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.hazards, 2);
    }

    #[test]
    fn hazards_default_zero() {
        assert_eq!(LaunchStats::default().hazards, 0);
        assert_eq!(SessionStats::default().totals.hazards, 0);
    }

    #[test]
    fn session_total() {
        let s = SessionStats {
            kernel_cycles: 7,
            transfer_cycles: 3,
            ..Default::default()
        };
        assert_eq!(s.total_cycles(), 10);
    }
}
