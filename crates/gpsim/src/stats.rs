//! Execution statistics collected per kernel launch and per device session.

use std::ops::AddAssign;

/// Counters collected while executing one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    /// Warp-instructions executed (one per (warp, pc-group) step).
    pub warp_insts: u64,
    /// Lane-instructions executed (warp-insts weighted by active lanes).
    pub lane_insts: u64,
    /// Global memory transactions (coalescing-model segments).
    pub global_transactions: u64,
    /// Global memory instructions (warp-level).
    pub global_accesses: u64,
    /// Shared memory instructions (warp-level).
    pub shared_accesses: u64,
    /// Sum of bank-conflict serialization ways over shared accesses.
    pub shared_ways: u64,
    /// Barrier arrivals (warp-level).
    pub barriers: u64,
    /// Atomic instructions (warp-level).
    pub atomics: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Modelled execution cycles for the launch (max over SMs).
    pub cycles: u64,
    /// Distinct hazards the sanitizer observed (0 when it is off; see
    /// [`crate::sanitizer`]).
    pub hazards: u64,
}

impl LaunchStats {
    /// Average active lanes per warp-instruction — 32.0 means no divergence.
    /// `None` when no warp-instruction executed (the ratio is undefined, not
    /// a perfectly divergent 0.0).
    pub fn avg_active_lanes(&self) -> Option<f64> {
        if self.warp_insts == 0 {
            None
        } else {
            Some(self.lane_insts as f64 / self.warp_insts as f64)
        }
    }

    /// Average transactions per global access — 1.0 means perfectly coalesced.
    /// `None` when the launch performed no global accesses.
    pub fn transactions_per_access(&self) -> Option<f64> {
        if self.global_accesses == 0 {
            None
        } else {
            Some(self.global_transactions as f64 / self.global_accesses as f64)
        }
    }

    /// Average bank-conflict ways per shared access — 1.0 means conflict-free.
    /// `None` when the launch performed no shared accesses.
    pub fn conflict_ways_per_access(&self) -> Option<f64> {
        if self.shared_accesses == 0 {
            None
        } else {
            Some(self.shared_ways as f64 / self.shared_accesses as f64)
        }
    }
}

impl AddAssign for LaunchStats {
    fn add_assign(&mut self, o: Self) {
        self.warp_insts += o.warp_insts;
        self.lane_insts += o.lane_insts;
        self.global_transactions += o.global_transactions;
        self.global_accesses += o.global_accesses;
        self.shared_accesses += o.shared_accesses;
        self.shared_ways += o.shared_ways;
        self.barriers += o.barriers;
        self.atomics += o.atomics;
        self.blocks += o.blocks;
        self.cycles += o.cycles;
        self.hazards += o.hazards;
    }
}

/// Accumulated statistics for a whole device session (multiple launches and
/// transfers): what a profiler would report for an application run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Number of kernel launches.
    pub launches: u64,
    /// Sum of per-launch stats.
    pub totals: LaunchStats,
    /// Cycles spent in kernels (including launch overheads).
    pub kernel_cycles: u64,
    /// Cycles spent in host<->device transfers.
    pub transfer_cycles: u64,
    /// Bytes moved host->device.
    pub bytes_h2d: u64,
    /// Bytes moved device->host.
    pub bytes_d2h: u64,
}

impl SessionStats {
    /// Total modelled cycles (kernels + transfers).
    pub fn total_cycles(&self) -> u64 {
        self.kernel_cycles + self.transfer_cycles
    }
}

impl AddAssign for SessionStats {
    fn add_assign(&mut self, o: Self) {
        self.launches += o.launches;
        self.totals += o.totals;
        self.kernel_cycles += o.kernel_cycles;
        self.transfer_cycles += o.transfer_cycles;
        self.bytes_h2d += o.bytes_h2d;
        self.bytes_d2h += o.bytes_d2h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let s = LaunchStats {
            warp_insts: 10,
            lane_insts: 160,
            global_transactions: 30,
            global_accesses: 10,
            shared_accesses: 5,
            shared_ways: 10,
            ..Default::default()
        };
        assert_eq!(s.avg_active_lanes(), Some(16.0));
        assert_eq!(s.transactions_per_access(), Some(3.0));
        assert_eq!(s.conflict_ways_per_access(), Some(2.0));
    }

    #[test]
    fn empty_denominators_are_none() {
        let s = LaunchStats::default();
        assert_eq!(s.avg_active_lanes(), None);
        assert_eq!(s.transactions_per_access(), None);
        assert_eq!(s.conflict_ways_per_access(), None);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = LaunchStats {
            warp_insts: 1,
            cycles: 10,
            ..Default::default()
        };
        let b = LaunchStats {
            warp_insts: 2,
            cycles: 5,
            blocks: 3,
            hazards: 2,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.warp_insts, 3);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.hazards, 2);
    }

    /// Exhaustive-field aggregation coverage (same pattern as the
    /// `Inst::def` variant-coverage test in `ir`): both struct literals
    /// below list every field with no `..Default::default()`, so adding a
    /// counter field fails to compile until it is listed here — and the
    /// per-field assertions fail until the field is also summed in
    /// `AddAssign`.
    #[test]
    fn launch_add_assign_covers_every_field() {
        let b = LaunchStats {
            warp_insts: 1,
            lane_insts: 2,
            global_transactions: 3,
            global_accesses: 4,
            shared_accesses: 5,
            shared_ways: 6,
            barriers: 7,
            atomics: 8,
            blocks: 9,
            cycles: 10,
            hazards: 11,
        };
        let mut a = b;
        a += b;
        let LaunchStats {
            warp_insts,
            lane_insts,
            global_transactions,
            global_accesses,
            shared_accesses,
            shared_ways,
            barriers,
            atomics,
            blocks,
            cycles,
            hazards,
        } = a;
        assert_eq!(warp_insts, 2 * b.warp_insts);
        assert_eq!(lane_insts, 2 * b.lane_insts);
        assert_eq!(global_transactions, 2 * b.global_transactions);
        assert_eq!(global_accesses, 2 * b.global_accesses);
        assert_eq!(shared_accesses, 2 * b.shared_accesses);
        assert_eq!(shared_ways, 2 * b.shared_ways);
        assert_eq!(barriers, 2 * b.barriers);
        assert_eq!(atomics, 2 * b.atomics);
        assert_eq!(blocks, 2 * b.blocks);
        assert_eq!(cycles, 2 * b.cycles);
        assert_eq!(hazards, 2 * b.hazards);
    }

    #[test]
    fn session_add_assign_covers_every_field() {
        let b = SessionStats {
            launches: 1,
            totals: LaunchStats {
                warp_insts: 2,
                ..Default::default()
            },
            kernel_cycles: 3,
            transfer_cycles: 4,
            bytes_h2d: 5,
            bytes_d2h: 6,
        };
        let mut a = b;
        a += b;
        let SessionStats {
            launches,
            totals,
            kernel_cycles,
            transfer_cycles,
            bytes_h2d,
            bytes_d2h,
        } = a;
        assert_eq!(launches, 2 * b.launches);
        assert_eq!(totals.warp_insts, 2 * b.totals.warp_insts);
        assert_eq!(kernel_cycles, 2 * b.kernel_cycles);
        assert_eq!(transfer_cycles, 2 * b.transfer_cycles);
        assert_eq!(bytes_h2d, 2 * b.bytes_h2d);
        assert_eq!(bytes_d2h, 2 * b.bytes_d2h);
    }

    #[test]
    fn hazards_default_zero() {
        assert_eq!(LaunchStats::default().hazards, 0);
        assert_eq!(SessionStats::default().totals.hazards, 0);
    }

    #[test]
    fn session_total() {
        let s = SessionStats {
            kernel_cycles: 7,
            transfer_cycles: 3,
            ..Default::default()
        };
        assert_eq!(s.total_cycles(), 10);
    }
}
