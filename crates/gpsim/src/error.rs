//! Simulator error type.

use std::fmt;

/// Errors raised by the simulated device.
///
/// Functional bugs in generated code surface as these errors (or as wrong
/// results verified against the CPU reference) — exactly the externally
/// visible failure classes the paper reports for the baseline compilers.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Device global allocation failed.
    OutOfMemory { requested: u64 },
    /// A global access touched unmapped/null memory.
    GlobalOutOfBounds { addr: u64, len: usize },
    /// A shared access fell outside the block's shared window.
    SharedOutOfBounds { off: u64, len: usize, window: usize },
    /// The kernel requested more shared memory than the device provides.
    SharedMemExceeded { requested: usize, limit: usize },
    /// Launch configuration violates device limits.
    InvalidLaunch { reason: String },
    /// All unfinished warps are blocked at a barrier that can never fill —
    /// the classic divergent `__syncthreads()` bug.
    BarrierDeadlock {
        block: (u32, u32),
        arrived: usize,
        expected: usize,
    },
    /// Threads of one block arrived at *different* barrier instructions —
    /// `__syncthreads()` executed under divergent control flow (undefined
    /// behaviour on real hardware; reported strictly here).
    BarrierDivergence {
        block: (u32, u32),
        pc_a: usize,
        pc_b: usize,
    },
    /// A kernel ran longer than the configured watchdog allows.
    Watchdog { executed_insts: u64 },
    /// Division (or remainder) by zero at an integer type.
    DivisionByZero,
    /// An instruction read a register holding an incompatible value class
    /// (interpreter type confusion — indicates a codegen bug).
    TypeError { context: String },
    /// Wrong number of launch parameters.
    BadParams { expected: u32, got: u32 },
    /// The device configuration itself is malformed (e.g. a coalescing
    /// segment size that is not a power of two). Caught at device
    /// construction and re-checked at launch, so a bad cost-model config
    /// cannot silently skew transaction counts in release builds.
    InvalidConfig { reason: String },
    /// A kernel failed structural verification when finishing its build
    /// (label never placed, branch out of range). These are compiler bugs;
    /// [`crate::KernelBuilder::try_finish`] surfaces them as errors so a
    /// driver can report a per-case diagnostic instead of aborting.
    KernelBuild { kernel: String, reason: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { requested } => {
                write!(f, "device out of memory (requested {requested} bytes)")
            }
            SimError::GlobalOutOfBounds { addr, len } => {
                write!(
                    f,
                    "global memory access out of bounds: addr={addr:#x} len={len}"
                )
            }
            SimError::SharedOutOfBounds { off, len, window } => write!(
                f,
                "shared memory access out of bounds: off={off} len={len} window={window}"
            ),
            SimError::SharedMemExceeded { requested, limit } => write!(
                f,
                "kernel requests {requested} bytes of shared memory, device limit is {limit}"
            ),
            SimError::InvalidLaunch { reason } => write!(f, "invalid launch: {reason}"),
            SimError::BarrierDeadlock {
                block,
                arrived,
                expected,
            } => write!(
                f,
                "barrier deadlock in block ({}, {}): {arrived}/{expected} threads arrived \
                 (divergent __syncthreads?)",
                block.0, block.1
            ),
            SimError::BarrierDivergence { block, pc_a, pc_b } => write!(
                f,
                "threads of block ({}, {}) arrived at different barriers (pc {pc_a} vs \
                 {pc_b}): __syncthreads() under divergent control flow",
                block.0, block.1
            ),
            SimError::Watchdog { executed_insts } => {
                write!(
                    f,
                    "kernel watchdog fired after {executed_insts} warp-instructions"
                )
            }
            SimError::DivisionByZero => write!(f, "integer division by zero"),
            SimError::TypeError { context } => write!(f, "interpreter type error: {context}"),
            SimError::BadParams { expected, got } => {
                write!(
                    f,
                    "kernel expects {expected} parameters, launch passed {got}"
                )
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid device configuration: {reason}")
            }
            SimError::KernelBuild { kernel, reason } => {
                write!(f, "kernel build error in `{kernel}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::BarrierDeadlock {
            block: (3, 0),
            arrived: 5,
            expected: 64,
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("5/64"));
        assert!(SimError::DivisionByZero.to_string().contains("division"));
        assert!(SimError::OutOfMemory { requested: 42 }
            .to_string()
            .contains("42"));
    }
}
