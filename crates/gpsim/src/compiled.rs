//! The compiled execution tier: pre-decoded basic-block runs, an SoA
//! register file, and warp-uniform fast paths.
//!
//! The reference interpreter ([`crate::exec`]) dispatches one [`Inst`] per
//! warp-step: it re-scans the warp for the minimum PC, re-collects the
//! active mask, clones the instruction, resolves branch labels, and
//! allocates hash containers for the coalescing model — every step. This
//! tier removes all of that from the hot path while staying **bit-identical
//! in every observable output**: memory contents, [`crate::stats::LaunchStats`],
//! modelled cycles, traces, hazard reports, profiles, and error values.
//!
//! # Pre-decoded runs
//!
//! [`CompiledKernel::compile`] splits the instruction stream into *runs* —
//! maximal straight-line spans `[leader, next_leader)` where leaders are
//! instruction 0, every branch target, and every instruction following a
//! `Bra`, `Ret`, or `Bar`. Runs are the basic blocks of
//! [`crate::verify`]'s CFG additionally split after barriers, because a
//! warp's lanes *rest* at the instruction after a `Bar` while waiting for
//! the release.
//!
//! The scheduling invariant that makes run-at-a-time execution exact:
//! runnable lanes only ever rest at leaders (initially at 0; a branch
//! leaves them at its target or fallthrough, both leaders; a barrier
//! release leaves them one past the `Bar`; a fallthrough leaves them at
//! the next leader). While a group of lanes executes a run, every other
//! runnable lane of the warp rests at a leader `>=` the run's end — there
//! is no leader strictly inside a run — so the interpreter's per-step
//! min-PC scan would pick this group's PC at every step of the run. The
//! active mask is therefore constant across the run, and per-instruction
//! PC updates can be deferred to the run boundary (PCs are only *read* at
//! run boundaries: the min-PC scan, barrier bookkeeping, and hazard
//! details all happen when every warp is blocked or between runs).
//!
//! # SoA register file
//!
//! Registers live in one flat `Vec<Value>` indexed `reg * n_threads +
//! lane` instead of a per-thread `Vec` each — one allocation per block
//! and cache-friendly per-register rows for the broadcast paths.
//!
//! # Warp-uniform fast paths
//!
//! A divergence analysis in the style of kverify's `DivPart` domain runs
//! at compile time: a register is *uniform* (provably equal across the
//! lanes executing together) unless it is derived from a per-lane special
//! register (`tid.x`, `tid.y`, `%linear`), from a value-returning atomic,
//! from another divergent register, or defined under control dependence
//! of a branch with a divergent condition (control dependences come from
//! the shared [`crate::verify`] postdominator machinery; the analysis
//! iterates to a fixpoint). A run whose instructions read only uniform
//! registers (and contain no per-lane special reads and no atomics — M
//! serialized atomic applications are not one application) executes
//! **once** on the group's first lane and broadcasts register writes:
//! loads issue one bounds-checked access instead of 32, and stores write
//! one identical value instead of 32. The cost model sees identical
//! counts by construction — M identical accesses occupy exactly the
//! segments/banks of one — and the sanitizer is still fed per-lane.
//!
//! # Typed fast mode
//!
//! On top of the pre-decoded runs, [`CompiledKernel::specialize`] tries
//! to assign every virtual register a single static [`Ty`] (a
//! flow-insensitive merge over all of its definitions; `Mov`/`Select`
//! propagate to a fixpoint). When that succeeds, the block's registers
//! become raw `u64` *bit rows* — `I32`/`F32`/`Pred` zero-extended,
//! `I64`/`U64`/`F64` as their 64-bit representation — and every
//! instruction is lowered to a [`TOp`] whose operand conversions
//! ([`Conv`]) are resolved at compile time to mirror [`Value::convert`]
//! / `as_u64` / `as_i64` / `as_bool` *exactly*, immediates are
//! pre-converted into broadcast constant rows, and the `(op, ty)`
//! dispatch is hoisted out of the lane loops. Registers the kernel
//! never writes hold the interpreter's `Value::I32(0)`; a zero bit row
//! reproduces that under any static type because zero is a fixed point
//! of every conversion in the table. Kernels that reuse one register at
//! several types fall back to the generic [`Value`]-based tier below —
//! same results, slower.
//!
//! # Tier selection
//!
//! [`CompiledKernel::compile`] returns `None` for the degenerate shapes
//! the tier does not model (empty kernels, kernels that can fall or
//! branch past the end of the instruction stream); the launch path then
//! uses the interpreter regardless of the configured
//! [`crate::cost::ExecTier`].

use crate::error::SimError;
use crate::exec::{alu_cost, eval_bin, eval_cmp, eval_un, mref_addr, BlockExec, MemView};
use crate::ir::{AtomOp, BinOp, CmpOp, Inst, Kernel, MemRef, Operand, SpecialReg, UnOp};
use crate::memory::AccessAbort;
use crate::profile::PcCounters;
use crate::sanitizer::AccessKind;
use crate::trace::{MemTouch, TraceEvent, TraceSpace};
use crate::types::{Ty, Value};
use crate::verify;

/// A pre-decoded operand: register index or immediate.
#[derive(Debug, Clone, Copy)]
enum COpnd {
    Reg(usize),
    Imm(Value),
}

/// A pre-decoded memory reference: operand, index register, scale and
/// displacement already widened, access size already resolved.
#[derive(Debug, Clone, Copy)]
struct CMem {
    base: COpnd,
    index: Option<usize>,
    scale: i64,
    disp: i64,
    size: usize,
}

/// One pre-decoded instruction: branch labels resolved to instruction
/// indices, registers widened to array indices, SFU/FP64 surcharges
/// pre-classified.
#[derive(Debug, Clone)]
enum COp {
    MovImm {
        dst: usize,
        value: Value,
    },
    Mov {
        dst: usize,
        src: usize,
    },
    ReadSpecial {
        dst: usize,
        sr: SpecialReg,
    },
    ReadParam {
        dst: usize,
        idx: usize,
    },
    Bin {
        op: BinOp,
        ty: Ty,
        dst: usize,
        a: COpnd,
        b: COpnd,
        sfu: bool,
    },
    Cmp {
        op: CmpOp,
        ty: Ty,
        dst: usize,
        a: COpnd,
        b: COpnd,
    },
    Un {
        op: UnOp,
        ty: Ty,
        dst: usize,
        a: COpnd,
        sfu: bool,
    },
    Select {
        dst: usize,
        cond: usize,
        a: COpnd,
        b: COpnd,
    },
    Cvt {
        dst: usize,
        ty: Ty,
        src: COpnd,
    },
    LdGlobal {
        ty: Ty,
        dst: usize,
        mem: CMem,
    },
    StGlobal {
        ty: Ty,
        src: COpnd,
        mem: CMem,
    },
    LdShared {
        ty: Ty,
        dst: usize,
        mem: CMem,
    },
    StShared {
        ty: Ty,
        src: COpnd,
        mem: CMem,
    },
    AtomGlobal {
        op: AtomOp,
        ty: Ty,
        mem: CMem,
        src: COpnd,
        dst: Option<usize>,
    },
    Bar,
    Bra {
        target: usize,
        cond: Option<(usize, bool)>,
    },
    Ret,
}

/// A maximal straight-line span `[start, end)`; `end - 1` is a
/// terminator (`Bra`/`Ret`/`Bar`) or falls through to the leader at
/// `end`.
#[derive(Debug, Clone, Copy)]
struct Run {
    start: usize,
    end: usize,
}

/// A kernel pre-decoded for the compiled execution tier. Compile once per
/// launch ([`crate::exec::run_kernel_instrumented`]) and share across all
/// blocks and host worker threads.
#[derive(Debug)]
pub struct CompiledKernel {
    num_regs: usize,
    ops: Vec<COp>,
    runs: Vec<Run>,
    /// `run_of[pc]` = index of the run containing `pc`.
    run_of: Vec<usize>,
    /// Per-run warp-uniform flag (see module docs).
    run_uniform: Vec<bool>,
    /// Per-register uniformity verdict (exposed via [`Self::describe`]).
    uniform_regs: Vec<bool>,
    /// Statically-typed lowering (see module docs); built per launch by
    /// [`Self::specialize`] because parameter types feed the inference.
    typed: Option<TypedPlan>,
}

impl CompiledKernel {
    /// Pre-decode `kernel`. Returns `None` for shapes the tier does not
    /// model (empty kernels, kernels whose control flow can leave the
    /// instruction stream) — the launch path falls back to the
    /// interpreter, preserving its behavior exactly.
    pub fn compile(kernel: &Kernel) -> Option<CompiledKernel> {
        let n = kernel.insts.len();
        if n == 0 {
            return None;
        }
        // The last instruction must be a hard terminator, otherwise a lane
        // can advance to pc == n (the interpreter treats that as a
        // malformed kernel; keep its behavior by falling back).
        match kernel.insts[n - 1] {
            Inst::Ret | Inst::Bra { cond: None, .. } => {}
            _ => return None,
        }
        // Resolve every branch target up front; a target of n (one past
        // the end — the builder permits labels placed after the final
        // `ret`) is likewise left to the interpreter.
        let resolve = |l: crate::ir::Label| -> Option<usize> {
            let t = *kernel.label_targets.get(l.0 as usize)?;
            (t < n).then_some(t)
        };

        let mut ops = Vec::with_capacity(n);
        for inst in &kernel.insts {
            ops.push(decode(inst, &resolve)?);
        }

        // Leaders: 0, branch targets, and the instruction after every
        // Bra/Ret/Bar (lanes rest one past a barrier while waiting).
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, op) in ops.iter().enumerate() {
            match op {
                COp::Bra { target, .. } => {
                    leader[*target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                COp::Ret | COp::Bar if pc + 1 < n => leader[pc + 1] = true,
                _ => {}
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let runs: Vec<Run> = starts
            .iter()
            .enumerate()
            .map(|(i, &s)| Run {
                start: s,
                end: starts.get(i + 1).copied().unwrap_or(n),
            })
            .collect();
        let mut run_of = vec![0usize; n];
        for (ri, r) in runs.iter().enumerate() {
            for slot in &mut run_of[r.start..r.end] {
                *slot = ri;
            }
        }

        let uniform_regs = uniform_registers(kernel);
        let run_uniform: Vec<bool> = runs
            .iter()
            .map(|r| {
                kernel.insts[r.start..r.end]
                    .iter()
                    .all(|inst| inst_uniform(inst, &uniform_regs))
            })
            .collect();

        Some(CompiledKernel {
            num_regs: kernel.num_regs as usize,
            ops,
            runs,
            run_of,
            run_uniform,
            uniform_regs,
            typed: None,
        })
    }

    /// Attempt the statically-typed lowering for a concrete parameter
    /// list (parameter types feed the register type inference). Called
    /// once per launch; on failure the generic tier runs.
    pub(crate) fn specialize(&mut self, params: &[Value]) {
        self.typed = TypedPlan::build(&self.ops, self.num_regs, params);
    }

    /// Textual dump of the pre-decoded form (run boundaries, terminators,
    /// uniformity verdicts) for golden tests and debugging.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            ".compiled (regs={}, runs={})",
            self.num_regs,
            self.runs.len()
        );
        for (i, r) in self.runs.iter().enumerate() {
            let term = match &self.ops[r.end - 1] {
                COp::Bra {
                    target,
                    cond: Some(_),
                } => format!("bra.cond -> {target} | {}", r.end),
                COp::Bra { target, cond: None } => format!("bra -> {target}"),
                COp::Ret => "ret".to_string(),
                COp::Bar => format!("bar -> {}", r.end),
                _ => format!("fallthrough -> {}", r.end),
            };
            let _ = writeln!(
                out,
                "  run {i}: pc {}..{} {} [{term}]",
                r.start,
                r.end,
                if self.run_uniform[i] {
                    "uniform"
                } else {
                    "per-lane"
                },
            );
        }
        let uni: Vec<String> = self
            .uniform_regs
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| format!("%r{i}"))
            .collect();
        let _ = writeln!(out, "  uniform regs: {}", uni.join(" "));
        out
    }
}

fn decode(inst: &Inst, resolve: &dyn Fn(crate::ir::Label) -> Option<usize>) -> Option<COp> {
    let opnd = |o: &Operand| match o {
        Operand::Reg(r) => COpnd::Reg(r.0 as usize),
        Operand::Imm(v) => COpnd::Imm(*v),
    };
    let cmem = |m: &MemRef, ty: Ty| CMem {
        base: opnd(&m.base),
        index: m.index.map(|r| r.0 as usize),
        scale: m.scale as i64,
        disp: m.disp,
        size: ty.size(),
    };
    Some(match inst {
        Inst::MovImm { dst, value } => COp::MovImm {
            dst: dst.0 as usize,
            value: *value,
        },
        Inst::Mov { dst, src } => COp::Mov {
            dst: dst.0 as usize,
            src: src.0 as usize,
        },
        Inst::ReadSpecial { dst, sr } => COp::ReadSpecial {
            dst: dst.0 as usize,
            sr: *sr,
        },
        Inst::ReadParam { dst, idx } => COp::ReadParam {
            dst: dst.0 as usize,
            idx: *idx as usize,
        },
        Inst::Bin { op, ty, dst, a, b } => COp::Bin {
            op: *op,
            ty: *ty,
            dst: dst.0 as usize,
            a: opnd(a),
            b: opnd(b),
            sfu: matches!(op, BinOp::Div | BinOp::Rem),
        },
        Inst::Cmp { op, ty, dst, a, b } => COp::Cmp {
            op: *op,
            ty: *ty,
            dst: dst.0 as usize,
            a: opnd(a),
            b: opnd(b),
        },
        Inst::Un { op, ty, dst, a } => COp::Un {
            op: *op,
            ty: *ty,
            dst: dst.0 as usize,
            a: opnd(a),
            sfu: matches!(op, UnOp::Sqrt),
        },
        Inst::Select { dst, cond, a, b } => COp::Select {
            dst: dst.0 as usize,
            cond: cond.0 as usize,
            a: opnd(a),
            b: opnd(b),
        },
        Inst::Cvt { dst, ty, src } => COp::Cvt {
            dst: dst.0 as usize,
            ty: *ty,
            src: opnd(src),
        },
        Inst::LdGlobal { ty, dst, mref } => COp::LdGlobal {
            ty: *ty,
            dst: dst.0 as usize,
            mem: cmem(mref, *ty),
        },
        Inst::StGlobal { ty, src, mref } => COp::StGlobal {
            ty: *ty,
            src: opnd(src),
            mem: cmem(mref, *ty),
        },
        Inst::LdShared { ty, dst, mref } => COp::LdShared {
            ty: *ty,
            dst: dst.0 as usize,
            mem: cmem(mref, *ty),
        },
        Inst::StShared { ty, src, mref } => COp::StShared {
            ty: *ty,
            src: opnd(src),
            mem: cmem(mref, *ty),
        },
        Inst::AtomGlobal {
            op,
            ty,
            mref,
            src,
            dst,
        } => COp::AtomGlobal {
            op: *op,
            ty: *ty,
            mem: cmem(mref, *ty),
            src: opnd(src),
            dst: dst.map(|r| r.0 as usize),
        },
        Inst::Bar => COp::Bar,
        Inst::Bra { target, cond } => COp::Bra {
            target: resolve(*target)?,
            cond: cond.map(|(r, e)| (r.0 as usize, e)),
        },
        Inst::Ret => COp::Ret,
    })
}

/// Per-lane special registers: different lanes of one warp read different
/// values. (`tid.z` is always 0; block/grid geometry is warp-invariant.)
fn divergent_special(sr: SpecialReg) -> bool {
    matches!(
        sr,
        SpecialReg::TidX | SpecialReg::TidY | SpecialReg::LaneLinear
    )
}

/// Fixpoint divergence analysis over registers (see module docs).
fn uniform_registers(kernel: &Kernel) -> Vec<bool> {
    let cfg = verify::Cfg::build(kernel);
    let pdom = verify::postdominators(&cfg);
    let cdeps = verify::control_deps(&cfg, &pdom);
    let mut uniform = vec![true; kernel.num_regs as usize];
    loop {
        let mut changed = false;
        for (pc, inst) in kernel.insts.iter().enumerate() {
            let Some(dst) = inst.def() else { continue };
            let di = dst.0 as usize;
            if !uniform[di] {
                continue;
            }
            // Divergent sources: per-lane specials, value-returning
            // atomics (the returned "old" depends on lane serialization
            // order), any divergent input register.
            let mut div = match inst {
                Inst::ReadSpecial { sr, .. } => divergent_special(*sr),
                Inst::AtomGlobal { .. } => true,
                _ => false,
            };
            if !div {
                inst.for_each_use(|r| div |= !uniform[r.0 as usize]);
            }
            // Control divergence: a def executed by only some lanes
            // leaves the others holding stale values.
            if !div {
                let b = cfg.block_of[pc];
                div = cdeps[b].iter().any(|&(bb, _)| {
                    cfg.branch_cond(kernel, bb)
                        .is_some_and(|(r, _)| !uniform[r.0 as usize])
                });
            }
            if div {
                uniform[di] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    uniform
}

/// May `inst` take the one-lane-and-broadcast fast path when every lane
/// of the group executes it together?
fn inst_uniform(inst: &Inst, uniform: &[bool]) -> bool {
    match inst {
        // M serialized atomic applications are not one application.
        Inst::AtomGlobal { .. } => return false,
        Inst::ReadSpecial { sr, .. } if divergent_special(*sr) => return false,
        _ => {}
    }
    let mut ok = true;
    inst.for_each_use(|r| ok &= uniform[r.0 as usize]);
    ok
}

// ---------------------------------------------------------------------------
// Typed fast mode: static register types over raw bit rows
// ---------------------------------------------------------------------------

/// Bit encoding of a [`Value`] in a typed register row: `I32`/`F32`/
/// `Pred` zero-extended, 64-bit types as their representation. Every
/// writer of a typed row maintains this encoding.
#[inline(always)]
fn value_bits(v: Value) -> u64 {
    match v {
        Value::I32(x) => x as u32 as u64,
        Value::I64(x) => x as u64,
        Value::U64(x) => x,
        Value::F32(x) => x.to_bits() as u64,
        Value::F64(x) => x.to_bits(),
        Value::Pred(x) => x as u64,
    }
}

/// Inverse of [`value_bits`] at a static type (used where a [`Value`]
/// crosses back into shared code: memory writes and atomics).
#[inline(always)]
fn bits_value(ty: Ty, b: u64) -> Value {
    match ty {
        Ty::I32 => Value::I32(b as u32 as i32),
        Ty::I64 => Value::I64(b as i64),
        Ty::U64 => Value::U64(b),
        Ty::F32 => Value::F32(f32::from_bits(b as u32)),
        Ty::F64 => Value::F64(f64::from_bits(b)),
        Ty::Pred => Value::Pred(b != 0),
    }
}

/// A compile-time-resolved operand conversion over encoded bits. Each
/// variant is the bit-level image of one `(source variant, target type)`
/// arm of [`Value::convert`] (or `as_u64`/`as_i64` for addresses); the
/// typed tier is bit-identical to the interpreter because this table is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conv {
    Id,
    /// `I64`/`U64` -> `I32`: truncate (`as_i64() as i32`).
    Low32,
    /// `I32` -> `I64`/`U64`: sign-extend.
    SextI32,
    /// `F32` -> `I32`: saturating `v as i32`.
    F32ToI32,
    /// `F64` -> `I32`: saturating `v as i32`.
    F64ToI32,
    /// `F32` -> `I64`/`U64`: saturating `v as i64` (then reinterpreted).
    F32ToI64,
    /// `F64` -> `I64`/`U64`.
    F64ToI64,
    I32ToF32,
    I64ToF32,
    U64ToF32,
    /// `F32` -> `F32` is *not* the identity: `convert` round-trips
    /// through `f64` (`as_f64() as f32`), which quiets signaling NaNs.
    F32Round,
    F64ToF32,
    PredToF32,
    I32ToF64,
    I64ToF64,
    U64ToF64,
    F32ToF64,
    PredToF64,
    /// Integer-encoded -> `Pred`: bits non-zero.
    IntPred,
    /// `F32` -> `Pred`: value non-zero (`-0.0` is false, NaN is true).
    F32Pred,
    F64Pred,
}

impl Conv {
    #[inline(always)]
    fn apply(self, b: u64) -> u64 {
        match self {
            Conv::Id => b,
            Conv::Low32 => b as u32 as u64,
            Conv::SextI32 => (b as u32 as i32) as i64 as u64,
            Conv::F32ToI32 => (f32::from_bits(b as u32) as i32) as u32 as u64,
            Conv::F64ToI32 => (f64::from_bits(b) as i32) as u32 as u64,
            Conv::F32ToI64 => (f32::from_bits(b as u32) as i64) as u64,
            Conv::F64ToI64 => (f64::from_bits(b) as i64) as u64,
            Conv::I32ToF32 => (((b as u32 as i32) as f64) as f32).to_bits() as u64,
            Conv::I64ToF32 => (((b as i64) as f64) as f32).to_bits() as u64,
            Conv::U64ToF32 => ((b as f64) as f32).to_bits() as u64,
            Conv::F32Round => ((f32::from_bits(b as u32) as f64) as f32).to_bits() as u64,
            Conv::F64ToF32 => (f64::from_bits(b) as f32).to_bits() as u64,
            Conv::PredToF32 => ((b as f64) as f32).to_bits() as u64,
            Conv::I32ToF64 => ((b as u32 as i32) as f64).to_bits(),
            Conv::I64ToF64 => ((b as i64) as f64).to_bits(),
            Conv::U64ToF64 => (b as f64).to_bits(),
            Conv::F32ToF64 => (f32::from_bits(b as u32) as f64).to_bits(),
            Conv::PredToF64 => (b as f64).to_bits(),
            Conv::IntPred => (b != 0) as u64,
            Conv::F32Pred => (f32::from_bits(b as u32) != 0.0) as u64,
            Conv::F64Pred => (f64::from_bits(b) != 0.0) as u64,
        }
    }
}

/// The conversion a register of static type `from` needs when used at
/// type `to`. Exact image of [`Value::convert`]; `(I64, U64)` and
/// `(U64, I64)` are bit-identities, `(Pred, int)` stays 0/1.
fn conv_for(from: Ty, to: Ty) -> Conv {
    use Ty::*;
    match (from, to) {
        (I32, I32) | (I64, I64) | (U64, U64) | (F64, F64) | (Pred, Pred) => Conv::Id,
        (I64, U64) | (U64, I64) => Conv::Id,
        (Pred, I32) | (Pred, I64) | (Pred, U64) => Conv::Id,
        (I64, I32) | (U64, I32) => Conv::Low32,
        (I32, I64) | (I32, U64) => Conv::SextI32,
        (F32, I32) => Conv::F32ToI32,
        (F64, I32) => Conv::F64ToI32,
        (F32, I64) | (F32, U64) => Conv::F32ToI64,
        (F64, I64) | (F64, U64) => Conv::F64ToI64,
        (I32, F32) => Conv::I32ToF32,
        (I64, F32) => Conv::I64ToF32,
        (U64, F32) => Conv::U64ToF32,
        (F32, F32) => Conv::F32Round,
        (F64, F32) => Conv::F64ToF32,
        (Pred, F32) => Conv::PredToF32,
        (I32, F64) => Conv::I32ToF64,
        (I64, F64) => Conv::I64ToF64,
        (U64, F64) => Conv::U64ToF64,
        (F32, F64) => Conv::F32ToF64,
        (Pred, F64) => Conv::PredToF64,
        (I32, Pred) | (I64, Pred) | (U64, Pred) => Conv::IntPred,
        (F32, Pred) => Conv::F32Pred,
        (F64, Pred) => Conv::F64Pred,
    }
}

/// How a condition row is tested for truth (`as_bool` over encoded
/// bits). Integer encodings test bits-non-zero; floats must decode
/// (`-0.0` has non-zero bits but is false).
#[derive(Debug, Clone, Copy)]
enum CondKind {
    Int,
    F32,
    F64,
}

#[inline(always)]
fn cond_true(k: CondKind, b: u64) -> bool {
    match k {
        CondKind::Int => b != 0,
        CondKind::F32 => f32::from_bits(b as u32) != 0.0,
        CondKind::F64 => f64::from_bits(b) != 0.0,
    }
}

fn cond_kind(ty: Ty) -> CondKind {
    match ty {
        Ty::F32 => CondKind::F32,
        Ty::F64 => CondKind::F64,
        _ => CondKind::Int,
    }
}

/// A typed memory reference: rows plus pre-resolved conversions for the
/// base (`as_u64`) and index (`as_i64`) as the interpreter applies them.
#[derive(Debug, Clone, Copy)]
struct TMem {
    base: usize,
    bc: Conv,
    index: Option<(usize, Conv)>,
    scale: i64,
    disp: i64,
    size: usize,
}

/// One instruction of the typed lowering. Operands are row indices
/// (register rows first, then broadcast constant rows holding
/// pre-converted immediates) with their conversions resolved.
#[derive(Debug, Clone)]
enum TOp {
    /// Write the same bits to every active lane (`MovImm`, `ReadParam`
    /// with the parameter present, `Cvt` of an immediate).
    Broadcast {
        dst: usize,
        bits: u64,
    },
    /// `ReadParam` past the end of the parameter list: the
    /// interpreter's `BadParams` error, at the same point.
    BadParams,
    ReadSpecial {
        dst: usize,
        sr: SpecialReg,
    },
    Bin {
        op: BinOp,
        ty: Ty,
        dst: usize,
        a: usize,
        b: usize,
        ca: Conv,
        cb: Conv,
        sfu: bool,
    },
    Cmp {
        op: CmpOp,
        ty: Ty,
        dst: usize,
        a: usize,
        b: usize,
        ca: Conv,
        cb: Conv,
    },
    Un {
        op: UnOp,
        ty: Ty,
        dst: usize,
        a: usize,
        ca: Conv,
        sfu: bool,
    },
    Select {
        dst: usize,
        cond: usize,
        kind: CondKind,
        a: usize,
        b: usize,
    },
    /// Row-to-row conversion; `Conv::Id` is a plain `Mov`.
    Cvt {
        dst: usize,
        src: usize,
        cv: Conv,
    },
    LdGlobal {
        ty: Ty,
        dst: usize,
        mem: TMem,
    },
    StGlobal {
        ty: Ty,
        src: usize,
        sc: Conv,
        mem: TMem,
    },
    LdShared {
        ty: Ty,
        dst: usize,
        mem: TMem,
    },
    StShared {
        ty: Ty,
        src: usize,
        sc: Conv,
        mem: TMem,
    },
    AtomGlobal {
        op: AtomOp,
        ty: Ty,
        mem: TMem,
        src: usize,
        sc: Conv,
        dst: Option<usize>,
    },
    Bar,
    Bra {
        target: usize,
        cond: Option<(usize, CondKind, bool)>,
    },
    Ret,
}

/// The statically-typed lowering of a kernel for one launch.
#[derive(Debug)]
struct TypedPlan {
    tops: Vec<TOp>,
    /// Register rows, then `consts.len()` broadcast constant rows.
    num_regs: usize,
    /// Bits of each constant row (pre-converted immediates).
    consts: Vec<u64>,
}

/// Flow-insensitive register type inference: every definition of a
/// register must produce one type (`Mov`/`Select` propagate their
/// source types to a fixpoint; never-written registers keep the
/// interpreter's `I32` zero). Returns `None` when a register is written
/// at two types — the kernel falls back to the generic tier.
fn infer_reg_types(ops: &[COp], num_regs: usize, params: &[Value]) -> Option<Vec<Ty>> {
    let opnd_ty = |tys: &[Option<Ty>], o: &COpnd| match o {
        COpnd::Reg(r) => tys[*r],
        COpnd::Imm(v) => Some(v.ty()),
    };
    let mut defined = vec![false; num_regs];
    for op in ops {
        match op {
            COp::MovImm { dst, .. }
            | COp::Mov { dst, .. }
            | COp::ReadSpecial { dst, .. }
            | COp::ReadParam { dst, .. }
            | COp::Bin { dst, .. }
            | COp::Cmp { dst, .. }
            | COp::Un { dst, .. }
            | COp::Select { dst, .. }
            | COp::Cvt { dst, .. }
            | COp::LdGlobal { dst, .. }
            | COp::LdShared { dst, .. } => defined[*dst] = true,
            COp::AtomGlobal { dst: Some(d), .. } => defined[*d] = true,
            _ => {}
        }
    }
    let mut tys: Vec<Option<Ty>> = (0..num_regs)
        .map(|r| (!defined[r]).then_some(Ty::I32))
        .collect();
    // Fixpoint: each pass resolves defs whose inputs are known; `set`
    // fails on a two-type register. The final validation pass re-checks
    // every def against the defaulted assignment so unresolved cycles
    // (only ever holding initial zeros) stay consistent.
    for validate in [false, false, true] {
        if validate {
            for t in tys.iter_mut() {
                t.get_or_insert(Ty::I32);
            }
        }
        loop {
            let mut changed = false;
            for op in ops {
                let (d, t) = match op {
                    COp::MovImm { dst, value } => (*dst, Some(value.ty())),
                    COp::Mov { dst, src } => (*dst, tys[*src]),
                    COp::ReadSpecial { dst, .. } => (*dst, Some(Ty::I32)),
                    COp::ReadParam { dst, idx } => {
                        (*dst, Some(params.get(*idx).map_or(Ty::I32, |v| v.ty())))
                    }
                    COp::Bin { ty, dst, .. }
                    | COp::Un { ty, dst, .. }
                    | COp::Cvt { dst, ty, .. } => (*dst, Some(*ty)),
                    COp::Cmp { dst, .. } => (*dst, Some(Ty::Pred)),
                    COp::Select { dst, a, b, .. } => {
                        match (opnd_ty(&tys, a), opnd_ty(&tys, b)) {
                            (Some(x), Some(y)) if x == y => (*dst, Some(x)),
                            // A select whose arms carry two types passes
                            // values through unconverted: not typeable.
                            (Some(_), Some(_)) => return None,
                            _ => (*dst, None),
                        }
                    }
                    COp::LdGlobal { ty, dst, .. } | COp::LdShared { ty, dst, .. } => {
                        (*dst, Some(*ty))
                    }
                    COp::AtomGlobal {
                        ty, dst: Some(d), ..
                    } => (*d, Some(*ty)),
                    _ => continue,
                };
                if let Some(t) = t {
                    match tys[d] {
                        None => {
                            tys[d] = Some(t);
                            changed = true;
                        }
                        Some(u) if u == t => {}
                        Some(_) => return None,
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    Some(tys.into_iter().map(|t| t.unwrap_or(Ty::I32)).collect())
}

/// Lowering state: the inferred register types plus the constant-row
/// pool (deduplicated pre-converted immediates).
struct Lower {
    rt: Vec<Ty>,
    num_regs: usize,
    consts: Vec<u64>,
}

impl Lower {
    fn row_for(&mut self, bits: u64) -> usize {
        match self.consts.iter().position(|&c| c == bits) {
            Some(i) => self.num_regs + i,
            None => {
                self.consts.push(bits);
                self.num_regs + self.consts.len() - 1
            }
        }
    }

    /// An operand used at type `to`: register rows get the static
    /// conversion, immediates are converted now and become constant
    /// rows (so the lane loops never branch on operand shape).
    fn row(&mut self, o: &COpnd, to: Option<Ty>) -> (usize, Conv) {
        match o {
            COpnd::Reg(r) => (*r, to.map_or(Conv::Id, |t| conv_for(self.rt[*r], t))),
            COpnd::Imm(v) => {
                let v = to.map_or(*v, |t| v.convert(t));
                (self.row_for(value_bits(v)), Conv::Id)
            }
        }
    }

    /// Address rows: base as `as_u64`, index as `as_i64` — exactly the
    /// conversions [`mem_addr`] applies in the generic tier.
    fn tmem(&mut self, m: &CMem) -> TMem {
        let (base, bc) = self.row(&m.base, Some(Ty::U64));
        TMem {
            base,
            bc,
            index: m.index.map(|r| (r, conv_for(self.rt[r], Ty::I64))),
            scale: m.scale,
            disp: m.disp,
            size: m.size,
        }
    }
}

impl TypedPlan {
    fn build(ops: &[COp], num_regs: usize, params: &[Value]) -> Option<TypedPlan> {
        let rt = infer_reg_types(ops, num_regs, params)?;
        let mut lo = Lower {
            rt,
            num_regs,
            consts: Vec::new(),
        };
        let mut tops = Vec::with_capacity(ops.len());
        for op in ops {
            tops.push(match op {
                COp::MovImm { dst, value } => TOp::Broadcast {
                    dst: *dst,
                    bits: value_bits(*value),
                },
                COp::Mov { dst, src } => TOp::Cvt {
                    dst: *dst,
                    src: *src,
                    cv: Conv::Id,
                },
                COp::ReadSpecial { dst, sr } => TOp::ReadSpecial { dst: *dst, sr: *sr },
                COp::ReadParam { dst, idx } => match params.get(*idx) {
                    Some(v) => TOp::Broadcast {
                        dst: *dst,
                        bits: value_bits(*v),
                    },
                    None => TOp::BadParams,
                },
                COp::Bin {
                    op,
                    ty,
                    dst,
                    a,
                    b,
                    sfu,
                } => {
                    let (a, ca) = lo.row(a, Some(*ty));
                    let (b, cb) = lo.row(b, Some(*ty));
                    TOp::Bin {
                        op: *op,
                        ty: *ty,
                        dst: *dst,
                        a,
                        b,
                        ca,
                        cb,
                        sfu: *sfu,
                    }
                }
                COp::Cmp { op, ty, dst, a, b } => {
                    let (a, ca) = lo.row(a, Some(*ty));
                    let (b, cb) = lo.row(b, Some(*ty));
                    TOp::Cmp {
                        op: *op,
                        ty: *ty,
                        dst: *dst,
                        a,
                        b,
                        ca,
                        cb,
                    }
                }
                COp::Un {
                    op,
                    ty,
                    dst,
                    a,
                    sfu,
                } => {
                    let (a, ca) = lo.row(a, Some(*ty));
                    TOp::Un {
                        op: *op,
                        ty: *ty,
                        dst: *dst,
                        a,
                        ca,
                        sfu: *sfu,
                    }
                }
                COp::Select { dst, cond, a, b } => {
                    // Select passes values through unconverted; the
                    // inference guaranteed both arms are the dst type.
                    let (a, _) = lo.row(a, None);
                    let (b, _) = lo.row(b, None);
                    TOp::Select {
                        dst: *dst,
                        cond: *cond,
                        kind: cond_kind(lo.rt[*cond]),
                        a,
                        b,
                    }
                }
                COp::Cvt { dst, ty, src } => match src {
                    COpnd::Reg(r) => TOp::Cvt {
                        dst: *dst,
                        src: *r,
                        cv: conv_for(lo.rt[*r], *ty),
                    },
                    COpnd::Imm(v) => TOp::Broadcast {
                        dst: *dst,
                        bits: value_bits(v.convert(*ty)),
                    },
                },
                COp::LdGlobal { ty, dst, mem } => TOp::LdGlobal {
                    ty: *ty,
                    dst: *dst,
                    mem: lo.tmem(mem),
                },
                COp::StGlobal { ty, src, mem } => {
                    let (src, sc) = lo.row(src, Some(*ty));
                    TOp::StGlobal {
                        ty: *ty,
                        src,
                        sc,
                        mem: lo.tmem(mem),
                    }
                }
                COp::LdShared { ty, dst, mem } => TOp::LdShared {
                    ty: *ty,
                    dst: *dst,
                    mem: lo.tmem(mem),
                },
                COp::StShared { ty, src, mem } => {
                    let (src, sc) = lo.row(src, Some(*ty));
                    TOp::StShared {
                        ty: *ty,
                        src,
                        sc,
                        mem: lo.tmem(mem),
                    }
                }
                COp::AtomGlobal {
                    op,
                    ty,
                    mem,
                    src,
                    dst,
                } => {
                    let (src, sc) = lo.row(src, Some(*ty));
                    TOp::AtomGlobal {
                        op: *op,
                        ty: *ty,
                        mem: lo.tmem(mem),
                        src,
                        sc,
                        dst: *dst,
                    }
                }
                COp::Bar => TOp::Bar,
                COp::Bra { target, cond } => TOp::Bra {
                    target: *target,
                    cond: cond.map(|(r, e)| (r, cond_kind(lo.rt[r]), e)),
                },
                COp::Ret => TOp::Ret,
            });
        }
        Some(TypedPlan {
            tops,
            num_regs,
            consts: lo.consts,
        })
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Per-block mutable state owned by the compiled tier: the SoA register
/// file plus reusable scratch buffers (the interpreter allocates fresh
/// containers for these on every warp-step).
struct BlockState {
    /// `regs[reg * n + lane]`.
    regs: Vec<Value>,
    n: usize,
    /// Active lanes of the current group (constant across a run).
    mask: Vec<usize>,
    /// Segment/word index scratch for the coalescing model.
    seg_buf: Vec<u64>,
    /// Per-bank occupancy scratch for the conflict model.
    bank_counts: Vec<u32>,
}

/// Control disposition of one executed instruction.
enum Flow {
    /// Fall through to the next instruction of the run.
    Next,
    /// Terminator executed (PCs already updated); the run is over.
    Stop,
}

/// Run one block through the compiled tier. Drives the same
/// [`BlockExec`] the interpreter uses — barrier bookkeeping, watchdog,
/// overlap folding, traces, sanitizer shadows, and profiles are shared
/// code, not re-implementations.
pub(crate) fn run_block(ck: &CompiledKernel, exec: &mut BlockExec) -> Result<(), AccessAbort> {
    if let Some(plan) = &ck.typed {
        return run_block_typed(ck, plan, exec);
    }
    let warp = exec.dev.warp_size as usize;
    let n = exec.threads.len();
    let num_warps = n.div_ceil(warp);
    let mut st = BlockState {
        regs: vec![Value::I32(0); ck.num_regs * n],
        n,
        mask: Vec::with_capacity(warp),
        seg_buf: Vec::with_capacity(2 * warp),
        bank_counts: vec![0; exec.dev.shared_banks as usize],
    };
    loop {
        for w in 0..num_warps {
            let lo = w * warp;
            let hi = ((w + 1) * warp).min(n);
            let warp_id = w as u32;
            loop {
                // Min leader among runnable lanes; the group is every
                // runnable lane resting there.
                let mut min_pc = usize::MAX;
                for l in lo..hi {
                    let t = &exec.threads[l];
                    if t.runnable() && t.pc < min_pc {
                        min_pc = t.pc;
                    }
                }
                if min_pc == usize::MAX {
                    break; // warp fully blocked or exited
                }
                st.mask.clear();
                for l in lo..hi {
                    let t = &exec.threads[l];
                    if t.runnable() && t.pc == min_pc {
                        st.mask.push(l);
                    }
                }
                run_group(ck, exec, &mut st, warp_id, min_pc)?;
            }
        }
        if !exec.barrier_round()? {
            break;
        }
    }
    exec.finish_block(num_warps);
    Ok(())
}

/// Execute one full run for the current group (constant mask; see module
/// docs for why this is exact).
fn run_group(
    ck: &CompiledKernel,
    exec: &mut BlockExec,
    st: &mut BlockState,
    warp_id: u32,
    leader: usize,
) -> Result<(), AccessAbort> {
    let ri = ck.run_of[leader];
    let run = ck.runs[ri];
    debug_assert_eq!(run.start, leader, "groups rest only at leaders");
    let uniform = ck.run_uniform[ri];
    for pc in run.start..run.end {
        let flow = exec_op(ck, exec, st, warp_id, pc, uniform)?;
        exec.watchdog()?;
        if let Flow::Stop = flow {
            return Ok(());
        }
    }
    // Fallthrough into the next run: lanes rest at its leader.
    for &l in &st.mask {
        exec.threads[l].pc = run.end;
    }
    Ok(())
}

#[inline]
fn opnd(regs: &[Value], n: usize, o: COpnd, lane: usize) -> Value {
    match o {
        COpnd::Reg(r) => regs[r * n + lane],
        COpnd::Imm(v) => v,
    }
}

#[inline]
fn mem_addr(regs: &[Value], n: usize, mem: &CMem, lane: usize) -> u64 {
    let base = opnd(regs, n, mem.base, lane).as_u64();
    let idx = mem.index.map_or(0, |r| regs[r * n + lane].as_i64());
    mref_addr(base, idx, mem.scale, mem.disp)
}

/// Allocation-free twin of [`crate::coalesce::global_transactions`].
/// Monotonically non-decreasing segment sequences (every coalesced or
/// strided access pattern the reduction kernels emit) are counted in one
/// pass; anything else falls back to sort+dedup on a reusable buffer.
fn transactions(accesses: &[(u64, usize)], segment_bytes: u64, buf: &mut Vec<u64>) -> u64 {
    let mut distinct = 0u64;
    let mut have = false;
    let mut prev = 0u64;
    for &(addr, len) in accesses {
        if len == 0 {
            continue;
        }
        let first = addr / segment_bytes;
        let last = addr.saturating_add(len as u64 - 1) / segment_bytes;
        if !have {
            distinct += last - first + 1;
            prev = last;
            have = true;
        } else if first > prev {
            // Disjoint from everything seen (seen max is `prev`).
            distinct += last - first + 1;
            prev = last;
        } else if first == prev {
            // Extends the last segment range; only `prev+1..=last` is new.
            distinct += last - prev;
            prev = last;
        } else {
            return transactions_slow(accesses, segment_bytes, buf);
        }
    }
    distinct
}

/// General-case twin: distinct aligned segments via sort+dedup.
fn transactions_slow(accesses: &[(u64, usize)], segment_bytes: u64, buf: &mut Vec<u64>) -> u64 {
    buf.clear();
    for &(addr, len) in accesses {
        if len == 0 {
            continue;
        }
        let first = addr / segment_bytes;
        let last = addr.saturating_add(len as u64 - 1) / segment_bytes;
        for s in first..=last {
            buf.push(s);
        }
    }
    buf.sort_unstable();
    buf.dedup();
    buf.len() as u64
}

/// Allocation-free twin of [`crate::coalesce::bank_conflict_degree`]:
/// max over banks of *distinct* words. Monotonic word sequences skip the
/// sort+dedup and count bank occupancy directly.
fn conflict_ways(
    accesses: &[(u64, usize)],
    num_banks: u32,
    buf: &mut Vec<u64>,
    counts: &mut [u32],
) -> u64 {
    if accesses.is_empty() {
        return 0;
    }
    counts.fill(0);
    let mut max = 0u32;
    let mut have = false;
    let mut prev = 0u64;
    for &(off, len) in accesses {
        if len == 0 {
            continue;
        }
        let first = off / 4;
        let last = off.saturating_add(len as u64 - 1) / 4;
        // New words in this access: those above `prev` (every seen word
        // is <= prev in the monotonic case; a range starting below it
        // could contain unseen words we cannot cheaply distinguish).
        let start = if !have {
            have = true;
            first
        } else if first > prev {
            first
        } else if first == prev {
            if last == prev {
                continue;
            }
            prev + 1
        } else {
            return conflict_ways_slow(accesses, num_banks, buf, counts);
        };
        for w in start..=last {
            let c = &mut counts[(w % num_banks as u64) as usize];
            *c += 1;
            max = max.max(*c);
        }
        prev = last;
    }
    (max as u64).max(1)
}

/// General-case twin: global sort+dedup, then per-bank occupancy.
fn conflict_ways_slow(
    accesses: &[(u64, usize)],
    num_banks: u32,
    buf: &mut Vec<u64>,
    counts: &mut [u32],
) -> u64 {
    buf.clear();
    for &(off, len) in accesses {
        if len == 0 {
            continue;
        }
        let first = off / 4;
        let last = off.saturating_add(len as u64 - 1) / 4;
        for w in first..=last {
            buf.push(w);
        }
    }
    buf.sort_unstable();
    buf.dedup();
    counts.fill(0);
    let mut max = 0u32;
    for &w in buf.iter() {
        let c = &mut counts[(w % num_banks as u64) as usize];
        *c += 1;
        max = max.max(*c);
    }
    (max as u64).max(1)
}

/// Trace/sanitizer bookkeeping for a warp-uniform memory access: one
/// address for every lane. Mirrors [`BlockExec::observe_mem`] exactly —
/// the annotation span of M identical accesses is the span of one, and
/// the sanitizer still sees every lane.
#[allow(clippy::too_many_arguments)]
fn observe_mem_uniform(
    exec: &mut BlockExec,
    space: TraceSpace,
    mask: &[usize],
    warp_id: u32,
    pc: usize,
    kind: AccessKind,
    recorded: bool,
    addr: u64,
    size: usize,
) {
    if recorded {
        if let Some(t) = exec.trace.as_mut() {
            t.annotate_mem(MemTouch {
                space,
                lo: addr,
                hi: addr.saturating_add(size as u64),
            });
        }
    }
    if let Some(s) = exec.san.as_mut() {
        for &l in mask {
            match space {
                TraceSpace::Shared => {
                    s.shared_access(l as u32, warp_id, pc, addr, size, kind.writes())
                }
                TraceSpace::Global => s.global_access(l as u32, warp_id, pc, addr, size, kind),
            }
        }
    }
}

/// Execute one pre-decoded instruction for the current group. A faithful
/// port of the interpreter's `step` — same instrumentation in the same
/// order, same error points — over the SoA register file, with a
/// one-lane-and-broadcast path for uniform runs.
fn exec_op(
    ck: &CompiledKernel,
    exec: &mut BlockExec,
    st: &mut BlockState,
    warp_id: u32,
    pc: usize,
    uniform: bool,
) -> Result<Flow, AccessAbort> {
    let mlen = st.mask.len();
    debug_assert!(mlen > 0);
    let recorded = match exec.trace.as_mut() {
        Some(t) => t.record(TraceEvent {
            block: exec.block_idx,
            warp: warp_id,
            pc,
            active: mlen as u32,
            text: crate::ir::format_inst(&exec.kernel.insts[pc]),
            mem: None,
        }),
        None => false,
    };
    exec.stats.warp_insts += 1;
    exec.stats.lane_insts += mlen as u64;
    let mut d = PcCounters {
        warp_insts: 1,
        lane_insts: mlen as u64,
        issue_cycles: exec.cost.issue,
        ..PcCounters::default()
    };
    let n = st.n;
    let l0 = st.mask[0];
    let mut flow = Flow::Next;
    match &ck.ops[pc] {
        COp::MovImm { dst, value } => {
            for &l in &st.mask {
                st.regs[dst * n + l] = *value;
            }
            d.alu_cycles = exec.cost.alu;
        }
        COp::Mov { dst, src } => {
            if uniform {
                let v = st.regs[src * n + l0];
                for &l in &st.mask {
                    st.regs[dst * n + l] = v;
                }
            } else {
                for &l in &st.mask {
                    let v = st.regs[src * n + l];
                    st.regs[dst * n + l] = v;
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        COp::ReadSpecial { dst, sr } => {
            if uniform {
                let v = exec.special(l0, *sr);
                for &l in &st.mask {
                    st.regs[dst * n + l] = v;
                }
            } else {
                for &l in &st.mask {
                    let v = exec.special(l, *sr);
                    st.regs[dst * n + l] = v;
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        COp::ReadParam { dst, idx } => {
            let v = *exec.params.get(*idx).ok_or(SimError::BadParams {
                expected: exec.kernel.num_params,
                got: exec.params.len() as u32,
            })?;
            for &l in &st.mask {
                st.regs[dst * n + l] = v;
            }
            d.alu_cycles = exec.cost.alu;
        }
        COp::Bin {
            op,
            ty,
            dst,
            a,
            b,
            sfu,
        } => {
            if uniform {
                let r = eval_bin(
                    *op,
                    *ty,
                    opnd(&st.regs, n, *a, l0),
                    opnd(&st.regs, n, *b, l0),
                )?;
                for &l in &st.mask {
                    st.regs[dst * n + l] = r;
                }
            } else {
                for &l in &st.mask {
                    let av = opnd(&st.regs, n, *a, l);
                    let bv = opnd(&st.regs, n, *b, l);
                    st.regs[dst * n + l] = eval_bin(*op, *ty, av, bv)?;
                }
            }
            d.alu_cycles = alu_cost(exec.cost, *ty, *sfu);
        }
        COp::Cmp { op, ty, dst, a, b } => {
            if uniform {
                let av = opnd(&st.regs, n, *a, l0).convert(*ty);
                let bv = opnd(&st.regs, n, *b, l0).convert(*ty);
                let r = Value::Pred(eval_cmp(*op, *ty, av, bv));
                for &l in &st.mask {
                    st.regs[dst * n + l] = r;
                }
            } else {
                for &l in &st.mask {
                    let av = opnd(&st.regs, n, *a, l).convert(*ty);
                    let bv = opnd(&st.regs, n, *b, l).convert(*ty);
                    st.regs[dst * n + l] = Value::Pred(eval_cmp(*op, *ty, av, bv));
                }
            }
            d.alu_cycles = alu_cost(exec.cost, *ty, false);
        }
        COp::Un {
            op,
            ty,
            dst,
            a,
            sfu,
        } => {
            if uniform {
                let r = eval_un(*op, *ty, opnd(&st.regs, n, *a, l0))?;
                for &l in &st.mask {
                    st.regs[dst * n + l] = r;
                }
            } else {
                for &l in &st.mask {
                    let av = opnd(&st.regs, n, *a, l);
                    st.regs[dst * n + l] = eval_un(*op, *ty, av)?;
                }
            }
            d.alu_cycles = alu_cost(exec.cost, *ty, *sfu);
        }
        COp::Select { dst, cond, a, b } => {
            if uniform {
                let c = st.regs[cond * n + l0].as_bool();
                let v = if c {
                    opnd(&st.regs, n, *a, l0)
                } else {
                    opnd(&st.regs, n, *b, l0)
                };
                for &l in &st.mask {
                    st.regs[dst * n + l] = v;
                }
            } else {
                for &l in &st.mask {
                    let c = st.regs[cond * n + l].as_bool();
                    let v = if c {
                        opnd(&st.regs, n, *a, l)
                    } else {
                        opnd(&st.regs, n, *b, l)
                    };
                    st.regs[dst * n + l] = v;
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        COp::Cvt { dst, ty, src } => {
            if uniform {
                let v = opnd(&st.regs, n, *src, l0).convert(*ty);
                for &l in &st.mask {
                    st.regs[dst * n + l] = v;
                }
            } else {
                for &l in &st.mask {
                    let v = opnd(&st.regs, n, *src, l).convert(*ty);
                    st.regs[dst * n + l] = v;
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        COp::LdGlobal { ty, dst, mem } => {
            let tx;
            if uniform {
                let a = mem_addr(&st.regs, n, mem, l0);
                tx = transactions(&[(a, mem.size)], exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                let v = exec.view.read(*ty, a)?;
                for &l in &st.mask {
                    st.regs[dst * n + l] = v;
                }
                observe_mem_uniform(
                    exec,
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                    a,
                    mem.size,
                );
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((mem_addr(&st.regs, n, mem, l), mem.size));
                }
                tx = transactions(&exec.scratch_addr, exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                for (i, &l) in st.mask.iter().enumerate() {
                    let v = exec.view.read(*ty, exec.scratch_addr[i].0)?;
                    st.regs[dst * n + l] = v;
                }
                exec.observe_mem(
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                );
            }
        }
        COp::StGlobal { ty, src, mem } => {
            if uniform {
                let a = mem_addr(&st.regs, n, mem, l0);
                let tx = transactions(&[(a, mem.size)], exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                let v = opnd(&st.regs, n, *src, l0).convert(*ty);
                // M identical writes to one address are one write.
                exec.view.write(a, v)?;
                observe_mem_uniform(
                    exec,
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                    a,
                    mem.size,
                );
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((mem_addr(&st.regs, n, mem, l), mem.size));
                }
                let tx = transactions(&exec.scratch_addr, exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                for (i, &l) in st.mask.iter().enumerate() {
                    let v = opnd(&st.regs, n, *src, l).convert(*ty);
                    exec.view.write(exec.scratch_addr[i].0, v)?;
                }
                exec.observe_mem(
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                );
            }
        }
        COp::LdShared { ty, dst, mem } => {
            if uniform {
                let a = mem_addr(&st.regs, n, mem, l0);
                let ways = conflict_ways(
                    &[(a, mem.size)],
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                // Observation precedes the access, as in the interpreter
                // (the sanitizer sees even out-of-bounds shared reads).
                observe_mem_uniform(
                    exec,
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                    a,
                    mem.size,
                );
                let v = exec.shared.read(*ty, a)?;
                for &l in &st.mask {
                    st.regs[dst * n + l] = v;
                }
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((mem_addr(&st.regs, n, mem, l), mem.size));
                }
                let ways = conflict_ways(
                    &exec.scratch_addr,
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                exec.observe_mem(
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                );
                for (i, &l) in st.mask.iter().enumerate() {
                    let v = exec.shared.read(*ty, exec.scratch_addr[i].0)?;
                    st.regs[dst * n + l] = v;
                }
            }
        }
        COp::StShared { ty, src, mem } => {
            if uniform {
                let a = mem_addr(&st.regs, n, mem, l0);
                let ways = conflict_ways(
                    &[(a, mem.size)],
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                let v = opnd(&st.regs, n, *src, l0).convert(*ty);
                exec.shared.write(a, v)?;
                observe_mem_uniform(
                    exec,
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                    a,
                    mem.size,
                );
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((mem_addr(&st.regs, n, mem, l), mem.size));
                }
                let ways = conflict_ways(
                    &exec.scratch_addr,
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                for (i, &l) in st.mask.iter().enumerate() {
                    let v = opnd(&st.regs, n, *src, l).convert(*ty);
                    exec.shared.write(exec.scratch_addr[i].0, v)?;
                }
                exec.observe_mem(
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                );
            }
        }
        COp::AtomGlobal {
            op,
            ty,
            mem,
            src,
            dst,
        } => {
            // Never on the uniform path (serialized applications differ
            // from one application); faithful port of the interpreter arm.
            exec.stats.atomics += 1;
            exec.stats.global_accesses += 1;
            d.atomics = 1;
            d.global_accesses = 1;
            d.global_transactions = mlen as u64;
            d.atomic_cycles = mlen as u64 * exec.cost.atomic_lane;
            exec.scratch_addr.clear();
            for &l in &st.mask {
                exec.scratch_addr
                    .push((mem_addr(&st.regs, n, mem, l), mem.size));
            }
            exec.observe_mem(
                TraceSpace::Global,
                &st.mask,
                warp_id,
                pc,
                AccessKind::Atomic,
                recorded,
            );
            if dst.is_some() && matches!(exec.view, MemView::Overlay(_)) {
                return Err(AccessAbort::NeedsSequential("atomic with a result operand"));
            }
            for (i, &l) in st.mask.iter().enumerate() {
                let addr = exec.scratch_addr[i].0;
                let v = opnd(&st.regs, n, *src, l).convert(*ty);
                if let Some(old) = exec.view.atom(*op, *ty, addr, v)? {
                    if let Some(dr) = dst {
                        st.regs[dr * n + l] = old;
                    }
                }
            }
            exec.stats.global_transactions += mlen as u64;
        }
        COp::Bar => {
            exec.stats.barriers += 1;
            d.barriers = 1;
            d.barrier_cycles = exec.cost.barrier;
            for &l in &st.mask {
                exec.threads[l].at_barrier = true;
                exec.threads[l].pc = pc + 1;
            }
            flow = Flow::Stop;
        }
        COp::Bra { target, cond } => {
            match cond {
                None => {
                    for &l in &st.mask {
                        exec.threads[l].pc = *target;
                    }
                }
                Some((r, expect)) => {
                    if uniform {
                        let take = st.regs[r * n + l0].as_bool() == *expect;
                        let to = if take { *target } else { pc + 1 };
                        for &l in &st.mask {
                            exec.threads[l].pc = to;
                        }
                    } else {
                        for &l in &st.mask {
                            let take = st.regs[r * n + l].as_bool() == *expect;
                            exec.threads[l].pc = if take { *target } else { pc + 1 };
                        }
                    }
                }
            }
            d.alu_cycles = exec.cost.alu;
            flow = Flow::Stop;
        }
        COp::Ret => {
            for &l in &st.mask {
                exec.threads[l].exited = true;
            }
            flow = Flow::Stop;
        }
    }
    exec.cycles_raw += d.cycles();
    if let Some(p) = exec.prof.as_mut() {
        p.record(pc, warp_id, &d);
    }
    Ok(flow)
}

/// Global-memory charge shared by the load/store arms (identical to the
/// interpreter's bookkeeping).
#[inline]
fn charge_global(exec: &mut BlockExec, d: &mut PcCounters, tx: u64) {
    exec.stats.global_accesses += 1;
    exec.stats.global_transactions += tx;
    d.global_accesses = 1;
    d.global_transactions = tx;
    // First transaction is unavoidable; the rest are the serialization
    // penalty of an uncoalesced access.
    d.mem_cycles = exec.cost.global_segment;
    d.mem_serial_cycles = (tx - 1) * exec.cost.global_segment;
}

/// Shared-memory charge shared by the load/store arms.
#[inline]
fn charge_shared(exec: &mut BlockExec, d: &mut PcCounters, ways: u64) {
    exec.stats.shared_accesses += 1;
    exec.stats.shared_ways += ways;
    d.shared_accesses = 1;
    d.shared_ways = ways;
    // First way is conflict-free; extra ways are the bank-conflict
    // serialization penalty.
    d.shared_cycles = exec.cost.shared_way;
    d.conflict_cycles = (ways - 1) * exec.cost.shared_way;
}

// ---------------------------------------------------------------------------
// Typed execution
// ---------------------------------------------------------------------------

/// Per-block state of the typed tier: one flat bit row per register and
/// constant (`bits[row * n + lane]`), plus the scratch buffers.
struct TypedState {
    bits: Vec<u64>,
    n: usize,
    mask: Vec<usize>,
    /// `mask` is a contiguous lane range (the overwhelmingly common
    /// case): lane loops become plain ranges.
    contig: bool,
    seg_buf: Vec<u64>,
    bank_counts: Vec<u32>,
    /// Conversion scratch for coalesced span stores.
    tmp: Vec<u64>,
}

/// Broadcast `v` to the active lanes of row `dst`.
#[inline(always)]
fn fill(bits: &mut [u64], n: usize, mask: &[usize], contig: bool, dst: usize, v: u64) {
    let dr = dst * n;
    if contig {
        let lo = mask[0];
        bits[dr + lo..dr + lo + mask.len()].fill(v);
    } else {
        for &l in mask {
            bits[dr + l] = v;
        }
    }
}

/// Apply `f` lane-wise over two converted source rows into `dst`. The
/// `(op, ty)` dispatch happens once at the call site; this is the tight
/// loop. Errors abort mid-loop with earlier lanes already written, in
/// ascending lane order — exactly the interpreter's partial-write
/// semantics for faults like division by zero.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn map2<T: Copy, U>(
    bits: &mut [u64],
    n: usize,
    mask: &[usize],
    contig: bool,
    dst: usize,
    a: usize,
    b: usize,
    ca: Conv,
    cb: Conv,
    dec: impl Fn(u64) -> T,
    enc: impl Fn(U) -> u64,
    f: impl Fn(T, T) -> Result<U, SimError>,
) -> Result<(), SimError> {
    let (dr, ar, br) = (dst * n, a * n, b * n);
    if contig {
        let lo = mask[0];
        let hi = lo + mask.len();
        if ca == Conv::Id && cb == Conv::Id {
            for l in lo..hi {
                let r = f(dec(bits[ar + l]), dec(bits[br + l]))?;
                bits[dr + l] = enc(r);
            }
        } else {
            for l in lo..hi {
                let r = f(dec(ca.apply(bits[ar + l])), dec(cb.apply(bits[br + l])))?;
                bits[dr + l] = enc(r);
            }
        }
    } else {
        for &l in mask {
            let r = f(dec(ca.apply(bits[ar + l])), dec(cb.apply(bits[br + l])))?;
            bits[dr + l] = enc(r);
        }
    }
    Ok(())
}

/// Unary twin of [`map2`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn map1<T: Copy, U>(
    bits: &mut [u64],
    n: usize,
    mask: &[usize],
    contig: bool,
    dst: usize,
    a: usize,
    ca: Conv,
    dec: impl Fn(u64) -> T,
    enc: impl Fn(U) -> u64,
    f: impl Fn(T) -> Result<U, SimError>,
) -> Result<(), SimError> {
    let (dr, ar) = (dst * n, a * n);
    if contig {
        let lo = mask[0];
        let hi = lo + mask.len();
        for l in lo..hi {
            let r = f(dec(ca.apply(bits[ar + l])))?;
            bits[dr + l] = enc(r);
        }
    } else {
        for &l in mask {
            let r = f(dec(ca.apply(bits[ar + l])))?;
            bits[dr + l] = enc(r);
        }
    }
    Ok(())
}

/// Typed `Bin`: the bit-level image of [`eval_bin`] with the type
/// dispatch and operand conversions hoisted out of the lane loop.
#[allow(clippy::too_many_arguments)]
fn bin_bits(
    op: BinOp,
    ty: Ty,
    bits: &mut [u64],
    n: usize,
    mask: &[usize],
    contig: bool,
    uniform: bool,
    dst: usize,
    a: usize,
    b: usize,
    ca: Conv,
    cb: Conv,
) -> Result<(), SimError> {
    macro_rules! go {
        ($dec:expr, $enc:expr, $f:expr) => {{
            if uniform {
                let l0 = mask[0];
                let r = $f(
                    $dec(ca.apply(bits[a * n + l0])),
                    $dec(cb.apply(bits[b * n + l0])),
                )?;
                fill(bits, n, mask, contig, dst, $enc(r));
                Ok(())
            } else {
                map2(bits, n, mask, contig, dst, a, b, ca, cb, $dec, $enc, $f)
            }
        }};
    }
    macro_rules! int_ops {
        ($dec:expr, $enc:expr, $t:ty) => {
            match op {
                BinOp::Add => go!($dec, $enc, |x: $t, y: $t| Ok(x.wrapping_add(y))),
                BinOp::Sub => go!($dec, $enc, |x: $t, y: $t| Ok(x.wrapping_sub(y))),
                BinOp::Mul => go!($dec, $enc, |x: $t, y: $t| Ok(x.wrapping_mul(y))),
                BinOp::Div => go!($dec, $enc, |x: $t, y: $t| if y == 0 {
                    Err(SimError::DivisionByZero)
                } else {
                    Ok(x.wrapping_div(y))
                }),
                BinOp::Rem => go!($dec, $enc, |x: $t, y: $t| if y == 0 {
                    Err(SimError::DivisionByZero)
                } else {
                    Ok(x.wrapping_rem(y))
                }),
                BinOp::Min => go!($dec, $enc, |x: $t, y: $t| Ok(x.min(y))),
                BinOp::Max => go!($dec, $enc, |x: $t, y: $t| Ok(x.max(y))),
                BinOp::And => go!($dec, $enc, |x: $t, y: $t| Ok(x & y)),
                BinOp::Or => go!($dec, $enc, |x: $t, y: $t| Ok(x | y)),
                BinOp::Xor => go!($dec, $enc, |x: $t, y: $t| Ok(x ^ y)),
                BinOp::Shl => go!($dec, $enc, |x: $t, y: $t| Ok(x.wrapping_shl(y as u32))),
                BinOp::Shr => go!($dec, $enc, |x: $t, y: $t| Ok(x.wrapping_shr(y as u32))),
            }
        };
    }
    macro_rules! float_ops {
        ($dec:expr, $enc:expr, $t:ty) => {
            match op {
                BinOp::Add => go!($dec, $enc, |x: $t, y: $t| Ok(x + y)),
                BinOp::Sub => go!($dec, $enc, |x: $t, y: $t| Ok(x - y)),
                BinOp::Mul => go!($dec, $enc, |x: $t, y: $t| Ok(x * y)),
                BinOp::Div => go!($dec, $enc, |x: $t, y: $t| Ok(x / y)),
                BinOp::Rem => go!($dec, $enc, |x: $t, y: $t| Ok(x % y)),
                BinOp::Min => go!($dec, $enc, |x: $t, y: $t| Ok(x.min(y))),
                BinOp::Max => go!($dec, $enc, |x: $t, y: $t| Ok(x.max(y))),
                _ => Err(SimError::TypeError {
                    context: format!("bitwise {op} on float type {ty}"),
                }),
            }
        };
    }
    match ty {
        Ty::I32 => int_ops!(|b| b as u32 as i32, |r: i32| r as u32 as u64, i32),
        Ty::I64 => int_ops!(|b| b as i64, |r: i64| r as u64, i64),
        Ty::U64 => int_ops!(|b| b, |r: u64| r, u64),
        // Float encoders canonicalize NaN results, the bit-level image of
        // [`eval_bin`]'s canonicalization (see [`crate::types::canon_f32`]).
        Ty::F32 => {
            float_ops!(
                |b| f32::from_bits(b as u32),
                |r: f32| crate::types::canon_f32(r).to_bits() as u64,
                f32
            )
        }
        Ty::F64 => float_ops!(
            f64::from_bits,
            |r: f64| crate::types::canon_f64(r).to_bits(),
            f64
        ),
        Ty::Pred => match op {
            BinOp::And => go!(|b| b != 0, |r: bool| r as u64, |x, y| Ok(x && y)),
            BinOp::Or => go!(|b| b != 0, |r: bool| r as u64, |x, y| Ok(x || y)),
            BinOp::Xor => go!(|b| b != 0, |r: bool| r as u64, |x: bool, y: bool| Ok(x ^ y)),
            _ => Err(SimError::TypeError {
                context: format!("arithmetic {op} on predicate"),
            }),
        },
    }
}

/// Typed `Cmp`: the bit-level image of [`eval_cmp`] over pre-converted
/// operands (native float comparisons reproduce the `partial_cmp` table,
/// including `Ne` on NaN).
#[allow(clippy::too_many_arguments)]
fn cmp_bits(
    op: CmpOp,
    ty: Ty,
    bits: &mut [u64],
    n: usize,
    mask: &[usize],
    contig: bool,
    uniform: bool,
    dst: usize,
    a: usize,
    b: usize,
    ca: Conv,
    cb: Conv,
) {
    macro_rules! go {
        ($dec:expr, $f:expr) => {{
            let enc = |r: bool| r as u64;
            let r: Result<(), SimError> = if uniform {
                let l0 = mask[0];
                let v = $f(
                    $dec(ca.apply(bits[a * n + l0])),
                    $dec(cb.apply(bits[b * n + l0])),
                );
                fill(bits, n, mask, contig, dst, enc(v));
                Ok(())
            } else {
                map2(
                    bits,
                    n,
                    mask,
                    contig,
                    dst,
                    a,
                    b,
                    ca,
                    cb,
                    $dec,
                    enc,
                    |x, y| Ok($f(x, y)),
                )
            };
            let _ = r; // comparisons cannot fault
        }};
    }
    macro_rules! cmp_ops {
        ($dec:expr, $t:ty) => {
            match op {
                CmpOp::Eq => go!($dec, |x: $t, y: $t| x == y),
                CmpOp::Ne => go!($dec, |x: $t, y: $t| x != y),
                CmpOp::Lt => go!($dec, |x: $t, y: $t| x < y),
                CmpOp::Le => go!($dec, |x: $t, y: $t| x <= y),
                CmpOp::Gt => go!($dec, |x: $t, y: $t| x > y),
                CmpOp::Ge => go!($dec, |x: $t, y: $t| x >= y),
            }
        };
    }
    match ty {
        Ty::I32 => cmp_ops!(|b| b as u32 as i32, i32),
        Ty::I64 => cmp_ops!(|b| b as i64, i64),
        // `Pred` compares as 0/1 integers (`as_i64`), same order as bits.
        Ty::U64 | Ty::Pred => cmp_ops!(|b| b, u64),
        Ty::F32 => cmp_ops!(|b| f32::from_bits(b as u32), f32),
        Ty::F64 => cmp_ops!(f64::from_bits, f64),
    }
}

/// Typed `Un`: the bit-level image of [`eval_un`]. The `F32` arms
/// round-trip the converted operand through `f64` once more, because
/// `eval_un` extracts via `as_f64() as f32` after converting.
#[allow(clippy::too_many_arguments)]
fn un_bits(
    op: UnOp,
    ty: Ty,
    bits: &mut [u64],
    n: usize,
    mask: &[usize],
    contig: bool,
    uniform: bool,
    dst: usize,
    a: usize,
    ca: Conv,
) -> Result<(), SimError> {
    macro_rules! go {
        ($dec:expr, $enc:expr, $f:expr) => {{
            if uniform {
                let l0 = mask[0];
                let r = $f($dec(ca.apply(bits[a * n + l0])))?;
                fill(bits, n, mask, contig, dst, $enc(r));
                Ok(())
            } else {
                map1(bits, n, mask, contig, dst, a, ca, $dec, $enc, $f)
            }
        }};
    }
    let dec_i32 = |b: u64| b as u32 as i32;
    let enc_i32 = |r: i32| r as u32 as u64;
    let dec_i64 = |b: u64| b as i64;
    let enc_i64 = |r: i64| r as u64;
    let dec_f32 = |b: u64| (f32::from_bits(b as u32) as f64) as f32;
    // NaN-canonicalizing encoders, matching [`eval_un`]'s float results.
    let enc_f32 = |r: f32| crate::types::canon_f32(r).to_bits() as u64;
    let dec_f64 = f64::from_bits;
    let enc_f64 = |r: f64| crate::types::canon_f64(r).to_bits();
    match (op, ty) {
        (UnOp::Neg, Ty::I32) => go!(dec_i32, enc_i32, |x: i32| Ok(x.wrapping_neg())),
        (UnOp::Neg, Ty::I64) => go!(dec_i64, enc_i64, |x: i64| Ok(x.wrapping_neg())),
        (UnOp::Neg, Ty::F32) => go!(dec_f32, enc_f32, |x: f32| Ok(-x)),
        (UnOp::Neg, Ty::F64) => go!(dec_f64, enc_f64, |x: f64| Ok(-x)),
        (UnOp::Abs, Ty::I32) => go!(dec_i32, enc_i32, |x: i32| Ok(x.wrapping_abs())),
        (UnOp::Abs, Ty::I64) => go!(dec_i64, enc_i64, |x: i64| Ok(x.wrapping_abs())),
        (UnOp::Abs, Ty::F32) => go!(dec_f32, enc_f32, |x: f32| Ok(x.abs())),
        (UnOp::Abs, Ty::F64) => go!(dec_f64, enc_f64, |x: f64| Ok(x.abs())),
        (UnOp::Sqrt, Ty::F32) => go!(dec_f32, enc_f32, |x: f32| Ok(x.sqrt())),
        (UnOp::Sqrt, Ty::F64) => go!(dec_f64, enc_f64, |x: f64| Ok(x.sqrt())),
        (UnOp::Not, Ty::Pred) => go!(|b: u64| b != 0, |r: bool| r as u64, |x: bool| Ok(!x)),
        (UnOp::Not, Ty::I32) => go!(dec_i32, enc_i32, |x: i32| Ok(!x)),
        (UnOp::Not, Ty::I64) => go!(dec_i64, enc_i64, |x: i64| Ok(!x)),
        (op, ty) => Err(SimError::TypeError {
            context: format!("unary {op} at type {ty}"),
        }),
    }
}

#[inline(always)]
fn tmem_addr(bits: &[u64], n: usize, mem: &TMem, lane: usize) -> u64 {
    let base = mem.bc.apply(bits[mem.base * n + lane]);
    let idx = mem
        .index
        .map_or(0, |(r, c)| c.apply(bits[r * n + lane]) as i64);
    mref_addr(base, idx, mem.scale, mem.disp)
}

/// True when the warp's per-lane accesses form one dense ascending span
/// (`addrs[i] == addrs[0] + i * size`): the perfectly coalesced pattern
/// that can be served by a single span read/write.
#[inline]
fn coalesced(addrs: &[(u64, usize)], size: usize) -> bool {
    addrs.len() > 1
        && addrs
            .iter()
            .enumerate()
            .all(|(i, &(a, _))| a == addrs[0].0 + (i * size) as u64)
}

/// Typed twin of [`run_block`]: same warp scheduling, bit rows instead
/// of [`Value`] rows.
fn run_block_typed(
    ck: &CompiledKernel,
    plan: &TypedPlan,
    exec: &mut BlockExec,
) -> Result<(), AccessAbort> {
    let warp = exec.dev.warp_size as usize;
    let n = exec.threads.len();
    let num_warps = n.div_ceil(warp);
    let mut st = TypedState {
        bits: vec![0u64; (plan.num_regs + plan.consts.len()) * n],
        n,
        mask: Vec::with_capacity(warp),
        contig: true,
        seg_buf: Vec::with_capacity(2 * warp),
        bank_counts: vec![0; exec.dev.shared_banks as usize],
        tmp: Vec::with_capacity(warp),
    };
    for (i, &c) in plan.consts.iter().enumerate() {
        let r = (plan.num_regs + i) * n;
        st.bits[r..r + n].fill(c);
    }
    loop {
        for w in 0..num_warps {
            let lo = w * warp;
            let hi = ((w + 1) * warp).min(n);
            let warp_id = w as u32;
            loop {
                let mut min_pc = usize::MAX;
                let mut runnable = 0usize;
                for l in lo..hi {
                    let t = &exec.threads[l];
                    if t.runnable() {
                        runnable += 1;
                        if t.pc < min_pc {
                            min_pc = t.pc;
                        }
                    }
                }
                if min_pc == usize::MAX {
                    break;
                }
                st.mask.clear();
                for l in lo..hi {
                    let t = &exec.threads[l];
                    if t.runnable() && t.pc == min_pc {
                        st.mask.push(l);
                    }
                }
                st.contig = st.mask[st.mask.len() - 1] - st.mask[0] + 1 == st.mask.len();
                let whole = st.mask.len() == runnable;
                run_group_typed(ck, plan, exec, &mut st, warp_id, min_pc, whole)?;
            }
        }
        if !exec.barrier_round()? {
            break;
        }
    }
    exec.finish_block(num_warps);
    Ok(())
}

/// Control transfer out of one typed instruction: fall through, stop the
/// group (barrier, exit, or a divergent branch — the scheduler must
/// rescan), or jump the *whole intact group* to a new leader (uniform
/// branch or run fallthrough), which skips the min-pc rescan entirely.
enum TFlow {
    Next,
    Stop,
    Goto(usize),
}

/// Typed twin of [`run_group`], extended to chase the group across runs:
/// as long as every active lane leaves a run together (fallthrough or a
/// branch every lane takes the same way), keep executing with the same
/// mask instead of handing back to the per-warp min-pc scan. Thread `pc`s
/// are only materialized at the points the scheduler can observe them
/// (barrier, exit, divergence).
fn run_group_typed(
    ck: &CompiledKernel,
    plan: &TypedPlan,
    exec: &mut BlockExec,
    st: &mut TypedState,
    warp_id: u32,
    leader: usize,
    whole: bool,
) -> Result<(), AccessAbort> {
    let mut leader = leader;
    loop {
        let ri = ck.run_of[leader];
        let run = ck.runs[ri];
        debug_assert_eq!(run.start, leader, "groups rest only at leaders");
        let uniform = ck.run_uniform[ri];
        let mut next = run.end;
        for pc in run.start..run.end {
            let flow = exec_top(plan, exec, st, warp_id, pc, uniform)?;
            exec.watchdog()?;
            match flow {
                TFlow::Next => {}
                TFlow::Stop => return Ok(()),
                TFlow::Goto(to) => {
                    next = to;
                    break;
                }
            }
        }
        // Chasing past the run is only scheduler-faithful when this group
        // IS the warp's whole runnable set: with a divergent sibling group
        // pending, the interpreter would re-pick the min-pc group here.
        if !whole {
            for &l in &st.mask {
                exec.threads[l].pc = next;
            }
            return Ok(());
        }
        leader = next;
    }
}

/// Execute one typed instruction for the current group. The
/// instrumentation sequence is byte-for-byte the interpreter's (and
/// [`exec_op`]'s); only the register representation differs.
fn exec_top(
    plan: &TypedPlan,
    exec: &mut BlockExec,
    st: &mut TypedState,
    warp_id: u32,
    pc: usize,
    uniform: bool,
) -> Result<TFlow, AccessAbort> {
    let mlen = st.mask.len();
    debug_assert!(mlen > 0);
    let recorded = match exec.trace.as_mut() {
        Some(t) => t.record(TraceEvent {
            block: exec.block_idx,
            warp: warp_id,
            pc,
            active: mlen as u32,
            text: crate::ir::format_inst(&exec.kernel.insts[pc]),
            mem: None,
        }),
        None => false,
    };
    exec.stats.warp_insts += 1;
    exec.stats.lane_insts += mlen as u64;
    let mut d = PcCounters {
        warp_insts: 1,
        lane_insts: mlen as u64,
        issue_cycles: exec.cost.issue,
        ..PcCounters::default()
    };
    let n = st.n;
    let l0 = st.mask[0];
    let mut flow = TFlow::Next;
    match &plan.tops[pc] {
        TOp::Broadcast { dst, bits } => {
            fill(&mut st.bits, n, &st.mask, st.contig, *dst, *bits);
            d.alu_cycles = exec.cost.alu;
        }
        TOp::BadParams => {
            return Err(SimError::BadParams {
                expected: exec.kernel.num_params,
                got: exec.params.len() as u32,
            }
            .into());
        }
        TOp::ReadSpecial { dst, sr } => {
            if uniform {
                let v = value_bits(exec.special(l0, *sr));
                fill(&mut st.bits, n, &st.mask, st.contig, *dst, v);
            } else {
                let dr = dst * n;
                for &l in &st.mask {
                    let v = value_bits(exec.special(l, *sr));
                    st.bits[dr + l] = v;
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        TOp::Bin {
            op,
            ty,
            dst,
            a,
            b,
            ca,
            cb,
            sfu,
        } => {
            bin_bits(
                *op,
                *ty,
                &mut st.bits,
                n,
                &st.mask,
                st.contig,
                uniform,
                *dst,
                *a,
                *b,
                *ca,
                *cb,
            )?;
            d.alu_cycles = alu_cost(exec.cost, *ty, *sfu);
        }
        TOp::Cmp {
            op,
            ty,
            dst,
            a,
            b,
            ca,
            cb,
        } => {
            cmp_bits(
                *op,
                *ty,
                &mut st.bits,
                n,
                &st.mask,
                st.contig,
                uniform,
                *dst,
                *a,
                *b,
                *ca,
                *cb,
            );
            d.alu_cycles = alu_cost(exec.cost, *ty, false);
        }
        TOp::Un {
            op,
            ty,
            dst,
            a,
            ca,
            sfu,
        } => {
            un_bits(
                *op,
                *ty,
                &mut st.bits,
                n,
                &st.mask,
                st.contig,
                uniform,
                *dst,
                *a,
                *ca,
            )?;
            d.alu_cycles = alu_cost(exec.cost, *ty, *sfu);
        }
        TOp::Select {
            dst,
            cond,
            kind,
            a,
            b,
        } => {
            let (dr, cr, ar, br) = (dst * n, cond * n, a * n, b * n);
            if uniform {
                let src = if cond_true(*kind, st.bits[cr + l0]) {
                    ar
                } else {
                    br
                };
                let v = st.bits[src + l0];
                fill(&mut st.bits, n, &st.mask, st.contig, *dst, v);
            } else if st.contig {
                let lo = l0;
                let hi = lo + mlen;
                for l in lo..hi {
                    let src = if cond_true(*kind, st.bits[cr + l]) {
                        ar
                    } else {
                        br
                    };
                    st.bits[dr + l] = st.bits[src + l];
                }
            } else {
                for &l in &st.mask {
                    let src = if cond_true(*kind, st.bits[cr + l]) {
                        ar
                    } else {
                        br
                    };
                    st.bits[dr + l] = st.bits[src + l];
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        TOp::Cvt { dst, src, cv } => {
            let (dr, sr) = (dst * n, src * n);
            if uniform {
                let v = cv.apply(st.bits[sr + l0]);
                fill(&mut st.bits, n, &st.mask, st.contig, *dst, v);
            } else if st.contig {
                if *cv == Conv::Id {
                    st.bits.copy_within(sr + l0..sr + l0 + mlen, dr + l0);
                } else {
                    for l in l0..l0 + mlen {
                        st.bits[dr + l] = cv.apply(st.bits[sr + l]);
                    }
                }
            } else {
                for &l in &st.mask {
                    st.bits[dr + l] = cv.apply(st.bits[sr + l]);
                }
            }
            d.alu_cycles = exec.cost.alu;
        }
        TOp::LdGlobal { ty, dst, mem } => {
            let dr = dst * n;
            if uniform {
                let a = tmem_addr(&st.bits, n, mem, l0);
                let tx = transactions(&[(a, mem.size)], exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                let v = exec.view.read_bits(*ty, a)?;
                fill(&mut st.bits, n, &st.mask, st.contig, *dst, v);
                observe_mem_uniform(
                    exec,
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                    a,
                    mem.size,
                );
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((tmem_addr(&st.bits, n, mem, l), mem.size));
                }
                let tx = transactions(&exec.scratch_addr, exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                let done = st.contig && coalesced(&exec.scratch_addr, mem.size) && {
                    let a0 = exec.scratch_addr[0].0;
                    exec.view
                        .read_span_bits(*ty, a0, &mut st.bits[dr + l0..dr + l0 + mlen])
                };
                if !done {
                    for (i, &l) in st.mask.iter().enumerate() {
                        st.bits[dr + l] = exec.view.read_bits(*ty, exec.scratch_addr[i].0)?;
                    }
                }
                exec.observe_mem(
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                );
            }
        }
        TOp::StGlobal { ty, src, sc, mem } => {
            let sr = src * n;
            if uniform {
                let a = tmem_addr(&st.bits, n, mem, l0);
                let tx = transactions(&[(a, mem.size)], exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                exec.view.write_bits(*ty, a, sc.apply(st.bits[sr + l0]))?;
                observe_mem_uniform(
                    exec,
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                    a,
                    mem.size,
                );
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((tmem_addr(&st.bits, n, mem, l), mem.size));
                }
                let tx = transactions(&exec.scratch_addr, exec.dev.segment_bytes, &mut st.seg_buf);
                charge_global(exec, &mut d, tx);
                let done = st.contig && coalesced(&exec.scratch_addr, mem.size) && {
                    let a0 = exec.scratch_addr[0].0;
                    let row = &st.bits[sr + l0..sr + l0 + mlen];
                    if *sc == Conv::Id {
                        exec.view.write_span_bits(*ty, a0, row)
                    } else {
                        st.tmp.clear();
                        st.tmp.extend(row.iter().map(|&b| sc.apply(b)));
                        exec.view.write_span_bits(*ty, a0, &st.tmp)
                    }
                };
                if !done {
                    for (i, &l) in st.mask.iter().enumerate() {
                        exec.view.write_bits(
                            *ty,
                            exec.scratch_addr[i].0,
                            sc.apply(st.bits[sr + l]),
                        )?;
                    }
                }
                exec.observe_mem(
                    TraceSpace::Global,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                );
            }
        }
        TOp::LdShared { ty, dst, mem } => {
            let dr = dst * n;
            if uniform {
                let a = tmem_addr(&st.bits, n, mem, l0);
                let ways = conflict_ways(
                    &[(a, mem.size)],
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                observe_mem_uniform(
                    exec,
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                    a,
                    mem.size,
                );
                let v = exec.shared.read_bits(*ty, a)?;
                fill(&mut st.bits, n, &st.mask, st.contig, *dst, v);
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((tmem_addr(&st.bits, n, mem, l), mem.size));
                }
                let ways = conflict_ways(
                    &exec.scratch_addr,
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                exec.observe_mem(
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Read,
                    recorded,
                );
                let done = st.contig && coalesced(&exec.scratch_addr, mem.size) && {
                    let a0 = exec.scratch_addr[0].0;
                    exec.shared
                        .read_span_bits(*ty, a0, &mut st.bits[dr + l0..dr + l0 + mlen])
                };
                if !done {
                    for (i, &l) in st.mask.iter().enumerate() {
                        st.bits[dr + l] = exec.shared.read_bits(*ty, exec.scratch_addr[i].0)?;
                    }
                }
            }
        }
        TOp::StShared { ty, src, sc, mem } => {
            let sr = src * n;
            if uniform {
                let a = tmem_addr(&st.bits, n, mem, l0);
                let ways = conflict_ways(
                    &[(a, mem.size)],
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                exec.shared.write_bits(*ty, a, sc.apply(st.bits[sr + l0]))?;
                observe_mem_uniform(
                    exec,
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                    a,
                    mem.size,
                );
            } else {
                exec.scratch_addr.clear();
                for &l in &st.mask {
                    exec.scratch_addr
                        .push((tmem_addr(&st.bits, n, mem, l), mem.size));
                }
                let ways = conflict_ways(
                    &exec.scratch_addr,
                    exec.dev.shared_banks,
                    &mut st.seg_buf,
                    &mut st.bank_counts,
                );
                charge_shared(exec, &mut d, ways);
                let done = st.contig && coalesced(&exec.scratch_addr, mem.size) && {
                    let a0 = exec.scratch_addr[0].0;
                    let row = &st.bits[sr + l0..sr + l0 + mlen];
                    if *sc == Conv::Id {
                        exec.shared.write_span_bits(*ty, a0, row)
                    } else {
                        st.tmp.clear();
                        st.tmp.extend(row.iter().map(|&b| sc.apply(b)));
                        exec.shared.write_span_bits(*ty, a0, &st.tmp)
                    }
                };
                if !done {
                    for (i, &l) in st.mask.iter().enumerate() {
                        exec.shared.write_bits(
                            *ty,
                            exec.scratch_addr[i].0,
                            sc.apply(st.bits[sr + l]),
                        )?;
                    }
                }
                exec.observe_mem(
                    TraceSpace::Shared,
                    &st.mask,
                    warp_id,
                    pc,
                    AccessKind::Write,
                    recorded,
                );
            }
        }
        TOp::AtomGlobal {
            op,
            ty,
            mem,
            src,
            sc,
            dst,
        } => {
            let sr = src * n;
            exec.stats.atomics += 1;
            exec.stats.global_accesses += 1;
            d.atomics = 1;
            d.global_accesses = 1;
            d.global_transactions = mlen as u64;
            d.atomic_cycles = mlen as u64 * exec.cost.atomic_lane;
            exec.scratch_addr.clear();
            for &l in &st.mask {
                exec.scratch_addr
                    .push((tmem_addr(&st.bits, n, mem, l), mem.size));
            }
            exec.observe_mem(
                TraceSpace::Global,
                &st.mask,
                warp_id,
                pc,
                AccessKind::Atomic,
                recorded,
            );
            if dst.is_some() && matches!(exec.view, MemView::Overlay(_)) {
                return Err(AccessAbort::NeedsSequential("atomic with a result operand"));
            }
            for (i, &l) in st.mask.iter().enumerate() {
                let addr = exec.scratch_addr[i].0;
                let v = bits_value(*ty, sc.apply(st.bits[sr + l]));
                if let Some(old) = exec.view.atom(*op, *ty, addr, v)? {
                    if let Some(dr) = dst {
                        st.bits[dr * n + l] = value_bits(old);
                    }
                }
            }
            exec.stats.global_transactions += mlen as u64;
        }
        TOp::Bar => {
            exec.stats.barriers += 1;
            d.barriers = 1;
            d.barrier_cycles = exec.cost.barrier;
            for &l in &st.mask {
                exec.threads[l].at_barrier = true;
                exec.threads[l].pc = pc + 1;
            }
            flow = TFlow::Stop;
        }
        TOp::Bra { target, cond } => {
            flow = match cond {
                None => TFlow::Goto(*target),
                Some((r, kind, expect)) => {
                    let cr = r * n;
                    let take0 = cond_true(*kind, st.bits[cr + l0]) == *expect;
                    let together = uniform
                        || st
                            .mask
                            .iter()
                            .all(|&l| (cond_true(*kind, st.bits[cr + l]) == *expect) == take0);
                    if together {
                        TFlow::Goto(if take0 { *target } else { pc + 1 })
                    } else {
                        for &l in &st.mask {
                            let take = cond_true(*kind, st.bits[cr + l]) == *expect;
                            exec.threads[l].pc = if take { *target } else { pc + 1 };
                        }
                        TFlow::Stop
                    }
                }
            };
            d.alu_cycles = exec.cost.alu;
        }
        TOp::Ret => {
            for &l in &st.mask {
                exec.threads[l].exited = true;
            }
            flow = TFlow::Stop;
        }
    }
    exec.cycles_raw += d.cycles();
    if let Some(p) = exec.prof.as_mut() {
        p.record(pc, warp_id, &d);
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::coalesce;
    use crate::ir::MemRef;

    /// A kernel with uniform and divergent runs, a loop, and a barrier:
    /// tree-reduction-shaped control flow.
    fn shaped_kernel() -> Kernel {
        let mut b = KernelBuilder::new("shaped");
        let p = b.param(0); // uniform
        let tid = b.special(SpecialReg::TidX); // divergent
        let t64 = b.cvt(Ty::I64, tid);
        b.st_shared(Ty::I32, MemRef::indexed(Value::U64(0), t64, 4), tid);
        b.bar();
        // Uniform loop: for (s = 1; s < 4; s *= 2) { ... bar; }
        let s = b.mov_imm(Value::I32(1));
        let top = b.new_label();
        b.place(top);
        let done = b.cmp(CmpOp::Ge, Ty::I32, s, Value::I32(4));
        let exit = b.new_label();
        b.bra_if(done, exit);
        b.bin_to(s, BinOp::Mul, Ty::I32, s, Value::I32(2));
        b.bar();
        b.bra(top);
        b.place(exit);
        // Divergent tail: out[tid] = tid + s
        let v = b.bin(BinOp::Add, Ty::I32, tid, s);
        b.st_global(Ty::I32, MemRef::indexed(p, t64, 4), v);
        b.ret();
        b.finish()
    }

    #[test]
    fn compile_splits_runs_at_branches_and_barriers() {
        let k = shaped_kernel();
        let ck = CompiledKernel::compile(&k).expect("compiles");
        // Every pc belongs to exactly one run; runs tile the stream.
        assert_eq!(ck.run_of.len(), k.insts.len());
        let mut covered = 0;
        for (ri, r) in ck.runs.iter().enumerate() {
            assert!(r.start < r.end);
            covered += r.end - r.start;
            for pc in r.start..r.end {
                assert_eq!(ck.run_of[pc], ri);
            }
            // No Bar/Bra/Ret in the middle of a run.
            for pc in r.start..r.end - 1 {
                assert!(
                    !matches!(k.insts[pc], Inst::Bar | Inst::Bra { .. } | Inst::Ret),
                    "terminator mid-run at pc {pc}"
                );
            }
        }
        assert_eq!(covered, k.insts.len());
    }

    #[test]
    fn uniformity_analysis_classifies_registers() {
        let k = shaped_kernel();
        let ck = CompiledKernel::compile(&k).expect("compiles");
        // %r0 = param (uniform), %r1 = tid.x (divergent), %r2 = cvt(tid)
        // (divergent), %r3 = loop counter from constants under uniform
        // control (uniform), %r4 = loop-exit predicate (uniform),
        // %r5 = tid + s (divergent).
        assert!(ck.uniform_regs[0], "param must be uniform");
        assert!(!ck.uniform_regs[1], "tid.x must be divergent");
        assert!(!ck.uniform_regs[2], "cvt(tid) must be divergent");
        assert!(ck.uniform_regs[3], "uniform-loop counter must be uniform");
        assert!(ck.uniform_regs[4], "loop predicate must be uniform");
        assert!(!ck.uniform_regs[5], "tid + s must be divergent");
        // The loop header/body runs are uniform; the tid-indexed store
        // runs are not.
        let pretty = ck.describe();
        assert!(pretty.contains("uniform"), "{pretty}");
        assert!(pretty.contains("per-lane"), "{pretty}");
    }

    /// Golden test of the pre-decoded block form for a fixed kernel.
    #[test]
    fn describe_golden() {
        let mut b = KernelBuilder::new("g");
        let p = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let c = b.cmp(CmpOp::Lt, Ty::I32, tid, Value::I32(16));
        let out = b.new_label();
        b.bra_unless(c, out);
        let t64 = b.cvt(Ty::I64, tid);
        b.st_global(Ty::I32, MemRef::indexed(p, t64, 4), tid);
        b.place(out);
        b.ret();
        let k = b.finish();
        let ck = CompiledKernel::compile(&k).expect("compiles");
        let expect = "\
.compiled (regs=4, runs=3)
  run 0: pc 0..4 per-lane [bra.cond -> 6 | 4]
  run 1: pc 4..6 per-lane [fallthrough -> 6]
  run 2: pc 6..7 uniform [ret]
  uniform regs: %r0
";
        assert_eq!(ck.describe(), expect);
    }

    #[test]
    fn degenerate_kernels_fall_back() {
        // Empty stream.
        let k = Kernel {
            name: "empty".into(),
            insts: vec![],
            label_targets: vec![],
            num_regs: 0,
            shared_bytes: 0,
            num_params: 0,
            lines: vec![],
        };
        assert!(CompiledKernel::compile(&k).is_none());
        // Falls off the end (no hard terminator).
        let k = Kernel {
            name: "fall".into(),
            insts: vec![Inst::MovImm {
                dst: crate::ir::Reg(0),
                value: Value::I32(1),
            }],
            label_targets: vec![],
            num_regs: 1,
            shared_bytes: 0,
            num_params: 0,
            lines: vec![],
        };
        assert!(CompiledKernel::compile(&k).is_none());
        // Branch to one past the end.
        let k = Kernel {
            name: "off".into(),
            insts: vec![
                Inst::Bra {
                    target: crate::ir::Label(0),
                    cond: None,
                },
                Inst::Ret,
            ],
            label_targets: vec![2],
            num_regs: 0,
            shared_bytes: 0,
            num_params: 0,
            lines: vec![],
        };
        assert!(CompiledKernel::compile(&k).is_none());
    }

    /// The allocation-free coalescing twins agree with the reference
    /// implementations on representative and adversarial patterns.
    #[test]
    fn coalescing_twins_match_reference() {
        let patterns: Vec<Vec<(u64, usize)>> = vec![
            (0..32).map(|i| (i * 4, 4)).collect(),
            (0..32).map(|i| (i * 128, 4)).collect(),
            (0..32).map(|i| (64 + i * 4, 4)).collect(),
            (0..32).map(|i| (i * 8, 8)).collect(),
            std::iter::repeat_n((16, 4), 32).collect(),
            (0..32).map(|i| (i * 32 * 4, 4)).collect(),
            (0..32).map(|i| (i * 2 * 4, 4)).collect(),
            vec![(126, 4)],
            vec![(100, 0), (0, 4)],
            vec![(u64::MAX - 1, 4), (u64::MAX, 8)],
            vec![],
            // Descending and shuffled sequences: the monotonic fast path
            // must bail to the sort-and-dedup slow path, not miscount.
            (0..32).rev().map(|i| (i * 4, 4)).collect(),
            (0..32).rev().map(|i| (i * 128, 4)).collect(),
            (0..32).map(|i| ((i * 7 % 32) * 4, 4)).collect(),
            // Re-descending after an ascending prefix, with duplicates.
            vec![(0, 4), (4, 4), (4, 4), (0, 4), (512, 4), (8, 4)],
            // Ranges that restart below the running maximum but above an
            // earlier start (partial overlap with seen words/segments).
            vec![(0, 4), (640, 4), (256, 4), (384, 4)],
        ];
        let mut buf = Vec::new();
        let mut counts = vec![0u32; 32];
        for p in &patterns {
            assert_eq!(
                transactions(p, 128, &mut buf),
                coalesce::global_transactions(p, 128),
                "tx mismatch for {p:?}"
            );
            assert_eq!(
                conflict_ways(p, 32, &mut buf, &mut counts),
                coalesce::bank_conflict_degree(p, 32),
                "ways mismatch for {p:?}"
            );
        }
    }

    #[test]
    fn typed_plan_builds_for_single_typed_kernels() {
        let k = shaped_kernel();
        let mut ck = CompiledKernel::compile(&k).expect("compiles");
        ck.specialize(&[Value::U64(0x1000)]);
        assert!(
            ck.typed.is_some(),
            "single-typed kernel should get a typed plan"
        );
    }

    #[test]
    fn typed_plan_rejects_mixed_type_register_reuse() {
        let mut b = KernelBuilder::new("mixed");
        let r = b.mov_imm(Value::I32(1));
        b.bin_to(r, BinOp::Add, Ty::F32, r, Value::F32(1.0));
        let k = b.finish();
        let mut ck = CompiledKernel::compile(&k).expect("compiles");
        ck.specialize(&[]);
        assert!(
            ck.typed.is_none(),
            "a register written at two types must fall back to the generic tier"
        );
    }
}
