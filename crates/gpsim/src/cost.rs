//! Device configuration and timing cost model.
//!
//! The model is a *throughput* model: each warp-instruction is charged a
//! cycle cost, memory instructions are additionally charged per global
//! transaction / per shared-memory conflict way, and the per-block totals
//! are divided by a latency-hiding overlap factor that grows with the
//! number of resident warps. Blocks are distributed round-robin over SMs;
//! kernel time is the maximum per-SM total plus a fixed launch overhead.
//!
//! All knobs live in [`CostModel`] so experiments can recalibrate; the
//! defaults are Kepler-class (K20c) values matching the paper's platform.

/// Which executor runs kernel launches.
///
/// Both tiers are **bit-identical** in every observable output — results,
/// [`crate::stats::LaunchStats`], modelled cycles, traces, hazard reports,
/// profiles, and error values — so this is purely a speed knob (like
/// [`DeviceConfig::host_threads`], a simulator property, not a modelled
/// device property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// Pick the fastest tier that can run the kernel (currently: the
    /// compiled tier whenever the kernel is non-empty).
    #[default]
    Auto,
    /// Force the reference interpreter (one `Inst` dispatch per warp-step).
    Interpret,
    /// Force the compiled tier: pre-decoded basic-block runs, an SoA
    /// register file, and warp-uniform fast paths (see [`crate::compiled`]).
    Compiled,
}

impl std::str::FromStr for ExecTier {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ExecTier::Auto),
            "interpret" => Ok(ExecTier::Interpret),
            "compiled" => Ok(ExecTier::Compiled),
            other => Err(format!(
                "invalid execution tier `{other}` (expected auto|interpret|compiled)"
            )),
        }
    }
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecTier::Auto => "auto",
            ExecTier::Interpret => "interpret",
            ExecTier::Compiled => "compiled",
        })
    }
}

/// Static device limits and geometry (K20c-like by default).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors. The K20c exposes 13 (the paper
    /// assumes one may be disabled and sizes its grids for 12).
    pub num_sms: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory bytes available to one block.
    pub shared_mem_per_block: usize,
    /// Number of shared memory banks.
    pub shared_banks: u32,
    /// Global memory coalescing segment size in bytes.
    pub segment_bytes: u64,
    /// Global memory capacity in bytes (K20c: 5 GB; scaled default 1 GB to
    /// keep host allocations reasonable).
    pub global_mem_bytes: u64,
    /// Core clock in Hz (used to convert cycles to seconds). K20c: 706 MHz.
    pub clock_hz: f64,
    /// Host worker threads executing independent thread blocks in parallel
    /// (a *simulator* knob, not a modelled-device property — modelled
    /// cycles are bit-identical at any setting). `0` resolves to the
    /// `UHACC_HOST_THREADS` environment variable if set, else to
    /// [`std::thread::available_parallelism`]; `1` forces the sequential
    /// path.
    pub host_threads: u32,
    /// Profiler configuration; `None` disables profiling (no per-step
    /// attribution cost). Like `host_threads`, a *simulator* knob:
    /// enabling it never changes modelled cycles.
    pub profile: Option<crate::profile::ProfileConfig>,
    /// Which executor runs launches (interpreter vs compiled tier). Like
    /// `host_threads`, a *simulator* knob: every observable output is
    /// bit-identical across tiers.
    pub exec_tier: ExecTier,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            num_sms: 13,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 16,
            shared_mem_per_block: 48 * 1024,
            shared_banks: 32,
            segment_bytes: 128,
            global_mem_bytes: 1 << 30,
            clock_hz: 706e6,
            host_threads: 0,
            profile: None,
            exec_tier: ExecTier::Auto,
        }
    }
}

impl DeviceConfig {
    /// A small configuration for fast unit tests (fewer SMs, tiny memory).
    pub fn test_small() -> Self {
        DeviceConfig {
            num_sms: 2,
            global_mem_bytes: 1 << 24,
            ..Default::default()
        }
    }

    /// Structural validation. In release builds a malformed config (most
    /// importantly a non-power-of-two coalescing segment) would silently
    /// skew the cost model — [`crate::coalesce::global_transactions`] only
    /// `debug_assert!`s it — so this is enforced here, both at
    /// [`crate::Device::try_new`] and again on every launch.
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        let bad = |reason: String| Err(crate::error::SimError::InvalidConfig { reason });
        if self.num_sms == 0 {
            return bad("num_sms must be nonzero".into());
        }
        if self.warp_size == 0 {
            return bad("warp_size must be nonzero".into());
        }
        if self.max_threads_per_block == 0 {
            return bad("max_threads_per_block must be nonzero".into());
        }
        if self.shared_banks == 0 {
            return bad("shared_banks must be nonzero".into());
        }
        if self.segment_bytes == 0 || !self.segment_bytes.is_power_of_two() {
            return bad(format!(
                "segment_bytes must be a nonzero power of two (got {})",
                self.segment_bytes
            ));
        }
        Ok(())
    }

    /// The effective host worker thread count: an explicit nonzero
    /// `host_threads` wins, then a nonzero `UHACC_HOST_THREADS` environment
    /// variable, then the machine's available parallelism.
    pub fn resolved_host_threads(&self) -> usize {
        if self.host_threads != 0 {
            return self.host_threads as usize;
        }
        if let Ok(s) = std::env::var("UHACC_HOST_THREADS") {
            if let Ok(n) = s.trim().parse::<u32>() {
                if n != 0 {
                    return n as usize;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Cycle cost knobs for the throughput model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Issue cost charged to every warp-instruction.
    pub issue: u64,
    /// Extra cost for ALU ops (add/mul/...), charged once per warp-inst.
    pub alu: u64,
    /// Extra cost for double-precision ALU ops (Kepler GK110 runs FP64 at
    /// 1/3 rate; modelled as a flat surcharge).
    pub alu_f64_extra: u64,
    /// Extra cost of special functions (sqrt, division).
    pub sfu: u64,
    /// Cost per global-memory transaction (128-byte segment).
    pub global_segment: u64,
    /// Cost per shared-memory access way (multiplied by the bank-conflict
    /// degree; a conflict-free access costs exactly this).
    pub shared_way: u64,
    /// Cost of a block-wide barrier, charged per warp reaching it.
    pub barrier: u64,
    /// Cost per lane serialized by a global atomic.
    pub atomic_lane: u64,
    /// Fixed kernel launch overhead in cycles (≈5 µs at 706 MHz). This is
    /// what makes multi-kernel reduction strategies measurably slower.
    pub launch_overhead: u64,
    /// Host<->device transfer bandwidth in bytes/cycle (PCIe gen2 ≈ 6 GB/s
    /// at 706 MHz ≈ 8.5 B/cycle).
    pub pcie_bytes_per_cycle: f64,
    /// Fixed per-transfer latency in cycles.
    pub transfer_overhead: u64,
    /// Maximum overlap factor from warp-level latency hiding (Kepler's quad
    /// warp scheduler with dual issue).
    pub max_overlap: u32,
    /// Watchdog: abort after this many warp-instructions per block (0 = off).
    pub watchdog_warp_insts: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            issue: 4,
            alu: 2,
            alu_f64_extra: 6,
            sfu: 16,
            global_segment: 32,
            shared_way: 2,
            barrier: 16,
            atomic_lane: 24,
            launch_overhead: 3500,
            pcie_bytes_per_cycle: 8.5,
            transfer_overhead: 7000,
            max_overlap: 8,
            watchdog_warp_insts: 2_000_000_000,
        }
    }
}

impl CostModel {
    /// Overlap (latency hiding) factor for a block with `warps` resident
    /// warps: more warps hide more latency, saturating at `max_overlap`.
    pub fn overlap(&self, warps: u32) -> f64 {
        warps.clamp(1, self.max_overlap) as f64
    }

    /// Cycles to transfer `bytes` across PCIe.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.transfer_overhead + (bytes as f64 / self.pcie_bytes_per_cycle).ceil() as u64
    }

    /// Convert a cycle count to milliseconds at `clock_hz`.
    pub fn cycles_to_ms(&self, cycles: u64, clock_hz: f64) -> f64 {
        cycles as f64 / clock_hz * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_k20c_like() {
        let c = DeviceConfig::default();
        assert_eq!(c.num_sms, 13);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_threads_per_block, 1024);
        assert_eq!(c.shared_mem_per_block, 48 * 1024);
        assert_eq!(c.segment_bytes, 128);
    }

    /// Regression: a non-power-of-two coalescing segment is a config error,
    /// not a silent release-mode miscount.
    #[test]
    fn validate_rejects_bad_segment_bytes() {
        assert!(DeviceConfig::default().validate().is_ok());
        assert!(DeviceConfig::test_small().validate().is_ok());
        for bad in [0u64, 96, 100, 129] {
            let c = DeviceConfig {
                segment_bytes: bad,
                ..Default::default()
            };
            assert!(
                matches!(
                    c.validate(),
                    Err(crate::error::SimError::InvalidConfig { .. })
                ),
                "segment_bytes = {bad} accepted"
            );
        }
        let c = DeviceConfig {
            num_sms: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn exec_tier_parse_roundtrip() {
        for t in [ExecTier::Auto, ExecTier::Interpret, ExecTier::Compiled] {
            assert_eq!(t.to_string().parse::<ExecTier>(), Ok(t));
        }
        assert!("jit".parse::<ExecTier>().is_err());
        assert_eq!(ExecTier::default(), ExecTier::Auto);
    }

    #[test]
    fn host_threads_resolution() {
        // Explicit nonzero wins over everything.
        let c = DeviceConfig {
            host_threads: 3,
            ..Default::default()
        };
        assert_eq!(c.resolved_host_threads(), 3);
        // Auto resolves to something sane (>= 1).
        assert!(DeviceConfig::default().resolved_host_threads() >= 1);
    }

    #[test]
    fn overlap_clamps() {
        let m = CostModel::default();
        assert_eq!(m.overlap(0), 1.0);
        assert_eq!(m.overlap(1), 1.0);
        assert_eq!(m.overlap(4), 4.0);
        assert_eq!(m.overlap(100), m.max_overlap as f64);
    }

    #[test]
    fn transfer_cycles_monotone() {
        let m = CostModel::default();
        let a = m.transfer_cycles(1024);
        let b = m.transfer_cycles(1 << 20);
        assert!(b > a);
        assert!(a >= m.transfer_overhead);
    }

    #[test]
    fn cycles_to_ms() {
        let m = CostModel::default();
        let ms = m.cycles_to_ms(706_000, 706e6);
        assert!((ms - 1.0).abs() < 1e-9);
    }
}
