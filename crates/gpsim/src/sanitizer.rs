//! simsan — a compute-sanitizer-style hazard detector for the simulator.
//!
//! Real reduction miscompilations (a dropped `__syncthreads()`, a
//! warp-synchronous tail used across warp boundaries, a reused staging
//! slab) are *races*: whether they corrupt the answer depends on warp
//! scheduling. This simulator schedules warps run-to-block and commits
//! blocks in linear block-id order (even when blocks execute on parallel
//! host threads), so a racy kernel produces one deterministic result — it
//! may even be the correct one. The sanitizer closes that gap: it tracks
//! shadow state per memory byte and reports the hazard itself, not its
//! (schedule-dependent) consequence.
//!
//! Three checkers, mirroring `compute-sanitizer`'s tools:
//!
//! - **racecheck** — shared-memory conflicts between threads of *different
//!   warps* with no intervening barrier, and global-memory conflicts
//!   between *different blocks* within one launch. Same-warp accesses are
//!   exempt: warps execute in lockstep, so ordering within a warp is
//!   architectural (this is exactly what makes the paper's §3.3
//!   warp-synchronous tail legal). Atomic-vs-atomic global accesses are
//!   exempt. Same-block global conflicts are not checked: our codegen
//!   orders those through the shared-memory combine, and the hardware tool
//!   this models restricts racecheck to shared memory too.
//! - **initcheck** — reads of shared-memory bytes never written since the
//!   block started. The simulator zero-fills shared memory, which would
//!   otherwise mask this whole bug class.
//! - **synccheck** — barrier misuse (divergent `__syncthreads()` sites,
//!   barriers that can never fill), folded into the same report stream
//!   with per-thread context; the launch still fails with the
//!   corresponding [`crate::SimError`].
//!
//! The shadow scheme is two-level so blocks can execute concurrently:
//!
//! - [`BlockSanitizer`] owns everything one block can judge on its own.
//!   Shared memory keeps one cell per byte with the last writer, last
//!   reader and a *barrier epoch* (incremented each time the block's
//!   barrier releases). Two accesses conflict iff they touch the same
//!   byte, at least one writes, they come from different warps, and they
//!   share an epoch. Those reports — plus initcheck and synccheck — go
//!   into an ordered per-block log. Global-memory accesses cannot be
//!   judged locally (the conflicting access lives in another block), so
//!   the log records them raw.
//! - [`LaunchSanitizer`] merges block logs **in linear block-id order**,
//!   replaying the raw global accesses through a launch-wide sparse
//!   per-byte map with the last reader/writer block. Because the merge
//!   order equals the sequential execution order, the reports (text,
//!   order, count) are bit-identical at any host thread count.
//!
//! Reports are deduplicated by the PC pair so a race inside a loop is
//! reported once, and capped at [`SanitizerConfig::max_reports`] (the
//! count of distinct hazards keeps accumulating past the cap).

use std::collections::{HashMap, HashSet};
use std::fmt;

/// How much checking to do during a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizerLevel {
    /// No instrumentation (the default; zero overhead).
    #[default]
    Off,
    /// Race detection only (shared cross-warp + global cross-block).
    Race,
    /// Uninitialized-shared-read detection only.
    Init,
    /// Barrier-misuse reporting only.
    Sync,
    /// All checkers.
    Full,
}

impl SanitizerLevel {
    /// Is any checker active?
    pub fn enabled(&self) -> bool {
        !matches!(self, SanitizerLevel::Off)
    }

    /// Is racecheck active?
    pub fn race(&self) -> bool {
        matches!(self, SanitizerLevel::Race | SanitizerLevel::Full)
    }

    /// Is initcheck active?
    pub fn init(&self) -> bool {
        matches!(self, SanitizerLevel::Init | SanitizerLevel::Full)
    }

    /// Is synccheck active?
    pub fn sync(&self) -> bool {
        matches!(self, SanitizerLevel::Sync | SanitizerLevel::Full)
    }
}

/// Sanitizer configuration attached to a [`crate::Device`].
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizerConfig {
    /// Which checkers run.
    pub level: SanitizerLevel,
    /// Keep at most this many structured reports per device (further
    /// distinct hazards are still *counted*, just not materialized).
    pub max_reports: usize,
    /// Half-open `[start, end)` global address ranges exempt from
    /// racecheck. The runtime uses this for intentionally multi-writer
    /// buffers (e.g. the scalar-writeback mailbox, where every block
    /// stores the same region-uniform value).
    pub global_ignore: Vec<(u64, u64)>,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            level: SanitizerLevel::Off,
            max_reports: 64,
            global_ignore: Vec::new(),
        }
    }
}

impl SanitizerConfig {
    /// All checkers on, default caps.
    pub fn full() -> Self {
        SanitizerConfig {
            level: SanitizerLevel::Full,
            ..Default::default()
        }
    }
}

/// The hazard taxonomy (compute-sanitizer tool names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardClass {
    RaceCheck,
    InitCheck,
    SyncCheck,
}

impl HazardClass {
    /// Tool-style lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            HazardClass::RaceCheck => "racecheck",
            HazardClass::InitCheck => "initcheck",
            HazardClass::SyncCheck => "synccheck",
        }
    }
}

impl fmt::Display for HazardClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which address space a hazard is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardSpace {
    Shared,
    Global,
}

impl fmt::Display for HazardSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HazardSpace::Shared => "shared",
            HazardSpace::Global => "global",
        })
    }
}

/// What an access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    Atomic,
}

impl AccessKind {
    fn verb(&self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        }
    }

    /// Does this access modify memory?
    pub fn writes(&self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One side of a hazard: who touched the byte, where, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Block index of the accessing thread.
    pub block: (u32, u32),
    /// Linear thread id within the block.
    pub thread: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Instruction index in the kernel.
    pub pc: usize,
    /// Barrier epoch within the block at access time.
    pub epoch: u32,
    pub kind: AccessKind,
}

impl fmt::Display for AccessInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by thread {} (block ({},{}), warp {}, pc {}, epoch {})",
            self.kind.verb(),
            self.thread,
            self.block.0,
            self.block.1,
            self.warp,
            self.pc,
            self.epoch
        )
    }
}

/// A structured hazard report.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardReport {
    pub class: HazardClass,
    pub space: HazardSpace,
    /// Shared: byte offset into the block's slab. Global: device address.
    pub addr: u64,
    /// The earlier access (absent for initcheck — there is no writer — and
    /// for synccheck).
    pub first: Option<AccessInfo>,
    /// The access that exposed the hazard (absent for synccheck, whose
    /// context lives in `detail`).
    pub second: Option<AccessInfo>,
    /// Human-readable one-line description.
    pub detail: String,
}

impl fmt::Display for HazardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class, self.detail)
    }
}

/// Dedup key: a hazard class plus the PC pair it fired on.
type HazardKey = (HazardClass, usize, usize);

#[derive(Clone, Default)]
struct SharedCell {
    written: bool,
    last_write: Option<AccessInfo>,
    last_read: Option<AccessInfo>,
    /// Most recent read from a warp *other* than `last_read`'s. One slot
    /// would let a warp's own read-before-write shadow an earlier reader
    /// (tree steps load both operands before storing); two slots from
    /// distinct warps are enough to catch any multi-warp read set, since
    /// flagging one conflicting reader is all a report needs.
    other_read: Option<AccessInfo>,
}

#[derive(Clone, Copy, Default)]
struct GlobalCell {
    last_write: Option<AccessInfo>,
    last_read: Option<AccessInfo>,
    /// Most recent read from a block other than `last_read`'s (same
    /// two-slot rationale as [`SharedCell::other_read`]).
    other_read: Option<AccessInfo>,
}

/// One entry of a block's ordered hazard log.
enum SanEvent {
    /// A report fully determined inside one block (shared races,
    /// initcheck, synccheck), already rendered, with its dedup key.
    Local {
        key: HazardKey,
        report: HazardReport,
    },
    /// A raw global-memory access, replayed against the launch-wide
    /// shadow at merge time — the conflicting access may live in another
    /// block, so it cannot be judged locally.
    Global {
        acc: AccessInfo,
        addr: u64,
        size: usize,
    },
}

/// Per-block sanitizer state: the shared-memory shadow, barrier epoch and
/// an ordered log of what the block observed.
///
/// One instance observes one block; it is safe to drive many of them from
/// concurrent host threads. [`LaunchSanitizer::merge_block`] folds them
/// back in linear block-id order, which reproduces the sequential report
/// stream exactly.
pub struct BlockSanitizer {
    cfg: SanitizerConfig,
    block: (u32, u32),
    epoch: u32,
    shared: Vec<SharedCell>,
    /// Block-local dedup of `Local` reports. This bounds log growth (a
    /// race inside a loop logs once per block); the merge dedups again
    /// launch-wide, and keeping each block's *first* occurrence is exactly
    /// what the sequential order would have kept.
    seen: HashSet<HazardKey>,
    log: Vec<SanEvent>,
}

impl BlockSanitizer {
    /// Fresh shadow state for one block with `shared_bytes` of shared
    /// memory.
    pub fn new(cfg: SanitizerConfig, block: (u32, u32), shared_bytes: usize) -> Self {
        let shared_bytes = if cfg.level.init() || cfg.level.race() {
            shared_bytes
        } else {
            0
        };
        BlockSanitizer {
            cfg,
            block,
            epoch: 0,
            shared: vec![SharedCell::default(); shared_bytes],
            seen: HashSet::new(),
            log: Vec::new(),
        }
    }

    /// The block's barrier released: accesses before and after are ordered.
    pub fn barrier_release(&mut self) {
        self.epoch += 1;
    }

    fn push(&mut self, report: HazardReport) {
        let key = (
            report.class,
            report.first.map_or(usize::MAX, |a| a.pc),
            report.second.map_or(usize::MAX, |a| a.pc),
        );
        self.push_keyed(key, report);
    }

    fn push_keyed(&mut self, key: HazardKey, report: HazardReport) {
        if self.seen.insert(key) {
            self.log.push(SanEvent::Local { key, report });
        }
    }

    /// Observe one lane's shared-memory access of `size` bytes at byte
    /// offset `off`.
    pub fn shared_access(
        &mut self,
        thread: u32,
        warp: u32,
        pc: usize,
        off: u64,
        size: usize,
        write: bool,
    ) {
        let acc = AccessInfo {
            block: self.block,
            thread,
            warp,
            pc,
            epoch: self.epoch,
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        };
        for b in off..off + size as u64 {
            let Some(cell) = self.shared.get(b as usize) else {
                continue; // out of bounds: the interpreter reports that itself
            };
            if !write && self.cfg.level.init() && !cell.written {
                self.push(HazardReport {
                    class: HazardClass::InitCheck,
                    space: HazardSpace::Shared,
                    addr: b,
                    first: None,
                    second: Some(acc),
                    detail: format!(
                        "{} of uninitialized shared byte +{b} (never written since block start)",
                        acc
                    ),
                });
            }
            if self.cfg.level.race() {
                let conflicts = |p: &AccessInfo| p.warp != warp && p.epoch == self.epoch;
                let cell = &self.shared[b as usize];
                let prior = if write {
                    cell.last_write
                        .filter(conflicts)
                        .or(cell.last_read.filter(conflicts))
                        .or(cell.other_read.filter(conflicts))
                } else {
                    cell.last_write.filter(conflicts)
                };
                if let Some(p) = prior {
                    self.push(HazardReport {
                        class: HazardClass::RaceCheck,
                        space: HazardSpace::Shared,
                        addr: b,
                        first: Some(p),
                        second: Some(acc),
                        detail: format!(
                            "shared byte +{b}: {acc} conflicts with {p} — \
                             different warps, no barrier between"
                        ),
                    });
                }
            }
            let cell = &mut self.shared[b as usize];
            if write {
                cell.written = true;
                cell.last_write = Some(acc);
            } else {
                if let Some(lr) = cell.last_read {
                    if lr.warp != acc.warp {
                        cell.other_read = Some(lr);
                    }
                }
                cell.last_read = Some(acc);
            }
        }
    }

    /// Observe one lane's global-memory access of `size` bytes at device
    /// address `addr`. Logged raw; judged at merge time.
    pub fn global_access(
        &mut self,
        thread: u32,
        warp: u32,
        pc: usize,
        addr: u64,
        size: usize,
        kind: AccessKind,
    ) {
        if !self.cfg.level.race() {
            return;
        }
        if self
            .cfg
            .global_ignore
            .iter()
            .any(|&(s, e)| addr >= s && addr < e)
        {
            return;
        }
        let acc = AccessInfo {
            block: self.block,
            thread,
            warp,
            pc,
            epoch: self.epoch,
            kind,
        };
        self.log.push(SanEvent::Global { acc, addr, size });
    }

    /// Fold a divergent-barrier error into the report stream.
    pub fn sync_divergence(&mut self, pc_a: usize, pc_b: usize, detail: String) {
        if !self.cfg.level.sync() {
            return;
        }
        let block = self.block;
        self.push_keyed(
            (HazardClass::SyncCheck, pc_a, pc_b),
            HazardReport {
                class: HazardClass::SyncCheck,
                space: HazardSpace::Shared,
                addr: 0,
                first: None,
                second: None,
                detail: format!(
                    "block ({},{}): __syncthreads() under divergent control flow \
                     (barrier sites pc {pc_a} vs pc {pc_b}); {detail}",
                    block.0, block.1
                ),
            },
        );
    }

    /// Fold a barrier-deadlock error into the report stream.
    pub fn sync_deadlock(&mut self, arrived: usize, expected: usize, detail: String) {
        if !self.cfg.level.sync() {
            return;
        }
        let block = self.block;
        self.push_keyed(
            (HazardClass::SyncCheck, usize::MAX, expected),
            HazardReport {
                class: HazardClass::SyncCheck,
                space: HazardSpace::Shared,
                addr: 0,
                first: None,
                second: None,
                detail: format!(
                    "block ({},{}): barrier can never fill ({arrived}/{expected} threads \
                     arrived); {detail}",
                    block.0, block.1
                ),
            },
        );
    }
}

/// Per-launch sanitizer state: the global shadow + collected reports.
///
/// One instance observes one launch; [`crate::Device::launch`] creates it
/// when the device's [`SanitizerConfig`] enables a checker and harvests
/// its reports afterwards (on the error path too, so synccheck reports
/// survive the launch failing). Blocks record into [`BlockSanitizer`]s —
/// possibly concurrently — and are folded back with
/// [`LaunchSanitizer::merge_block`] in linear block-id order.
pub struct LaunchSanitizer {
    cfg: SanitizerConfig,
    reports: Vec<HazardReport>,
    /// Distinct hazards observed (reports + those past `max_reports`).
    count: u64,
    seen: HashSet<HazardKey>,
    global: HashMap<u64, GlobalCell>,
}

impl LaunchSanitizer {
    /// Fresh state for one launch.
    pub fn new(cfg: SanitizerConfig) -> Self {
        LaunchSanitizer {
            cfg,
            reports: Vec::new(),
            count: 0,
            seen: HashSet::new(),
            global: HashMap::new(),
        }
    }

    /// The launch's sanitizer configuration (cloned into each block's
    /// [`BlockSanitizer`]).
    pub fn config(&self) -> &SanitizerConfig {
        &self.cfg
    }

    /// Fold one finished block's log into the launch state. Call in
    /// linear block-id order: the merge order defines the report order,
    /// and block-id order reproduces the sequential executor exactly.
    pub fn merge_block(&mut self, block: BlockSanitizer) {
        for ev in block.log {
            match ev {
                SanEvent::Local { key, report } => self.push_keyed(key, report),
                SanEvent::Global { acc, addr, size } => self.replay_global(acc, addr, size),
            }
        }
    }

    fn push_keyed(&mut self, key: HazardKey, report: HazardReport) {
        if !self.seen.insert(key) {
            return;
        }
        self.count += 1;
        if self.reports.len() < self.cfg.max_reports {
            self.reports.push(report);
        }
    }

    /// Replay one logged global access against the launch-wide per-byte
    /// shadow (level/ignore-range filtering already happened at log time).
    fn replay_global(&mut self, acc: AccessInfo, addr: u64, size: usize) {
        let kind = acc.kind;
        for b in addr..addr + size as u64 {
            let cell = self.global.entry(b).or_default();
            let prior = match kind {
                AccessKind::Read => cell.last_write.filter(|p| p.block != acc.block),
                AccessKind::Write | AccessKind::Atomic => cell
                    .last_write
                    .filter(|p| {
                        p.block != acc.block
                            && !(kind == AccessKind::Atomic && p.kind == AccessKind::Atomic)
                    })
                    .or(cell.last_read.filter(|p| p.block != acc.block))
                    .or(cell.other_read.filter(|p| p.block != acc.block)),
            };
            if let Some(p) = prior {
                self.push_keyed(
                    (HazardClass::RaceCheck, p.pc, acc.pc),
                    HazardReport {
                        class: HazardClass::RaceCheck,
                        space: HazardSpace::Global,
                        addr: b,
                        first: Some(p),
                        second: Some(acc),
                        detail: format!(
                            "global address {b:#x}: {acc} conflicts with {p} — \
                             different blocks, no synchronization within a launch"
                        ),
                    },
                );
            }
            let cell = self.global.entry(b).or_default();
            if kind.writes() {
                cell.last_write = Some(acc);
            } else {
                if let Some(lr) = cell.last_read {
                    if lr.block != acc.block {
                        cell.other_read = Some(lr);
                    }
                }
                cell.last_read = Some(acc);
            }
        }
    }

    /// Reports collected so far (capped at `max_reports`).
    pub fn reports(&self) -> &[HazardReport] {
        &self.reports
    }

    /// Number of *distinct* hazards observed, including those past the
    /// report cap.
    pub fn hazard_count(&self) -> u64 {
        self.count
    }

    /// Drain the collected reports.
    pub fn take_reports(&mut self) -> Vec<HazardReport> {
        std::mem::take(&mut self.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_block(block: (u32, u32)) -> BlockSanitizer {
        BlockSanitizer::new(SanitizerConfig::full(), block, 64)
    }

    /// Run `f` against a single full-checking block and merge it.
    fn one_block(f: impl FnOnce(&mut BlockSanitizer)) -> LaunchSanitizer {
        let mut launch = LaunchSanitizer::new(SanitizerConfig::full());
        let mut b = full_block((0, 0));
        f(&mut b);
        launch.merge_block(b);
        launch
    }

    #[test]
    fn cross_warp_shared_write_read_races() {
        let s = one_block(|b| {
            b.shared_access(0, 0, 10, 0, 4, true);
            b.shared_access(32, 1, 20, 0, 4, false);
        });
        assert_eq!(s.reports().len(), 1);
        let r = &s.reports()[0];
        assert_eq!(r.class, HazardClass::RaceCheck);
        assert_eq!(r.space, HazardSpace::Shared);
        assert_eq!(r.first.unwrap().pc, 10);
        assert_eq!(r.second.unwrap().pc, 20);
    }

    #[test]
    fn same_warp_and_barrier_separated_accesses_are_clean() {
        let s = one_block(|b| {
            // Same warp: lockstep, exempt.
            b.shared_access(0, 0, 10, 0, 4, true);
            b.shared_access(1, 0, 20, 0, 4, false);
            // Different warp but a barrier in between: ordered.
            b.shared_access(0, 0, 30, 8, 4, true);
            b.barrier_release();
            b.shared_access(32, 1, 40, 8, 4, false);
        });
        assert!(s.reports().is_empty(), "{:?}", s.reports());
    }

    #[test]
    fn read_read_never_races() {
        let s = one_block(|b| {
            b.shared_access(0, 0, 10, 0, 4, true);
            b.barrier_release();
            b.shared_access(0, 0, 20, 0, 4, false);
            b.shared_access(32, 1, 21, 0, 4, false);
        });
        assert!(s.reports().is_empty());
    }

    #[test]
    fn write_after_read_races_across_warps() {
        let s = one_block(|b| {
            b.shared_access(0, 0, 5, 0, 4, true);
            b.barrier_release();
            b.shared_access(32, 1, 10, 0, 4, false);
            b.shared_access(0, 0, 20, 0, 4, true);
        });
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.reports()[0].first.unwrap().kind, AccessKind::Read);
    }

    #[test]
    fn uninitialized_shared_read_reported_once_per_pc() {
        let s = one_block(|b| {
            b.shared_access(0, 0, 7, 16, 4, false);
            b.shared_access(1, 0, 7, 20, 4, false); // same pc: deduplicated
                                                    // A written byte reads clean.
            b.shared_access(0, 0, 8, 0, 4, true);
            b.shared_access(0, 0, 9, 0, 4, false);
        });
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.reports()[0].class, HazardClass::InitCheck);
        assert_eq!(s.hazard_count(), 1);
    }

    #[test]
    fn global_conflicts_are_cross_block_only() {
        let mut s = LaunchSanitizer::new(SanitizerConfig::full());
        let mut b0 = full_block((0, 0));
        b0.global_access(0, 0, 10, 0x100, 4, AccessKind::Write);
        b0.global_access(32, 1, 20, 0x100, 4, AccessKind::Write); // same block
        s.merge_block(b0);
        assert!(s.reports().is_empty());
        let mut b1 = full_block((1, 0));
        b1.global_access(0, 0, 30, 0x100, 4, AccessKind::Write);
        s.merge_block(b1);
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.reports()[0].space, HazardSpace::Global);
    }

    #[test]
    fn atomics_only_conflict_with_non_atomics() {
        let mut s = LaunchSanitizer::new(SanitizerConfig::full());
        for bx in 0..2 {
            let mut b = full_block((bx, 0));
            b.global_access(0, 0, 10, 0x40, 8, AccessKind::Atomic);
            s.merge_block(b);
        }
        assert!(s.reports().is_empty());
        let mut b2 = full_block((2, 0));
        b2.global_access(0, 0, 11, 0x40, 8, AccessKind::Write);
        s.merge_block(b2);
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn ignore_ranges_suppress_global_reports() {
        let cfg = SanitizerConfig {
            level: SanitizerLevel::Full,
            global_ignore: vec![(0x100, 0x108)],
            ..Default::default()
        };
        let mut s = LaunchSanitizer::new(cfg.clone());
        let mut b0 = BlockSanitizer::new(cfg.clone(), (0, 0), 0);
        b0.global_access(0, 0, 10, 0x100, 8, AccessKind::Write);
        s.merge_block(b0);
        let mut b1 = BlockSanitizer::new(cfg.clone(), (1, 0), 0);
        b1.global_access(0, 0, 10, 0x100, 8, AccessKind::Write);
        // Outside the range still reports.
        b1.global_access(0, 0, 11, 0x108, 8, AccessKind::Write);
        s.merge_block(b1);
        assert!(s.reports().is_empty());
        let mut b2 = BlockSanitizer::new(cfg, (2, 0), 0);
        b2.global_access(0, 0, 12, 0x108, 8, AccessKind::Write);
        s.merge_block(b2);
        assert_eq!(s.reports().len(), 1);
    }

    #[test]
    fn report_cap_keeps_counting() {
        let cfg = SanitizerConfig {
            level: SanitizerLevel::Full,
            max_reports: 2,
            ..Default::default()
        };
        let mut s = LaunchSanitizer::new(cfg.clone());
        let mut b = BlockSanitizer::new(cfg, (0, 0), 1024);
        for pc in 0..5 {
            b.shared_access(0, 0, pc, pc as u64, 1, false); // 5 distinct initchecks
        }
        s.merge_block(b);
        assert_eq!(s.reports().len(), 2);
        assert_eq!(s.hazard_count(), 5);
    }

    #[test]
    fn sync_reports_and_level_gating() {
        let s = one_block(|b| {
            b.sync_divergence(5, 9, "4 threads at pc 5, 28 at pc 9".into());
            b.sync_deadlock(3, 64, "waiting at pc 7".into());
        });
        assert_eq!(s.reports().len(), 2);
        assert!(s.reports()[0].to_string().contains("synccheck"));
        assert!(s.reports()[0].detail.contains("pc 5 vs pc 9"));

        // Race-only level ignores sync and init events.
        let cfg = SanitizerConfig {
            level: SanitizerLevel::Race,
            ..Default::default()
        };
        let mut launch = LaunchSanitizer::new(cfg.clone());
        let mut b = BlockSanitizer::new(cfg, (0, 0), 64);
        b.sync_deadlock(1, 2, String::new());
        b.shared_access(0, 0, 1, 0, 4, false); // uninit read
        launch.merge_block(b);
        assert!(launch.reports().is_empty());
    }

    #[test]
    fn own_read_does_not_shadow_other_warps_reader() {
        // Tree-step pattern: warp 0 reads the byte, then warp 1 reads it
        // (loading its own fold operand) and writes it. The write must
        // still conflict with warp 0's read even though warp 1's read was
        // recorded in between.
        let s = one_block(|b| {
            b.shared_access(0, 0, 1, 0, 4, true); // initialize, then barrier
            b.barrier_release();
            b.shared_access(0, 0, 10, 0, 4, false);
            b.shared_access(32, 1, 11, 0, 4, false);
            b.shared_access(32, 1, 12, 0, 4, true);
        });
        assert_eq!(s.reports().len(), 1, "{:?}", s.reports());
        assert_eq!(s.reports()[0].class, HazardClass::RaceCheck);
        assert_eq!(s.reports()[0].first.unwrap().warp, 0);
    }

    #[test]
    fn epoch_and_shared_shadow_are_per_block() {
        let mut s = LaunchSanitizer::new(SanitizerConfig::full());
        let mut b0 = full_block((0, 0));
        b0.shared_access(0, 0, 10, 0, 4, true);
        b0.barrier_release();
        s.merge_block(b0);
        // Fresh block: no carry-over of shared shadow or epoch.
        let mut b1 = full_block((1, 0));
        b1.shared_access(32, 1, 20, 0, 4, true);
        s.merge_block(b1);
        assert!(s
            .reports()
            .iter()
            .all(|r| r.class != HazardClass::RaceCheck));
    }

    /// The launch-wide dedup keeps the *first merged* block's instance of
    /// a repeated hazard — the same one sequential execution would keep —
    /// and block-local dedup does not hide the cross-block repeat from
    /// the count.
    #[test]
    fn merge_order_defines_which_duplicate_survives() {
        let mut s = LaunchSanitizer::new(SanitizerConfig::full());
        let mut blocks: Vec<BlockSanitizer> = (0..3)
            .map(|bx| {
                let mut b = full_block((bx, 0));
                b.shared_access(0, 0, 10, 0, 4, true);
                b.shared_access(32, 1, 20, 0, 4, false);
                b
            })
            .collect();
        // Merge in block-id order regardless of completion order.
        for b in blocks.drain(..) {
            s.merge_block(b);
        }
        assert_eq!(s.reports().len(), 1);
        assert_eq!(s.hazard_count(), 1);
        assert_eq!(s.reports()[0].second.unwrap().block, (0, 0));
    }
}
