//! # redcert, source side — reference semantics + per-region certification
//!
//! The counterpart of [`gpsim::cert`]: a **sequential reference
//! interpreter** over the analyzed HIR that evaluates the region exactly
//! as C would — loops in source order, one iteration at a time — while
//! building symbolic terms for array inputs in the *same shared
//! [`TermPool`]* the kernel-side symbolic executor uses. Certifying a
//! [`CompiledRegion`] then reduces to comparing `TermId`s at the
//! observable boundary:
//!
//! 1. kverify precondition: the main kernel and every finalize pass must
//!    verify cleanly at the launch shape (a barrier bug makes symbolic
//!    execution itself meaningless);
//! 2. symbolically execute the main kernel and the finalize kernels over
//!    a [`SymMemory`] laid out exactly like the runtime's (array regions
//!    in data-clause order, then temp buffers, mailbox race-exempt);
//! 3. replay the launch plan's epilogue in term space ([`ResultRead`]
//!    folds via [`apply_host_term`], mailbox readbacks);
//! 4. run the reference interpreter over the source region;
//! 5. compare every observable — host scalars and the cells of
//!    `copy`/`copyout`/`present` arrays — for term equality.
//!
//! The expression translation mirrors `codegen/expr.rs` **node for
//! node** (same literal widths, same comparison types, same 0/1
//! normalization of logical values), so a correct kernel produces the
//! *same canonical term* as the source, not merely an equivalent one.
//! Matching terms that contain a float-typed fold are reported as
//! [`CertVerdict::CertifiedModuloReassoc`]; anything the validator
//! cannot model exactly degrades to `Unknown`, never to a false
//! `Certified`.

use std::collections::HashMap;

use accparse::ast::{CType, DataDir, RedOp, UnOpKind};
use accparse::hir::{AnalyzedProgram, HExpr, HExprKind, HLoop, HStmt, MathFunc, Sym};
use gpsim::cert::{
    run_symbolic, sval_eq, CertConfig, CertObservable, CertReport, CertVerdict, SVal, SymMemory,
    TermPool,
};
use gpsim::{verify_kernel, BinOp, CmpOp, LaunchConfig, Ty, UnOp, Value, VerifyConfig};

use crate::codegen::expr::{classify, OpClass};
use crate::plan::{BufferPurpose, CompiledRegion, LaunchDims, ParamSpec};
use crate::types::{combine_binop, is_logical, machine_ty};

/// Normalize `v` to a 0/1 value at `ty` — the exact instruction sequence
/// codegen emits for logical reduction operands (`cmp.ne ty, v, 0` then
/// `select 1, 0`). The pool's select elision makes this idempotent.
fn norm01(pool: &mut TermPool, v: SVal, ty: Ty) -> Result<SVal, String> {
    let p = pool.v_cmp(CmpOp::Ne, ty, v, SVal::C(Value::zero(ty)))?;
    pool.v_sel(p, SVal::C(Value::I32(1)), SVal::C(Value::I32(0)))
}

/// Term-space mirror of [`crate::types::apply_host`]: fold `b` into `a`
/// with reduction operator `op` at machine type `ty`. Logical operators
/// normalize both operands to 0/1 first (the host does the same via
/// `as_bool`), so the result canonicalizes with the kernel's in-kernel
/// normalized combines.
pub fn apply_host_term(
    pool: &mut TermPool,
    op: RedOp,
    ty: Ty,
    a: SVal,
    b: SVal,
) -> Result<SVal, String> {
    if is_logical(op) {
        let na = norm01(pool, a, ty)?;
        let nb = norm01(pool, b, ty)?;
        return pool.v_bin(combine_binop(op), ty, na, nb);
    }
    pool.v_bin(combine_binop(op), ty, a, b)
}

fn concrete_i64(v: SVal, what: &str) -> Result<i64, String> {
    match v {
        SVal::C(x) => Ok(x.as_i64()),
        SVal::T(_) => Err(format!("symbolic {what} in the source region")),
    }
}

/// The sequential reference interpreter's state for one region.
struct RefState<'a> {
    prog: &'a AnalyzedProgram,
    region: usize,
    /// Per-array dimension extents (concrete, from the runtime bindings).
    extents: &'a [Vec<u64>],
    /// Array index → kernel-side [`SymMemory`] region index; loads from
    /// input-backed arrays materialize the *same* `Input` leaves the
    /// kernel sees.
    region_of: &'a HashMap<usize, u32>,
    input_backed: &'a [bool],
    hosts: Vec<SVal>,
    locals: Vec<SVal>,
    /// `(array, byte offset)` → value the source stored.
    written: HashMap<(usize, u64), SVal>,
    steps: u64,
    max_steps: u64,
}

impl<'a> RefState<'a> {
    fn step(&mut self) -> Result<(), String> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err("step budget exceeded (reference interpretation)".into());
        }
        Ok(())
    }

    fn local_ty(&self, l: usize) -> CType {
        self.prog.regions[self.region].locals[l].ty
    }

    fn read_sym(&self, s: Sym) -> (SVal, CType) {
        match s {
            Sym::Host(h) => (self.hosts[h], self.prog.hosts[h].ty),
            Sym::Local(l) => (self.locals[l], self.local_ty(l)),
        }
    }

    fn write_sym(&mut self, s: Sym, v: SVal) {
        match s {
            Sym::Host(h) => self.hosts[h] = v,
            Sym::Local(l) => self.locals[l] = v,
        }
    }

    /// Row-major linear byte offset of `array[indices...]`, mirroring
    /// codegen's `element_offset` (`((i0*d1 + i1)*d2 + i2)...`). Indices
    /// must be concrete; a symbolic index means the kernel side computed
    /// a symbolic address anyway (→ Unknown there too).
    fn element_offset(
        &mut self,
        pool: &mut TermPool,
        array: usize,
        indices: &[HExpr],
    ) -> Result<u64, String> {
        let name = &self.prog.arrays[array].name;
        let exts = &self.extents[array];
        if exts.len() != indices.len() {
            return Err(format!("array `{name}` indexed with wrong arity"));
        }
        let mut linear: i64 = 0;
        for (d, ix) in indices.iter().enumerate() {
            let v = self.expr(pool, ix)?;
            let iv = concrete_i64(v, "array index")?;
            linear = if d == 0 {
                iv
            } else {
                linear.wrapping_mul(exts[d] as i64).wrapping_add(iv)
            };
        }
        let total: u64 = exts.iter().product();
        if linear < 0 || linear as u64 >= total.max(1) {
            return Err(format!("array index out of bounds in `{name}`"));
        }
        let esize = machine_ty(self.prog.arrays[array].ty).size() as u64;
        Ok(linear as u64 * esize)
    }

    fn load(&mut self, pool: &mut TermPool, array: usize, off: u64) -> Result<SVal, String> {
        if let Some(&v) = self.written.get(&(array, off)) {
            return Ok(v);
        }
        let ety = machine_ty(self.prog.arrays[array].ty);
        if self.input_backed[array] {
            if let Some(&ridx) = self.region_of.get(&array) {
                return Ok(SVal::T(pool.input(ridx, off, ety)));
            }
        }
        Err(format!(
            "source reads uninitialized array `{}`",
            self.prog.arrays[array].name
        ))
    }

    /// Evaluate `e`, mirroring `codegen/expr.rs::expr` node for node.
    fn expr(&mut self, pool: &mut TermPool, e: &HExpr) -> Result<SVal, String> {
        self.step()?;
        let ty = machine_ty(e.ty);
        Ok(match &e.kind {
            HExprKind::Int(v) => SVal::C(match ty {
                Ty::I64 => Value::I64(*v),
                _ => Value::I32(*v as i32),
            }),
            HExprKind::Float(v) => SVal::C(match ty {
                Ty::F32 => Value::F32(*v as f32),
                _ => Value::F64(*v),
            }),
            HExprKind::Sym(s) => self.read_sym(*s).0,
            HExprKind::Load { array, indices } => {
                let off = self.element_offset(pool, *array, indices)?;
                self.load(pool, *array, off)?
            }
            HExprKind::Un { op, operand } => {
                let v = self.expr(pool, operand)?;
                match op {
                    UnOpKind::Neg => pool.v_un(UnOp::Neg, ty, v)?,
                    UnOpKind::BitNot => pool.v_un(UnOp::Not, ty, v)?,
                    UnOpKind::Not => {
                        let oty = machine_ty(operand.ty);
                        let p = pool.v_cmp(CmpOp::Eq, oty, v, SVal::C(Value::zero(oty)))?;
                        pool.v_sel(p, SVal::C(Value::I32(1)), SVal::C(Value::I32(0)))?
                    }
                }
            }
            HExprKind::Bin {
                op,
                cmp_ty,
                lhs,
                rhs,
            } => match classify(*op) {
                OpClass::Arith(bop) => {
                    let a = self.expr(pool, lhs)?;
                    let b = self.expr(pool, rhs)?;
                    pool.v_bin(bop, ty, a, b)?
                }
                OpClass::Cmp(cop) => {
                    let a = self.expr(pool, lhs)?;
                    let b = self.expr(pool, rhs)?;
                    let p = pool.v_cmp(cop, machine_ty(*cmp_ty), a, b)?;
                    pool.v_sel(p, SVal::C(Value::I32(1)), SVal::C(Value::I32(0)))?
                }
                OpClass::Logic(and) => {
                    // Non-short-circuit, like the kernel (side-effect free).
                    let pa = self.expr_pred(pool, lhs)?;
                    let pb = self.expr_pred(pool, rhs)?;
                    let bop = if and { BinOp::And } else { BinOp::Or };
                    let p = pool.v_bin(bop, Ty::Pred, pa, pb)?;
                    pool.v_sel(p, SVal::C(Value::I32(1)), SVal::C(Value::I32(0)))?
                }
            },
            HExprKind::Cond { cond, then, els } => {
                let p = self.expr_pred(pool, cond)?;
                let a = self.expr(pool, then)?;
                let a = self.convert_if_needed(pool, a, then.ty, e.ty);
                let b = self.expr(pool, els)?;
                let b = self.convert_if_needed(pool, b, els.ty, e.ty);
                pool.v_sel(p, a, b)?
            }
            HExprKind::Call { func, args } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.expr(pool, a)?);
                }
                match func {
                    MathFunc::FMax | MathFunc::IMax => pool.v_bin(BinOp::Max, ty, vs[0], vs[1])?,
                    MathFunc::FMin | MathFunc::IMin => pool.v_bin(BinOp::Min, ty, vs[0], vs[1])?,
                    MathFunc::FAbs | MathFunc::IAbs => pool.v_un(UnOp::Abs, ty, vs[0])?,
                    MathFunc::Sqrt => pool.v_un(UnOp::Sqrt, ty, vs[0])?,
                }
            }
            HExprKind::Cast { operand } => {
                let v = self.expr(pool, operand)?;
                pool.coerce(v, ty)
            }
        })
    }

    /// Evaluate `e` as a predicate, mirroring `expr_pred` (comparison
    /// fast path, `Not` at predicate type, value-nonzero fallback).
    fn expr_pred(&mut self, pool: &mut TermPool, e: &HExpr) -> Result<SVal, String> {
        match &e.kind {
            HExprKind::Bin {
                op,
                cmp_ty,
                lhs,
                rhs,
            } => match classify(*op) {
                OpClass::Cmp(cop) => {
                    let a = self.expr(pool, lhs)?;
                    let b = self.expr(pool, rhs)?;
                    pool.v_cmp(cop, machine_ty(*cmp_ty), a, b)
                }
                OpClass::Logic(and) => {
                    let pa = self.expr_pred(pool, lhs)?;
                    let pb = self.expr_pred(pool, rhs)?;
                    pool.v_bin(if and { BinOp::And } else { BinOp::Or }, Ty::Pred, pa, pb)
                }
                OpClass::Arith(_) => self.value_nonzero(pool, e),
            },
            HExprKind::Un {
                op: UnOpKind::Not,
                operand,
            } => {
                let p = self.expr_pred(pool, operand)?;
                pool.v_un(UnOp::Not, Ty::Pred, p)
            }
            _ => self.value_nonzero(pool, e),
        }
    }

    fn value_nonzero(&mut self, pool: &mut TermPool, e: &HExpr) -> Result<SVal, String> {
        let v = self.expr(pool, e)?;
        let ty = machine_ty(e.ty);
        pool.v_cmp(CmpOp::Ne, ty, v, SVal::C(Value::zero(ty)))
    }

    fn convert_if_needed(&mut self, pool: &mut TermPool, v: SVal, from: CType, to: CType) -> SVal {
        if from == to {
            v
        } else {
            pool.coerce(v, machine_ty(to))
        }
    }

    fn exec_stmts(&mut self, pool: &mut TermPool, stmts: &[HStmt]) -> Result<(), String> {
        for s in stmts {
            self.step()?;
            match s {
                HStmt::AssignLocal { local, value } => {
                    let v = self.expr(pool, value)?;
                    let ty = machine_ty(self.local_ty(*local));
                    self.locals[*local] = pool.coerce(v, ty);
                }
                HStmt::AssignHost { host, value } => {
                    let v = self.expr(pool, value)?;
                    let ty = machine_ty(self.prog.hosts[*host].ty);
                    self.hosts[*host] = pool.coerce(v, ty);
                }
                HStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    let off = self.element_offset(pool, *array, indices)?;
                    let v = self.expr(pool, value)?;
                    let ety = machine_ty(self.prog.arrays[*array].ty);
                    let cv = pool.coerce(v, ety);
                    self.written.insert((*array, off), cv);
                }
                HStmt::ReduceUpdate { sym, op, value, .. } => {
                    let v = self.expr(pool, value)?;
                    let (cur, cty) = self.read_sym(*sym);
                    let ty = machine_ty(cty);
                    // The kernel normalizes only the update operand (its
                    // accumulator is 0/1 by construction); the reference
                    // normalizes the accumulator too, because its chain
                    // starts at the *user's* initial value.
                    let new = if is_logical(*op) {
                        let na = norm01(pool, cur, ty)?;
                        let nv = norm01(pool, v, ty)?;
                        pool.v_bin(combine_binop(*op), ty, na, nv)?
                    } else {
                        pool.v_bin(combine_binop(*op), ty, cur, v)?
                    };
                    self.write_sym(*sym, new);
                }
                HStmt::If { cond, then, els } => match self.expr_pred(pool, cond)? {
                    SVal::C(c) => {
                        if c.as_bool() {
                            self.exec_stmts(pool, then)?;
                        } else {
                            self.exec_stmts(pool, els)?;
                        }
                    }
                    SVal::T(_) => {
                        return Err("data-dependent branch in the source region".into());
                    }
                },
                HStmt::Loop(l) => self.exec_loop(pool, l)?,
            }
        }
        Ok(())
    }

    fn exec_loop(&mut self, pool: &mut TermPool, l: &HLoop) -> Result<(), String> {
        let vty = machine_ty(self.local_ty(l.var));
        let lo = self.expr(pool, &l.lower)?;
        let mut x = concrete_i64(lo, "loop lower bound")?;
        loop {
            self.step()?;
            let cur = Value::I64(x).convert(vty);
            self.locals[l.var] = SVal::C(cur);
            let bv = {
                let b = self.expr(pool, &l.bound)?;
                match b {
                    SVal::C(v) => v.convert(vty).as_i64(),
                    SVal::T(_) => return Err("symbolic loop bound in the source region".into()),
                }
            };
            let cv = cur.as_i64();
            let go = match l.cmp {
                accparse::ast::BinOpKind::Lt => cv < bv,
                accparse::ast::BinOpKind::Le => cv <= bv,
                accparse::ast::BinOpKind::Gt => cv > bv,
                accparse::ast::BinOpKind::Ge => cv >= bv,
                _ => return Err("unsupported loop comparison".into()),
            };
            if !go {
                break;
            }
            self.exec_stmts(pool, &l.body)?;
            let sv = {
                let s = self.expr(pool, &l.step)?;
                concrete_i64(s, "loop step")?
            };
            if sv == 0 {
                return Err("zero loop step".into());
            }
            x = x.wrapping_add(sv);
        }
        Ok(())
    }
}

fn compare(pool: &TermPool, names: &[String], kernel: SVal, source: SVal) -> CertVerdict {
    // A schedule-dependent value (cross-warp race) reaching an
    // observable can never certify: the symbolic executor ran one warp
    // schedule, so agreement with the reference proves nothing.
    if let Some(msg) = pool.sval_poison(kernel) {
        return CertVerdict::Unknown {
            reason: format!("observable depends on a {msg}"),
        };
    }
    if sval_eq(kernel, source) {
        if pool.sval_float_fold(kernel) || pool.sval_float_fold(source) {
            CertVerdict::CertifiedModuloReassoc
        } else {
            CertVerdict::Certified
        }
    } else {
        CertVerdict::Refuted {
            witness: format!(
                "kernel computes {}, source computes {}",
                pool.render_sval(kernel, names),
                pool.render_sval(source, names)
            ),
        }
    }
}

fn kverify_gate(kernel: &gpsim::Kernel, cfg: LaunchConfig) -> Result<(), String> {
    let vr = verify_kernel(kernel, cfg, &VerifyConfig::default());
    if vr.errors() > 0 {
        let f = vr
            .findings
            .iter()
            .find(|f| !f.warning)
            .expect("errors() > 0 implies an error finding");
        return Err(format!("kverify error in `{}`: {}", kernel.name, f.detail));
    }
    Ok(())
}

/// Certify one compiled region against its source semantics at concrete
/// launch dims, host scalar values and array extents (symbolic array
/// *contents*). Never launches anything on a device; the whole check is
/// static. A failure to model the kernel or the source yields
/// `Unknown{reason}` — only a proven observable mismatch is `Refuted`.
pub fn certify_region(
    prog: &AnalyzedProgram,
    region: usize,
    compiled: &CompiledRegion,
    dims: LaunchDims,
    scalars: &[Value],
    extents: &[Vec<u64>],
    ccfg: &CertConfig,
) -> CertReport {
    let summary = accparse::summarize_region(prog, region);
    let mut report = CertReport {
        region,
        kernel: compiled.main.name.clone(),
        dims: (dims.gangs, dims.workers, dims.vector),
        reductions: summary.reductions.iter().map(|r| r.render()).collect(),
        verdict: CertVerdict::Certified,
        observables: Vec::new(),
    };
    match certify_inner(prog, region, compiled, dims, scalars, extents, ccfg) {
        Ok(observables) => {
            let mut v = CertVerdict::Certified;
            for o in &observables {
                v = v.merge(o.verdict.clone());
            }
            report.verdict = v;
            report.observables = observables;
        }
        Err(reason) => report.verdict = CertVerdict::Unknown { reason },
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn certify_inner(
    prog: &AnalyzedProgram,
    region: usize,
    compiled: &CompiledRegion,
    dims: LaunchDims,
    scalars: &[Value],
    extents: &[Vec<u64>],
    ccfg: &CertConfig,
) -> Result<Vec<CertObservable>, String> {
    let r = &prog.regions[region];
    if scalars.len() != prog.hosts.len() {
        return Err("host scalar vector does not match the program".into());
    }
    let cfg = LaunchConfig::gwv(dims.gangs, dims.workers, dims.vector);

    // 1. kverify precondition.
    kverify_gate(&compiled.main, cfg)?;
    for fp in &compiled.finalize {
        kverify_gate(&fp.kernel, LaunchConfig::d1(1, fp.threads))?;
    }

    // 2. Lay out symbolic memory exactly like the runtime: array regions
    // in data-clause order, then temp buffers.
    let mut pool = TermPool::new();
    let mut mem = SymMemory::new();
    let mut region_of: HashMap<usize, u32> = HashMap::new();
    let mut input_backed = vec![false; prog.arrays.len()];
    for db in &r.data {
        let a = &prog.arrays[db.array];
        let esize = machine_ty(a.ty).size() as u64;
        let elems: u64 = extents[db.array].iter().product();
        let size = elems
            .checked_mul(esize)
            .ok_or_else(|| format!("array `{}` too large to certify", a.name))?;
        let backed = matches!(db.dir, DataDir::CopyIn | DataDir::Copy | DataDir::Present);
        let ridx = mem.alloc(
            &a.name,
            size.max(esize),
            backed.then(|| machine_ty(a.ty)),
            false,
        )?;
        region_of.insert(db.array, ridx);
        input_backed[db.array] = backed;
    }
    let mut buf_region: Vec<u32> = Vec::with_capacity(compiled.buffers.len());
    for (i, spec) in compiled.buffers.iter().enumerate() {
        let name = match spec.purpose {
            BufferPurpose::GangPartials => format!("partials#{i}"),
            BufferPurpose::GlobalCombine => format!("stage#{i}"),
            BufferPurpose::Mailbox => format!("mailbox#{i}"),
            BufferPurpose::GangAtomic => format!("acc#{i}"),
        };
        let size = spec.elems.max(1) * machine_ty(spec.ty).size() as u64;
        let ridx = mem.alloc(&name, size, None, spec.purpose == BufferPurpose::Mailbox)?;
        buf_region.push(ridx);
    }

    // 3. Parameters + accumulator-buffer inits, mirroring the runtime.
    let mut params: Vec<SVal> = Vec::with_capacity(compiled.params.len());
    for p in &compiled.params {
        params.push(match p {
            ParamSpec::ArrayBase(a) => {
                let ridx = region_of.get(a).ok_or_else(|| {
                    format!("array `{}` not in a data clause", prog.arrays[*a].name)
                })?;
                SVal::C(Value::U64(mem.base(*ridx)))
            }
            ParamSpec::ArrayDim { array, dim } => {
                let e = extents
                    .get(*array)
                    .and_then(|d| d.get(*dim))
                    .ok_or("array extent missing")?;
                SVal::C(Value::I32(*e as i32))
            }
            ParamSpec::HostScalar(h) => SVal::C(scalars[*h]),
            ParamSpec::TempBuffer(i) => SVal::C(Value::U64(mem.base(buf_region[*i]))),
        });
    }
    for (spec, &ridx) in compiled.buffers.iter().zip(&buf_region) {
        if let Some(v) = spec.init {
            mem.poke(ridx, 0, v);
        }
    }

    // 4. Symbolically execute the launch plan.
    let mut steps = 0u64;
    run_symbolic(
        &compiled.main,
        cfg,
        &params,
        &mut mem,
        &mut pool,
        ccfg,
        &mut steps,
    )?;
    for fp in &compiled.finalize {
        let fparams = [
            SVal::C(Value::U64(mem.base(buf_region[fp.buffer]))),
            SVal::C(Value::I32(fp.elems as i32)),
        ];
        run_symbolic(
            &fp.kernel,
            LaunchConfig::d1(1, fp.threads),
            &fparams,
            &mut mem,
            &mut pool,
            ccfg,
            &mut steps,
        )?;
    }

    // 5. Plan epilogue in term space: gang-result folds, then mailbox
    // writebacks — same order as `AccRunner::run_region`.
    let mut sim_hosts: Vec<SVal> = scalars.iter().map(|&v| SVal::C(v)).collect();
    for rr in &compiled.results {
        let cty = prog.hosts[rr.host].ty;
        let mty = machine_ty(cty);
        let v = mem
            .peek(&mut pool, buf_region[rr.buffer], 0, mty)?
            .ok_or_else(|| {
                format!(
                    "gang-reduction buffer for `{}` never written",
                    prog.hosts[rr.host].name
                )
            })?;
        sim_hosts[rr.host] = if rr.fold {
            let old = sim_hosts[rr.host];
            apply_host_term(&mut pool, rr.op, mty, old, v)?
        } else {
            pool.coerce(v, mty)
        };
    }
    if let Some(mb) = compiled.mailbox {
        for wb in &compiled.writebacks {
            let mty = machine_ty(prog.hosts[wb.host].ty);
            let v = mem
                .peek(&mut pool, buf_region[mb], wb.slot * 8, mty)?
                .ok_or_else(|| {
                    format!(
                        "mailbox slot for `{}` never written",
                        prog.hosts[wb.host].name
                    )
                })?;
            sim_hosts[wb.host] = v;
        }
    }

    // 6. Reference interpretation of the source region.
    let mut rstate = RefState {
        prog,
        region,
        extents,
        region_of: &region_of,
        input_backed: &input_backed,
        hosts: scalars.iter().map(|&v| SVal::C(v)).collect(),
        // Locals zero-init at machine type, like kernel registers.
        locals: r
            .locals
            .iter()
            .map(|l| SVal::C(Value::zero(machine_ty(l.ty))))
            .collect(),
        written: HashMap::new(),
        steps,
        max_steps: ccfg.max_steps,
    };
    rstate.exec_stmts(&mut pool, &r.body)?;

    // 7. Compare observables.
    let names = mem.names();
    let mut observables = Vec::new();
    for h in 0..prog.hosts.len() {
        let k = sim_hosts[h];
        let s = rstate.hosts[h];
        let init = SVal::C(scalars[h]);
        let interesting = r.hosts_written.contains(&h) || !sval_eq(k, init) || !sval_eq(s, init);
        if !interesting {
            continue;
        }
        observables.push(CertObservable {
            name: prog.hosts[h].name.clone(),
            verdict: compare(&pool, &names, k, s),
        });
    }
    for db in &r.data {
        if !matches!(db.dir, DataDir::Copy | DataDir::CopyOut | DataDir::Present) {
            continue;
        }
        let a = db.array;
        let ridx = region_of[&a];
        let ety = machine_ty(prog.arrays[a].ty);
        let esize = ety.size() as u64;
        let mut offs = mem.written_offsets(ridx);
        for (&(wa, off), _) in rstate.written.iter() {
            if wa == a && !offs.contains(&off) {
                offs.push(off);
            }
        }
        offs.sort_unstable();
        for off in offs {
            let kv = mem.peek(&mut pool, ridx, off, ety)?;
            let sv = match rstate.written.get(&(a, off)) {
                Some(&v) => Some(v),
                None if input_backed[a] => Some(SVal::T(pool.input(ridx, off, ety))),
                None => None,
            };
            let name = format!("{}[{}]", prog.arrays[a].name, off / esize);
            let verdict = match (kv, sv) {
                (Some(k), Some(s)) => compare(&pool, &names, k, s),
                (None, Some(s)) => CertVerdict::Refuted {
                    witness: format!(
                        "source computes {}, kernel never writes the cell",
                        pool.render_sval(s, &names)
                    ),
                },
                (Some(k), None) => CertVerdict::Refuted {
                    witness: format!(
                        "kernel computes {}, source never writes the cell",
                        pool.render_sval(k, &names)
                    ),
                },
                (None, None) => continue,
            };
            observables.push(CertObservable { name, verdict });
        }
    }
    Ok(observables)
}

/// Certify every region of `prog` at the given dims/scalars/extents.
pub fn certify_program(
    prog: &AnalyzedProgram,
    compiled: &[(usize, &CompiledRegion, LaunchDims)],
    scalars: &[Value],
    extents: &[Vec<u64>],
    ccfg: &CertConfig,
) -> Vec<CertReport> {
    compiled
        .iter()
        .map(|(region, c, dims)| certify_region(prog, *region, c, *dims, scalars, extents, ccfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompilerOptions;
    use crate::plan::LaunchDims;

    const SRC_INT_ADD: &str = r#"
        int N; int s;
        int a[N];
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang vector reduction(+:s)
            for (int i = 0; i < N; i++) { s += a[i]; }
        }
    "#;

    fn certify_src(src: &str, opts: &CompilerOptions, n: i64) -> CertReport {
        let prog = accparse::compile(src).unwrap();
        let dims = LaunchDims {
            gangs: 2,
            workers: 2,
            vector: 64,
        };
        let compiled = crate::compile_region(&prog, 0, dims, opts).unwrap();
        let scalars: Vec<Value> = prog
            .hosts
            .iter()
            .map(|h| Value::I64(n).convert(machine_ty(h.ty)))
            .collect();
        let extents: Vec<Vec<u64>> = prog
            .arrays
            .iter()
            .map(|a| a.dims.iter().map(|_| n as u64).collect())
            .collect();
        certify_region(
            &prog,
            0,
            &compiled,
            dims,
            &scalars,
            &extents,
            &CertConfig::default(),
        )
    }

    #[test]
    fn int_add_reduction_certifies_exactly() {
        let rep = certify_src(SRC_INT_ADD, &CompilerOptions::openuh(), 5);
        assert_eq!(rep.verdict, CertVerdict::Certified, "{}", rep.render_text());
        assert!(rep.reductions.iter().any(|r| r == "(s, +, 0)"));
    }

    #[test]
    fn double_add_reduction_certifies_modulo_reassoc() {
        let src = r#"
            int N; double s;
            double a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang vector reduction(+:s)
                for (int i = 0; i < N; i++) { s += a[i]; }
            }
        "#;
        let rep = certify_src(src, &CompilerOptions::openuh(), 5);
        assert_eq!(
            rep.verdict,
            CertVerdict::CertifiedModuloReassoc,
            "{}",
            rep.render_text()
        );
    }

    #[test]
    fn skip_init_fold_bug_is_refuted() {
        let mut opts = CompilerOptions::openuh();
        opts.bugs.skip_init_fold = true;
        let rep = certify_src(SRC_INT_ADD, &opts, 5);
        assert!(
            matches!(rep.verdict, CertVerdict::Refuted { .. }),
            "{}",
            rep.render_text()
        );
    }

    #[test]
    fn elementwise_store_certifies() {
        let src = r#"
            int N;
            int a[N]; int b[N];
            #pragma acc parallel copyin(a) copyout(b)
            {
                #pragma acc loop gang vector
                for (int i = 0; i < N; i++) { b[i] = a[i] * 2; }
            }
        "#;
        let rep = certify_src(src, &CompilerOptions::openuh(), 5);
        assert_eq!(rep.verdict, CertVerdict::Certified, "{}", rep.render_text());
        // One observable per written cell.
        assert_eq!(rep.observables.len(), 5, "{}", rep.render_text());
    }

    #[test]
    fn logical_and_reduction_certifies() {
        let src = r#"
            int N; int ok;
            int a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang vector reduction(&&:ok)
                for (int i = 0; i < N; i++) { ok = ok && (a[i] < 100); }
            }
        "#;
        let rep = certify_src(src, &CompilerOptions::openuh(), 5);
        assert_eq!(rep.verdict, CertVerdict::Certified, "{}", rep.render_text());
    }
}
