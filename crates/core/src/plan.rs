//! Output artifacts of region compilation: the compiled kernels plus the
//! launch/data plan the runtime executes.

use accparse::ast::{CType, RedOp};
use gpsim::Kernel;
use std::sync::Arc;

/// Resolved launch geometry: the OpenACC `num_gangs`/`num_workers`/
/// `vector_length` mapped to CUDA grid/block dims (gang -> block,
/// worker -> `threadIdx.y`, vector -> `threadIdx.x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchDims {
    pub gangs: u32,
    pub workers: u32,
    pub vector: u32,
}

impl LaunchDims {
    /// The paper's evaluation configuration: 192 gangs (12 usable SMs x 16
    /// resident blocks), 8 workers, vector length 128.
    pub fn paper() -> Self {
        LaunchDims {
            gangs: 192,
            workers: 8,
            vector: 128,
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.workers * self.vector
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u32 {
        self.gangs * self.threads_per_block()
    }
}

/// One kernel launch parameter the runtime must supply, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSpec {
    /// Device base address of array `arrays[i]`.
    ArrayBase(usize),
    /// Extent of dimension `dim` of array `arrays[i]` (as i32).
    ArrayDim { array: usize, dim: usize },
    /// Current host value of scalar `hosts[i]`.
    HostScalar(usize),
    /// Device base address of temp buffer `buffers[i]` of this region.
    TempBuffer(usize),
}

/// A temporary device buffer the runtime must allocate for this region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferSpec {
    /// Element count (known at compile time — it depends only on launch
    /// dims, never on data sizes).
    pub elems: u64,
    /// Element C type.
    pub ty: CType,
    /// What the buffer is for (diagnostics/debugging).
    pub purpose: BufferPurpose,
    /// Value to store into element 0 before every launch (atomic
    /// accumulators start at the operator identity).
    pub init: Option<gpsim::Value>,
}

/// Why a temp buffer exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPurpose {
    /// Per-participant partials of a gang-spanning reduction.
    GangPartials,
    /// Global-memory staging area for an in-kernel combine
    /// (`CombineSpace::Global`).
    GlobalCombine,
    /// Mailbox for host scalars written inside the kernel (8-byte slots).
    Mailbox,
    /// Single-element accumulator for the atomic gang strategy.
    GangAtomic,
}

/// A second-pass reduction kernel over a partials buffer (the paper's
/// "another kernel is launched to do the reduction within only one block").
#[derive(Debug, Clone)]
pub struct FinalizePass {
    pub kernel: Arc<Kernel>,
    /// Buffer index holding the partials; the result lands in element 0.
    pub buffer: usize,
    /// Number of partial elements to reduce.
    pub elems: u64,
    /// Threads of the single block.
    pub threads: u32,
}

/// After all kernels ran: fold `buffers[buffer][0]` into host scalar
/// `hosts[host]` with `op` (the initial-value handling of §3.1.1, done on
/// the host for gang-spanning reductions).
#[derive(Debug, Clone, Copy)]
pub struct ResultRead {
    pub host: usize,
    pub buffer: usize,
    pub op: RedOp,
    /// When false (injected baseline bug), overwrite instead of folding.
    pub fold: bool,
}

/// Which host scalars the main kernel writes directly (non-gang-spanning
/// reductions on host scalars and plain host assignments): the runtime
/// reads them back from a small mailbox buffer.
#[derive(Debug, Clone, Copy)]
pub struct HostWriteback {
    pub host: usize,
    /// Element index in the region's host-mailbox buffer.
    pub slot: u64,
}

/// A fully compiled parallel region.
///
/// Kernels are held behind `Arc`: a `CompiledRegion` is an immutable
/// *artifact* that many concurrent sessions (and the `uhaccd` cache)
/// share, while all mutable per-run state — temp buffers, bound data,
/// device statistics — lives in the session that launches it. Cloning a
/// region (or the whole struct) never copies instruction streams.
#[derive(Debug, Clone)]
pub struct CompiledRegion {
    pub main: Arc<Kernel>,
    pub dims: LaunchDims,
    pub params: Vec<ParamSpec>,
    pub buffers: Vec<BufferSpec>,
    pub finalize: Vec<FinalizePass>,
    pub results: Vec<ResultRead>,
    /// Host scalars written in-kernel, returned via the mailbox buffer.
    pub writebacks: Vec<HostWriteback>,
    /// Mailbox buffer index (present iff `writebacks` is non-empty).
    pub mailbox: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims() {
        let d = LaunchDims::paper();
        assert_eq!(d.threads_per_block(), 1024);
        assert_eq!(d.total_threads(), 192 * 1024);
    }
}
