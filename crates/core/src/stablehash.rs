//! Stable content hashing for cache keys.
//!
//! `std::hash` deliberately does not promise a stable hasher across
//! releases, so anything that must be deterministic *across process runs*
//! — the `uhaccd` content-addressed cache, pinned-key tests, on-disk
//! artifacts — hashes through this module instead: FNV-1a, 64-bit, fully
//! specified here and never changed without bumping the
//! [`crate::CompilerOptions::stable_key`] format version.

use crate::options::CompilerOptions;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a running state (pass [`FNV_OFFSET`] to
/// start a fresh hash; pass a previous result to chain fields — the
/// chaining is order-sensitive, as a cache key needs).
pub fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The content-addressed cache key for one compilation unit:
/// `hash(source, options)`. Every byte of the source and every knob of
/// the option set participates, so equal keys mean "same analyzed
/// program, same generated kernels".
pub fn program_key(source: &str, opts: &CompilerOptions) -> u64 {
    fnv1a64(
        fnv1a64(FNV_OFFSET, source.as_bytes()),
        opts.stable_key().as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn program_key_sensitivity() {
        let o = CompilerOptions::openuh();
        let k1 = program_key("int N;", &o);
        assert_ne!(k1, program_key("int M;", &o));
        let mut o2 = o.clone();
        o2.auto_span = false;
        assert_ne!(k1, program_key("int N;", &o2));
        // Chaining is order-sensitive: (a, b) != (b, a).
        assert_ne!(
            fnv1a64(fnv1a64(FNV_OFFSET, b"a"), b"b"),
            fnv1a64(fnv1a64(FNV_OFFSET, b"b"), b"a")
        );
    }
}
