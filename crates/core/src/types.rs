//! Scalar type and reduction operator utilities shared by compiler and
//! runtime.

use accparse::ast::{CType, RedOp};
use gpsim::{eval_bin, BinOp, Ty, Value};

/// Map a C type to the simulator machine type.
pub fn machine_ty(ct: CType) -> Ty {
    match ct {
        CType::Int => Ty::I32,
        CType::Long => Ty::I64,
        CType::Float => Ty::F32,
        CType::Double => Ty::F64,
    }
}

/// The identity element of a reduction operator at a given type, i.e. the
/// initial value of every thread's private partial accumulator.
pub fn identity(op: RedOp, ct: CType) -> Value {
    let ty = machine_ty(ct);
    match op {
        RedOp::Add | RedOp::BitOr | RedOp::BitXor | RedOp::LogOr => Value::zero(ty),
        RedOp::Mul => one(ty),
        RedOp::LogAnd => one(ty),
        RedOp::BitAnd => match ty {
            Ty::I32 => Value::I32(-1),
            Ty::I64 => Value::I64(-1),
            // Bitwise ops are rejected on floats by sema; unreachable here,
            // but a total function is easier to test.
            _ => Value::zero(ty),
        },
        RedOp::Max => match ty {
            Ty::I32 => Value::I32(i32::MIN),
            Ty::I64 => Value::I64(i64::MIN),
            Ty::F32 => Value::F32(f32::NEG_INFINITY),
            Ty::F64 => Value::F64(f64::NEG_INFINITY),
            _ => Value::zero(ty),
        },
        RedOp::Min => match ty {
            Ty::I32 => Value::I32(i32::MAX),
            Ty::I64 => Value::I64(i64::MAX),
            Ty::F32 => Value::F32(f32::INFINITY),
            Ty::F64 => Value::F64(f64::INFINITY),
            _ => Value::zero(ty),
        },
    }
}

fn one(ty: Ty) -> Value {
    match ty {
        Ty::I32 => Value::I32(1),
        Ty::I64 => Value::I64(1),
        Ty::F32 => Value::F32(1.0),
        Ty::F64 => Value::F64(1.0),
        _ => Value::U64(1),
    }
}

/// The simulator binary opcode that combines two partial values for `op`.
///
/// Logical and/or are performed on C truth values (0/1) with the bitwise
/// opcode, which is correct because reduction inputs are normalized to 0/1
/// by the update expression codegen.
pub fn combine_binop(op: RedOp) -> BinOp {
    match op {
        RedOp::Add => BinOp::Add,
        RedOp::Mul => BinOp::Mul,
        RedOp::Max => BinOp::Max,
        RedOp::Min => BinOp::Min,
        RedOp::BitAnd | RedOp::LogAnd => BinOp::And,
        RedOp::BitOr | RedOp::LogOr => BinOp::Or,
        RedOp::BitXor => BinOp::Xor,
    }
}

/// True for the logical operators whose operands must be normalized to 0/1
/// before combining.
pub fn is_logical(op: RedOp) -> bool {
    matches!(op, RedOp::LogAnd | RedOp::LogOr)
}

/// The global atomic opcode implementing `op`, when the hardware has one
/// (there is no atomic multiply; logical and/or reduce over normalized 0/1
/// values with the bitwise atomics).
pub fn atomic_op(op: RedOp) -> Option<gpsim::AtomOp> {
    use gpsim::AtomOp;
    match op {
        RedOp::Add => Some(AtomOp::Add),
        RedOp::Max => Some(AtomOp::Max),
        RedOp::Min => Some(AtomOp::Min),
        RedOp::BitAnd | RedOp::LogAnd => Some(AtomOp::And),
        RedOp::BitOr | RedOp::LogOr => Some(AtomOp::Or),
        RedOp::BitXor => Some(AtomOp::Xor),
        RedOp::Mul => None,
    }
}

/// Host-side application of a reduction operator (used by the runtime to
/// fold a kernel result into the host scalar's initial value, and by the
/// CPU reference executor).
pub fn apply_host(op: RedOp, ct: CType, a: Value, b: Value) -> Value {
    let ty = machine_ty(ct);
    if is_logical(op) {
        let r = match op {
            RedOp::LogAnd => a.as_bool() && b.as_bool(),
            _ => a.as_bool() || b.as_bool(),
        };
        return if r { one(ty) } else { Value::zero(ty) };
    }
    eval_bin(combine_binop(op), ty, a, b).expect("reduction ops are total on valid types")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_identities() {
        let cases = [
            (RedOp::Add, CType::Int, Value::I32(7)),
            (RedOp::Mul, CType::Int, Value::I32(7)),
            (RedOp::Add, CType::Double, Value::F64(1.25)),
            (RedOp::Mul, CType::Float, Value::F32(3.0)),
            (RedOp::Max, CType::Int, Value::I32(-5)),
            (RedOp::Min, CType::Int, Value::I32(5)),
            (RedOp::Max, CType::Double, Value::F64(-1e300)),
            (RedOp::Min, CType::Float, Value::F32(1e30)),
            (RedOp::BitAnd, CType::Int, Value::I32(0x55)),
            (RedOp::BitOr, CType::Int, Value::I32(0x55)),
            (RedOp::BitXor, CType::Int, Value::I32(0x55)),
        ];
        for (op, ct, v) in cases {
            let id = identity(op, ct);
            let r = apply_host(op, ct, id, v);
            assert_eq!(r, v, "{op:?} identity at {ct}");
            let r2 = apply_host(op, ct, v, id);
            assert_eq!(r2, v, "{op:?} identity (commuted) at {ct}");
        }
    }

    #[test]
    fn logical_identities() {
        // LogAnd identity = true(1), LogOr identity = false(0), results 0/1.
        assert_eq!(
            apply_host(
                RedOp::LogAnd,
                CType::Int,
                identity(RedOp::LogAnd, CType::Int),
                Value::I32(5)
            ),
            Value::I32(1)
        );
        assert_eq!(
            apply_host(
                RedOp::LogAnd,
                CType::Int,
                identity(RedOp::LogAnd, CType::Int),
                Value::I32(0)
            ),
            Value::I32(0)
        );
        assert_eq!(
            apply_host(
                RedOp::LogOr,
                CType::Int,
                identity(RedOp::LogOr, CType::Int),
                Value::I32(0)
            ),
            Value::I32(0)
        );
        assert_eq!(
            apply_host(
                RedOp::LogOr,
                CType::Int,
                identity(RedOp::LogOr, CType::Int),
                Value::I32(9)
            ),
            Value::I32(1)
        );
    }

    #[test]
    fn machine_ty_mapping() {
        assert_eq!(machine_ty(CType::Int), Ty::I32);
        assert_eq!(machine_ty(CType::Long), Ty::I64);
        assert_eq!(machine_ty(CType::Float), Ty::F32);
        assert_eq!(machine_ty(CType::Double), Ty::F64);
    }

    #[test]
    fn apply_host_combines() {
        assert_eq!(
            apply_host(RedOp::Add, CType::Int, Value::I32(2), Value::I32(3)),
            Value::I32(5)
        );
        assert_eq!(
            apply_host(RedOp::Mul, CType::Double, Value::F64(2.0), Value::F64(3.0)),
            Value::F64(6.0)
        );
        assert_eq!(
            apply_host(RedOp::Max, CType::Float, Value::F32(2.0), Value::F32(3.0)),
            Value::F32(3.0)
        );
        assert_eq!(
            apply_host(RedOp::BitXor, CType::Int, Value::I32(6), Value::I32(3)),
            Value::I32(5)
        );
    }
}
