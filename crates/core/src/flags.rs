//! Strict numeric option parsing, shared by the CLI drivers and the
//! `uhaccd` JSON API.
//!
//! Every surface that accepts a numeric knob — `--host-threads` /
//! `--n` / `--red-n` / `--dims` on the CLIs, the same fields in daemon
//! request bodies, and the `UHACC_HOST_THREADS` environment variable —
//! validates through these helpers so garbage is rejected with the same
//! rendered diagnostic everywhere (CLIs exit with code 2) instead of
//! panicking or silently falling back to a default.

/// Parse a non-negative integer option. `what` names the flag or field in
/// the diagnostic (e.g. `--host-threads` or `host_threads`).
pub fn parse_count(what: &str, s: &str) -> Result<u64, String> {
    let t = s.trim();
    if t.is_empty() {
        return Err(format!(
            "invalid value for {what}: expected a non-negative integer, got an empty string"
        ));
    }
    t.parse::<u64>().map_err(|_| {
        format!("invalid value for {what}: expected a non-negative integer, got `{s}`")
    })
}

/// [`parse_count`] bounded to `u32` (thread counts, launch dims, ports).
pub fn parse_count_u32(what: &str, s: &str) -> Result<u32, String> {
    let v = parse_count(what, s)?;
    u32::try_from(v).map_err(|_| format!("invalid value for {what}: `{s}` does not fit in 32 bits"))
}

/// Validate the `UHACC_HOST_THREADS` environment variable. Returns the
/// parsed value (`None` when unset). Library code tolerates garbage by
/// falling back to auto ([`gpsim::DeviceConfig::resolved_host_threads`]);
/// the CLIs and the daemon call this at startup so a typo surfaces as a
/// diagnostic and exit code 2 rather than a silently sequential run.
pub fn host_threads_from_env() -> Result<Option<u32>, String> {
    match std::env::var("UHACC_HOST_THREADS") {
        Err(_) => Ok(None),
        Ok(s) => parse_count_u32("UHACC_HOST_THREADS", &s).map(Some),
    }
}

/// Output format for report-producing switches (`--certify=FMT` on the
/// CLI, the `format` field of daemon request bodies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    Text,
    Json,
}

/// Parse a report format. `what` names the flag or field in the
/// diagnostic, so `--certify=yaml` on the CLI (exit 2) and
/// `"format":"yaml"` in a daemon body (HTTP 422) reject with the same
/// rendered text.
pub fn parse_report_format(what: &str, s: &str) -> Result<ReportFormat, String> {
    match s.trim() {
        "text" => Ok(ReportFormat::Text),
        "json" => Ok(ReportFormat::Json),
        _ => Err(format!(
            "invalid value for {what}: expected `text` or `json`, got `{s}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_formats() {
        assert_eq!(
            parse_report_format("--certify", "text"),
            Ok(ReportFormat::Text)
        );
        assert_eq!(
            parse_report_format("format", " json "),
            Ok(ReportFormat::Json)
        );
        for bad in ["", "yaml", "JSON", "trace"] {
            let e = parse_report_format("--certify", bad).unwrap_err();
            assert!(e.contains("--certify"), "{e}");
            assert!(e.contains("expected `text` or `json`"), "{e}");
        }
    }

    #[test]
    fn accepts_valid_counts() {
        assert_eq!(parse_count("--n", "0"), Ok(0));
        assert_eq!(parse_count("--n", " 42 "), Ok(42));
        assert_eq!(parse_count_u32("--host-threads", "4"), Ok(4));
    }

    #[test]
    fn rejects_garbage_with_named_diagnostic() {
        for bad in ["", "  ", "abc", "-1", "3.5", "4x", "0x10"] {
            let e = parse_count("--red-n", bad).unwrap_err();
            assert!(e.contains("--red-n"), "{e}");
            assert!(e.contains("invalid value"), "{e}");
        }
        let e = parse_count_u32("--host-threads", "4294967296").unwrap_err();
        assert!(e.contains("32 bits"), "{e}");
    }
}
