//! # uhacc-core — the OpenUH-style reduction-lowering compiler
//!
//! This crate is the reproduction of the primary contribution of
//! *"Reduction Operations in Parallel Loops for GPGPUs"* (Xu, Tian, Yan,
//! Chandrasekaran, Chapman — PMAM/PPoPP 2014): a compiler that maps
//! OpenACC gang/worker/vector loop nests onto the SIMT thread hierarchy
//! and parallelizes scalar reductions at every combination of levels.
//!
//! Input: the analyzed HIR from [`accparse`]. Output: [`plan::CompiledRegion`]
//! — kernels for the [`gpsim`] simulator plus the buffer/parameter/launch
//! plan the `accrt` runtime executes.
//!
//! Every strategy the paper discusses is a knob in
//! [`options::CompilerOptions`]:
//!
//! | Paper | Knob |
//! |---|---|
//! | window sliding vs blocking (Fig. 3, §3.1.3) | [`options::Schedule`] |
//! | Fig. 6b vs 6c vector layouts | [`options::VectorLayout`] |
//! | Fig. 8b vs 8c worker strategies | [`options::WorkerStrategy`] |
//! | unrolled + warp-sync tail vs naive tree (Fig. 7, §3.3) | [`options::TreeStyle`] |
//! | shared vs global staging (§3.3) | [`options::CombineSpace`] |
//! | §3.2.1 automatic reduction-span detection | `auto_span` |

pub mod cert;
pub mod codegen;
pub mod flags;
pub mod options;
pub mod plan;
pub mod stablehash;
pub mod types;

pub use cert::{apply_host_term, certify_program, certify_region};
pub use codegen::compile_region;
pub use options::{
    CombineSpace, CompilerOptions, GangStrategy, InjectedBugs, RejectRule, Schedule, TreeStyle,
    VectorLayout, WorkerStrategy,
};
pub use plan::{CompiledRegion, LaunchDims};
pub use stablehash::program_key;
