//! Expression code generation.
//!
//! Values live in registers typed by the HIR node's C type. The simulator
//! converts operands to the instruction type implicitly (like PTX's typed
//! instructions), so separate `cvt`s are only emitted where the *register*
//! must carry a converted value (HIR `Cast` nodes, which sema inserts at
//! every implicit conversion point).

use super::RegionCodegen;
use crate::types::machine_ty;
use accparse::ast::{BinOpKind, CType, UnOpKind};
use accparse::diag::Diag;
use accparse::hir::{HExpr, HExprKind, MathFunc};
use gpsim::{BinOp, CmpOp, MemRef, Reg, Ty, UnOp, Value};

impl<'a> RegionCodegen<'a> {
    /// Emit `e`, returning a register holding its value at
    /// `machine_ty(e.ty)`.
    pub fn expr(&mut self, e: &HExpr) -> Result<Reg, Diag> {
        let ty = machine_ty(e.ty);
        Ok(match &e.kind {
            HExprKind::Int(v) => {
                let val = match ty {
                    Ty::I64 => Value::I64(*v),
                    _ => Value::I32(*v as i32),
                };
                self.b.mov_imm(val)
            }
            HExprKind::Float(v) => {
                let val = match ty {
                    Ty::F32 => Value::F32(*v as f32),
                    _ => Value::F64(*v),
                };
                self.b.mov_imm(val)
            }
            HExprKind::Sym(s) => self.sym_reg(*s),
            HExprKind::Load { array, indices } => {
                let off = self.element_offset(*array, indices)?;
                let ety = machine_ty(self.prog.arrays[*array].ty);
                let base = self.array_base[array];
                self.b
                    .ld_global(ety, MemRef::indexed(base, off, ety.size() as u64))
            }
            HExprKind::Un { op, operand } => {
                let v = self.expr(operand)?;
                match op {
                    UnOpKind::Neg => self.b.un(UnOp::Neg, ty, v),
                    UnOpKind::BitNot => self.b.un(UnOp::Not, ty, v),
                    UnOpKind::Not => {
                        let oty = machine_ty(operand.ty);
                        let p = self.b.cmp(CmpOp::Eq, oty, v, Value::zero(oty));
                        self.b.select(p, Value::I32(1), Value::I32(0))
                    }
                }
            }
            HExprKind::Bin {
                op,
                cmp_ty,
                lhs,
                rhs,
            } => {
                match classify(*op) {
                    OpClass::Arith(bop) => {
                        let a = self.expr(lhs)?;
                        let b = self.expr(rhs)?;
                        self.b.bin(bop, ty, a, b)
                    }
                    OpClass::Cmp(cop) => {
                        let a = self.expr(lhs)?;
                        let b = self.expr(rhs)?;
                        let p = self.b.cmp(cop, machine_ty(*cmp_ty), a, b);
                        self.b.select(p, Value::I32(1), Value::I32(0))
                    }
                    OpClass::Logic(and) => {
                        // Non-short-circuit evaluation (kernel expressions
                        // are side-effect free).
                        let pa = self.expr_pred(lhs)?;
                        let pb = self.expr_pred(rhs)?;
                        let op = if and { BinOp::And } else { BinOp::Or };
                        let p = self.b.bin(op, Ty::Pred, pa, pb);
                        self.b.select(p, Value::I32(1), Value::I32(0))
                    }
                }
            }
            HExprKind::Cond { cond, then, els } => {
                let p = self.expr_pred(cond)?;
                let a = self.expr(then)?;
                let a = self.convert_if_needed(a, then.ty, e.ty);
                let b = self.expr(els)?;
                let b = self.convert_if_needed(b, els.ty, e.ty);
                self.b.select(p, a, b)
            }
            HExprKind::Call { func, args } => {
                let regs: Vec<Reg> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                match func {
                    MathFunc::FMax | MathFunc::IMax => self.b.bin(BinOp::Max, ty, regs[0], regs[1]),
                    MathFunc::FMin | MathFunc::IMin => self.b.bin(BinOp::Min, ty, regs[0], regs[1]),
                    MathFunc::FAbs | MathFunc::IAbs => self.b.un(UnOp::Abs, ty, regs[0]),
                    MathFunc::Sqrt => self.b.un(UnOp::Sqrt, ty, regs[0]),
                }
            }
            HExprKind::Cast { operand } => {
                let v = self.expr(operand)?;
                self.b.cvt(ty, v)
            }
        })
    }

    /// Emit `e` as a predicate register (for branches), with the
    /// comparison fast path that avoids materializing 0/1 integers.
    pub fn expr_pred(&mut self, e: &HExpr) -> Result<Reg, Diag> {
        match &e.kind {
            HExprKind::Bin {
                op,
                cmp_ty,
                lhs,
                rhs,
            } => match classify(*op) {
                OpClass::Cmp(cop) => {
                    let a = self.expr(lhs)?;
                    let b = self.expr(rhs)?;
                    Ok(self.b.cmp(cop, machine_ty(*cmp_ty), a, b))
                }
                OpClass::Logic(and) => {
                    let pa = self.expr_pred(lhs)?;
                    let pb = self.expr_pred(rhs)?;
                    let op = if and { BinOp::And } else { BinOp::Or };
                    Ok(self.b.bin(op, Ty::Pred, pa, pb))
                }
                OpClass::Arith(_) => self.value_nonzero(e),
            },
            HExprKind::Un {
                op: UnOpKind::Not,
                operand,
            } => {
                let p = self.expr_pred(operand)?;
                Ok(self.b.un(UnOp::Not, Ty::Pred, p))
            }
            _ => self.value_nonzero(e),
        }
    }

    fn value_nonzero(&mut self, e: &HExpr) -> Result<Reg, Diag> {
        let v = self.expr(e)?;
        let ty = machine_ty(e.ty);
        Ok(self.b.cmp(CmpOp::Ne, ty, v, Value::zero(ty)))
    }

    /// Emit a conversion when the source C type differs from the target.
    pub fn convert_if_needed(&mut self, v: Reg, from: CType, to: CType) -> Reg {
        if from == to {
            v
        } else {
            self.b.cvt(machine_ty(to), v)
        }
    }

    /// Evaluate `e`, or produce `default` when the active-iteration guard
    /// is off (used for loop bounds inside padded loops, where inactive
    /// threads must not evaluate expressions that may load out of bounds).
    pub fn expr_or_default(&mut self, e: &HExpr, default: Value) -> Result<Reg, Diag> {
        match self.active {
            None => self.expr(e),
            Some(p) => {
                let out = self.b.mov_imm(default);
                let skip = self.b.new_label();
                self.b.bra_unless(p, skip);
                let v = self.expr(e)?;
                self.b.mov_to(out, v);
                self.b.place(skip);
                Ok(out)
            }
        }
    }
}

/// Binary-operator classification shared by codegen and the reference
/// interpreter of [`crate::cert`] — both sides must agree on which ops
/// are arithmetic, comparisons, or (non-short-circuit) logic.
pub(crate) enum OpClass {
    Arith(BinOp),
    Cmp(CmpOp),
    Logic(bool),
}

pub(crate) fn classify(op: BinOpKind) -> OpClass {
    match op {
        BinOpKind::Add => OpClass::Arith(BinOp::Add),
        BinOpKind::Sub => OpClass::Arith(BinOp::Sub),
        BinOpKind::Mul => OpClass::Arith(BinOp::Mul),
        BinOpKind::Div => OpClass::Arith(BinOp::Div),
        BinOpKind::Rem => OpClass::Arith(BinOp::Rem),
        BinOpKind::Shl => OpClass::Arith(BinOp::Shl),
        BinOpKind::Shr => OpClass::Arith(BinOp::Shr),
        BinOpKind::BitAnd => OpClass::Arith(BinOp::And),
        BinOpKind::BitOr => OpClass::Arith(BinOp::Or),
        BinOpKind::BitXor => OpClass::Arith(BinOp::Xor),
        BinOpKind::Lt => OpClass::Cmp(CmpOp::Lt),
        BinOpKind::Le => OpClass::Cmp(CmpOp::Le),
        BinOpKind::Gt => OpClass::Cmp(CmpOp::Gt),
        BinOpKind::Ge => OpClass::Cmp(CmpOp::Ge),
        BinOpKind::Eq => OpClass::Cmp(CmpOp::Eq),
        BinOpKind::Ne => OpClass::Cmp(CmpOp::Ne),
        BinOpKind::LogAnd => OpClass::Logic(true),
        BinOpKind::LogOr => OpClass::Logic(false),
    }
}
