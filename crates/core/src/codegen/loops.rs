//! Loop emission: the Fig. 3 mapping of gang/worker/vector loops onto the
//! thread hierarchy, with the window-sliding (grid-stride) schedule or the
//! blocking schedule, plus the uniform-trip-count (padded) form required
//! when barrier-bearing reduction combines execute inside the loop.

use super::{RedState, RegionCodegen};
use crate::options::Schedule;
use crate::types::machine_ty;
use accparse::ast::{BinOpKind, Level};
use accparse::diag::Diag;
use accparse::hir::HLoop;
use gpsim::{BinOp, CmpOp, Reg, SpecialReg, Ty, Value};

impl<'a> RegionCodegen<'a> {
    /// Emit a loop (sequential or parallel) and the reduction combines for
    /// clauses attached to it.
    pub fn emit_loop(&mut self, l: &HLoop) -> Result<(), Diag> {
        let loop_id = self.next_loop_id;
        self.next_loop_id += 1;
        let padded = self.plan.padded[loop_id];

        // Source correlation: everything this loop emits (control flow,
        // body statements without spans of their own, and the trailing
        // reduction combines) is attributed to the loop's directive line;
        // the enclosing line is restored on exit.
        let saved_line = self.b.current_line();
        self.b.set_line(self.prog.line_of(l.span.start));

        // Activate this loop's reductions.
        let red_base = self.red_stack.len();
        for r in &l.reductions {
            let red_id = self.next_red_id;
            self.next_red_id += 1;
            let planned = self.plan.reds[red_id].clone();
            let cur = self.sym_reg(r.sym);
            let saved_init = self.b.mov(cur);
            let priv_reg = self.identity_reg(r.op, r.ty);
            self.red_stack.push(RedState {
                sym: r.sym,
                op: r.op,
                cty: r.ty,
                priv_reg,
                saved_init,
                span: planned.span,
                buffer: planned.buffer,
            });
        }

        if l.sched.is_empty() {
            self.emit_seq_loop(l)?;
        } else {
            match self.opts.schedule {
                Schedule::WindowSliding => self.emit_window_loop(l, padded)?,
                Schedule::Blocking => self.emit_blocking_loop(l, padded)?,
            }
        }

        // Deactivate and combine (combines read priv + saved_init; sym
        // reads must no longer be routed to the private).
        let states: Vec<RedState> = self.red_stack.drain(red_base..).collect();
        for st in &states {
            self.emit_combine(st)?;
        }
        self.b.set_line(saved_line);
        Ok(())
    }

    /// `(pos, total)` for a parallel loop's schedule: the thread's position
    /// in the flattened index space of the named levels and that space's
    /// size. The innermost component is always `threadIdx.x` when `vector`
    /// is named, which is what makes window-sliding coalesce.
    fn pos_total(&mut self, sched: &[Level]) -> (Reg, u32) {
        let mut total = 1u32;
        let mut pos: Option<Reg> = None;
        for lv in sched {
            let (idx, size) = match lv {
                Level::Gang => (self.special(SpecialReg::CtaIdX), self.dims.gangs),
                Level::Worker => (self.special(SpecialReg::TidY), self.dims.workers),
                Level::Vector => (self.special(SpecialReg::TidX), self.dims.vector),
            };
            pos = Some(match pos {
                None => idx,
                Some(p) => {
                    let scaled = self.b.bin(BinOp::Mul, Ty::I32, p, Value::I32(size as i32));
                    self.b.bin(BinOp::Add, Ty::I32, scaled, idx)
                }
            });
            total *= size;
        }
        (pos.expect("parallel loop has at least one level"), total)
    }

    fn cmp_op(cmp: BinOpKind) -> CmpOp {
        match cmp {
            BinOpKind::Lt => CmpOp::Lt,
            BinOpKind::Le => CmpOp::Le,
            BinOpKind::Gt => CmpOp::Gt,
            BinOpKind::Ge => CmpOp::Ge,
            _ => unreachable!("parser canonicalizes loop conditions"),
        }
    }

    /// Inactive-thread default bounds that make any loop form exit
    /// immediately: chosen so `cmp(lower, bound)` is false.
    fn inactive_defaults(cmp: BinOpKind) -> (Value, Value) {
        match cmp {
            BinOpKind::Lt | BinOpKind::Le => (Value::I32(1), Value::I32(0)),
            _ => (Value::I32(0), Value::I32(1)),
        }
    }

    /// Evaluate lower/bound with inactive-safe defaults; returns regs at
    /// the loop variable's machine type.
    fn eval_bounds(&mut self, l: &HLoop) -> Result<(Reg, Reg, Ty), Diag> {
        let vt = machine_ty(self.region.locals[l.var].ty);
        let (dl, db) = Self::inactive_defaults(l.cmp);
        let lo = self.expr_or_default(&l.lower, dl)?;
        let lo = self.b.cvt(vt, lo);
        let bo = self.expr_or_default(&l.bound, db)?;
        let bo = self.b.cvt(vt, bo);
        Ok((lo, bo, vt))
    }

    /// A sequential loop (no distribution): plain while form.
    fn emit_seq_loop(&mut self, l: &HLoop) -> Result<(), Diag> {
        let (lo, bound, vt) = self.eval_bounds(l)?;
        // Step may be a uniform expression for seq loops; default 0 is safe
        // because inactive defaults already fail the condition.
        let step = self.expr_or_default(&l.step, Value::I32(0))?;
        let step = self.b.cvt(vt, step);
        let var = self.local_regs[l.var];
        self.b.mov_to(var, lo);
        let top = self.b.new_label();
        let exit = self.b.new_label();
        self.b.place(top);
        let p = self.b.cmp(Self::cmp_op(l.cmp), vt, var, bound);
        self.b.bra_unless(p, exit);
        self.stmts(&l.body)?;
        self.b.bin_to(var, BinOp::Add, vt, var, step);
        self.b.bra(top);
        self.b.place(exit);
        Ok(())
    }

    /// Window-sliding parallel loop (paper Fig. 3):
    /// `var = lower + pos*step; while (cmp(var, bound)) { body; var += total*step; }`
    fn emit_window_loop(&mut self, l: &HLoop, padded: bool) -> Result<(), Diag> {
        let (lo, bound, vt) = self.eval_bounds(l)?;
        let stepv = l
            .step
            .const_int()
            .expect("sema enforces constant parallel step");
        let (pos, total) = self.pos_total(&l.sched);
        let off = self
            .b
            .bin(BinOp::Mul, Ty::I32, pos, Value::I32(stepv as i32));
        let var = self.local_regs[l.var];
        let off_vt = self.b.cvt(vt, off);
        self.b.bin_to(var, BinOp::Add, vt, lo, off_vt);
        let stride = Value::I32((total as i64 * stepv) as i32);
        let cmp = Self::cmp_op(l.cmp);

        if !padded {
            let top = self.b.new_label();
            let exit = self.b.new_label();
            self.b.place(top);
            let p = self.b.cmp(cmp, vt, var, bound);
            self.b.bra_unless(p, exit);
            self.stmts(&l.body)?;
            self.b.bin_to(var, BinOp::Add, vt, var, stride);
            self.b.bra(top);
            self.b.place(exit);
            return Ok(());
        }

        // Padded form: every thread executes the same number of slices so
        // that barriers inside the body stay uniform; out-of-range slices
        // run with the active predicate off.
        let n_slices = self.emit_slice_count(lo, bound, l.cmp, stepv, total);
        let it = self.b.mov_imm(Value::I64(0));
        let top = self.b.new_label();
        let exit = self.b.new_label();
        let outer_active = self.active;
        self.b.place(top);
        let p_it = self.b.cmp(CmpOp::Lt, Ty::I64, it, n_slices);
        self.b.bra_unless(p_it, exit);
        let in_range = self.b.cmp(cmp, vt, var, bound);
        let new_active = match outer_active {
            None => in_range,
            Some(a) => self.b.bin(BinOp::And, Ty::Pred, a, in_range),
        };
        self.active = Some(new_active);
        self.stmts(&l.body)?;
        self.active = outer_active;
        self.b.bin_to(var, BinOp::Add, vt, var, stride);
        self.b.bin_to(it, BinOp::Add, Ty::I64, it, Value::I64(1));
        self.b.bra(top);
        self.b.place(exit);
        Ok(())
    }

    /// Blocking-schedule parallel loop (the §2.2/§3.1.3 ablation): each
    /// thread takes one contiguous chunk of `ceil(trip/total)` iterations.
    /// The chunk count is uniform, so this form is barrier-safe by
    /// construction; out-of-range iterations are predicated off.
    fn emit_blocking_loop(&mut self, l: &HLoop, padded: bool) -> Result<(), Diag> {
        let (lo, bound, vt) = self.eval_bounds(l)?;
        let stepv = l
            .step
            .const_int()
            .expect("sema enforces constant parallel step");
        let (pos, total) = self.pos_total(&l.sched);
        let cmp = Self::cmp_op(l.cmp);
        let trip = self.emit_trip_count(lo, bound, l.cmp, stepv);
        // chunk = ceil(trip / total)
        let t_plus = self
            .b
            .bin(BinOp::Add, Ty::I64, trip, Value::I64(total as i64 - 1));
        let chunk = self
            .b
            .bin(BinOp::Div, Ty::I64, t_plus, Value::I64(total as i64));
        let pos64 = self.b.cvt(Ty::I64, pos);
        let start = self.b.bin(BinOp::Mul, Ty::I64, pos64, chunk);
        let it = self.b.mov(start);
        let lim = self.b.bin(BinOp::Add, Ty::I64, start, chunk);
        let lo64 = self.b.cvt(Ty::I64, lo);
        let var = self.local_regs[l.var];

        let top = self.b.new_label();
        let exit = self.b.new_label();
        let outer_active = self.active;
        self.b.place(top);

        if padded {
            // Iterate exactly `chunk` times; predicate the body on it < trip.
            let p = self.b.cmp(CmpOp::Lt, Ty::I64, it, lim);
            self.b.bra_unless(p, exit);
            let in_trip = self.b.cmp(CmpOp::Lt, Ty::I64, it, trip);
            let new_active = match outer_active {
                None => in_trip,
                Some(a) => self.b.bin(BinOp::And, Ty::Pred, a, in_trip),
            };
            let scaled = self.b.bin(BinOp::Mul, Ty::I64, it, Value::I64(stepv));
            let v64 = self.b.bin(BinOp::Add, Ty::I64, lo64, scaled);
            self.b.cvt_to(var, vt, v64);
            self.active = Some(new_active);
            self.stmts(&l.body)?;
            self.active = outer_active;
        } else {
            // end = min(lim, trip)
            let p_end = self.b.cmp(CmpOp::Lt, Ty::I64, lim, trip);
            let end = self.b.select(p_end, lim, trip);
            let p = self.b.cmp(CmpOp::Lt, Ty::I64, it, end);
            self.b.bra_unless(p, exit);
            let scaled = self.b.bin(BinOp::Mul, Ty::I64, it, Value::I64(stepv));
            let v64 = self.b.bin(BinOp::Add, Ty::I64, lo64, scaled);
            self.b.cvt_to(var, vt, v64);
            self.stmts(&l.body)?;
        }
        let _ = cmp;
        self.b.bin_to(it, BinOp::Add, Ty::I64, it, Value::I64(1));
        self.b.bra(top);
        self.b.place(exit);
        Ok(())
    }

    /// Emit the I64 trip count `max(0, ceil((bound-lower)/step))` adjusted
    /// for the comparison kind.
    fn emit_trip_count(&mut self, lo: Reg, bound: Reg, cmp: BinOpKind, stepv: i64) -> Reg {
        let lo64 = self.b.cvt(Ty::I64, lo);
        let b64 = self.b.cvt(Ty::I64, bound);
        let (diff, incl) = match cmp {
            BinOpKind::Lt => (self.b.bin(BinOp::Sub, Ty::I64, b64, lo64), 0),
            BinOpKind::Le => (self.b.bin(BinOp::Sub, Ty::I64, b64, lo64), 1),
            BinOpKind::Gt => (self.b.bin(BinOp::Sub, Ty::I64, lo64, b64), 0),
            BinOpKind::Ge => (self.b.bin(BinOp::Sub, Ty::I64, lo64, b64), 1),
            _ => unreachable!(),
        };
        let diff = if incl == 1 {
            self.b.bin(BinOp::Add, Ty::I64, diff, Value::I64(1))
        } else {
            diff
        };
        let sabs = stepv.unsigned_abs() as i64;
        let num = self.b.bin(BinOp::Add, Ty::I64, diff, Value::I64(sabs - 1));
        let trip = self.b.bin(BinOp::Div, Ty::I64, num, Value::I64(sabs));
        // clamp to >= 0
        self.b.bin(BinOp::Max, Ty::I64, trip, Value::I64(0))
    }

    /// Emit the uniform slice count `ceil(trip / total)` for padded loops.
    fn emit_slice_count(
        &mut self,
        lo: Reg,
        bound: Reg,
        cmp: BinOpKind,
        stepv: i64,
        total: u32,
    ) -> Reg {
        let trip = self.emit_trip_count(lo, bound, cmp, stepv);
        let num = self
            .b
            .bin(BinOp::Add, Ty::I64, trip, Value::I64(total as i64 - 1));
        self.b
            .bin(BinOp::Div, Ty::I64, num, Value::I64(total as i64))
    }
}
