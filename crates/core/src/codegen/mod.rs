//! Code generation: lower an analyzed OpenACC region to simulator kernels.
//!
//! This is the paper's contribution: the mapping of gang/worker/vector
//! loops onto the SIMT thread hierarchy (Fig. 3) and the parallelization
//! of reduction operations at every combination of levels (§3.1–§3.3).

pub(crate) mod expr;
mod loops;
pub(crate) mod prepass;
mod reduce;

use crate::options::CompilerOptions;
use crate::plan::{CompiledRegion, LaunchDims, ParamSpec};
use crate::types::{identity, machine_ty};
use accparse::ast::{CType, Level, RedOp};
use accparse::diag::{Diag, Span};
use accparse::hir::{AnalyzedProgram, AnalyzedRegion, HStmt, Sym};
use gpsim::{CmpOp, KernelBuilder, Reg, SpecialReg, Ty, Value};
use prepass::{prepass, Plan};
use std::collections::HashMap;

/// State of one active reduction while its clause loop's body is lowered.
pub(crate) struct RedState {
    pub sym: Sym,
    pub op: RedOp,
    pub cty: CType,
    /// Per-thread private partial accumulator.
    pub priv_reg: Reg,
    /// Value of the variable at loop entry (folded in after the combine).
    pub saved_init: Reg,
    /// Effective span levels.
    pub span: Vec<Level>,
    /// Gang partials buffer index, when gang-spanning.
    pub buffer: Option<usize>,
}

/// The region code generator.
pub(crate) struct RegionCodegen<'a> {
    pub prog: &'a AnalyzedProgram,
    pub region: &'a AnalyzedRegion,
    pub opts: &'a CompilerOptions,
    pub dims: LaunchDims,
    pub plan: Plan,
    pub b: KernelBuilder,

    // Symbol state.
    pub local_regs: Vec<Reg>,
    pub host_regs: HashMap<usize, Reg>,
    pub array_base: HashMap<usize, Reg>,
    /// Per array: dimension extents as I64 regs.
    pub array_dims64: HashMap<usize, Vec<Reg>>,
    /// Temp buffer base addresses.
    pub buffer_regs: Vec<Reg>,
    pub params: Vec<ParamSpec>,

    // Walk state.
    pub red_stack: Vec<RedState>,
    /// Active-iteration predicate inside padded loops.
    pub active: Option<Reg>,
    pub next_loop_id: usize,
    pub next_red_id: usize,
    pub specials: HashMap<SpecialReg, Reg>,
    /// Shared slab byte offset for combines.
    pub slab_off: usize,

    pub finalize: Vec<crate::plan::FinalizePass>,
}

/// Compile region `region_idx` of `prog` for the given launch dims and
/// strategy options.
pub fn compile_region(
    prog: &AnalyzedProgram,
    region_idx: usize,
    dims: LaunchDims,
    opts: &CompilerOptions,
) -> Result<CompiledRegion, Diag> {
    let region = &prog.regions[region_idx];
    if dims.gangs == 0 || dims.workers == 0 || dims.vector == 0 {
        return Err(Diag::new("launch dimensions must be positive", region.span));
    }
    let plan = prepass(region, dims, opts)?;

    let mut cg = RegionCodegen {
        prog,
        region,
        opts,
        dims,
        b: KernelBuilder::new(format!("acc_region_{region_idx}")),
        local_regs: Vec::new(),
        host_regs: HashMap::new(),
        array_base: HashMap::new(),
        array_dims64: HashMap::new(),
        buffer_regs: Vec::new(),
        params: Vec::new(),
        red_stack: Vec::new(),
        active: None,
        next_loop_id: 0,
        next_red_id: 0,
        specials: HashMap::new(),
        slab_off: 0,
        finalize: Vec::new(),
        plan,
    };
    // Source correlation: instructions are tagged with the region's
    // directive line until a loop or reduction update narrows it.
    cg.b.set_line(prog.line_of(region.span.start));
    cg.emit_entry();
    let body = region.body.clone();
    cg.stmts(&body)?;
    cg.emit_writebacks();

    // Finalize kernels for gang-spanning reductions, in plan order.
    let mut finalize = std::mem::take(&mut cg.finalize);
    for (i, spec) in cg.plan.buffers.iter().enumerate() {
        if spec.purpose == crate::plan::BufferPurpose::GangPartials {
            let rr = cg
                .plan
                .results
                .iter()
                .find(|r| r.buffer == i)
                .expect("gang buffer always has a result read");
            let threads = cg
                .opts
                .finalize_threads
                .clamp(32, 1024)
                .next_power_of_two()
                .min(1024);
            let kernel = reduce::build_finalize_kernel(rr.op, spec.ty, threads, cg.opts)
                .map_err(|e| Diag::new(e.to_string(), region.span))?;
            finalize.push(crate::plan::FinalizePass {
                kernel: std::sync::Arc::new(kernel),
                buffer: i,
                elems: spec.elems,
                threads,
            });
        }
    }

    let main =
        cg.b.try_finish()
            .map_err(|e| Diag::new(e.to_string(), region.span))?;
    Ok(CompiledRegion {
        main: std::sync::Arc::new(main),
        dims,
        params: cg.params,
        buffers: cg.plan.buffers.clone(),
        finalize,
        results: cg.plan.results.clone(),
        writebacks: cg.plan.writebacks.clone(),
        mailbox: cg.plan.mailbox,
    })
}

impl<'a> RegionCodegen<'a> {
    /// Cached read of a special register (uniform per thread, so caching a
    /// single entry-block read is sound).
    pub fn special(&mut self, sr: SpecialReg) -> Reg {
        if let Some(&r) = self.specials.get(&sr) {
            return r;
        }
        let r = self.b.special(sr);
        self.specials.insert(sr, r);
        r
    }

    /// Load all kernel parameters and set up symbol registers. Runs before
    /// any control flow so that every thread executes every `ReadParam`.
    fn emit_entry(&mut self) {
        // Pre-read the specials codegen uses so they sit in the entry block.
        for sr in [
            SpecialReg::TidX,
            SpecialReg::TidY,
            SpecialReg::CtaIdX,
            SpecialReg::LaneLinear,
        ] {
            self.special(sr);
        }
        // Arrays: base + dims.
        let bindings = self.region.data.clone();
        for db in &bindings {
            let idx = self.params.len() as u32;
            self.params.push(ParamSpec::ArrayBase(db.array));
            let base = self.b.param(idx);
            self.array_base.insert(db.array, base);
            let ndims = self.prog.arrays[db.array].dims.len();
            let mut dim_regs = Vec::new();
            for d in 0..ndims {
                let idx = self.params.len() as u32;
                self.params.push(ParamSpec::ArrayDim {
                    array: db.array,
                    dim: d,
                });
                let r = self.b.param(idx);
                let r64 = self.b.cvt(Ty::I64, r);
                dim_regs.push(r64);
            }
            self.array_dims64.insert(db.array, dim_regs);
        }
        // Host scalars.
        let hosts = self.region.hosts_used.clone();
        for h in hosts {
            let idx = self.params.len() as u32;
            self.params.push(ParamSpec::HostScalar(h));
            let r = self.b.param(idx);
            self.host_regs.insert(h, r);
        }
        // Temp buffers.
        for i in 0..self.plan.buffers.len() {
            let idx = self.params.len() as u32;
            self.params.push(ParamSpec::TempBuffer(i));
            let r = self.b.param(idx);
            self.buffer_regs.push(r);
        }
        // Locals: one register each, zero-initialized by the machine.
        for _ in 0..self.region.locals.len() {
            let r = self.b.reg();
            self.local_regs.push(r);
        }
        // Shared slab for combines.
        if self.plan.slab_bytes > 0 {
            self.slab_off = self.b.alloc_shared(self.plan.slab_bytes, 8);
        }
    }

    /// Current register holding a scalar symbol's value. Reads of an
    /// active reduction variable see the private partial (OpenACC
    /// private-copy semantics).
    pub fn sym_reg(&self, sym: Sym) -> Reg {
        if let Some(rs) = self.red_stack.iter().rev().find(|r| r.sym == sym) {
            return rs.priv_reg;
        }
        match sym {
            Sym::Local(i) => self.local_regs[i],
            Sym::Host(i) => self.host_regs[&i],
        }
    }

    /// Target register for assigning a scalar symbol (never the private —
    /// plain assignment to an active reduction variable is rejected by
    /// sema, so this is only reached for ordinary scalars).
    pub fn sym_target_reg(&self, sym: Sym) -> Reg {
        match sym {
            Sym::Local(i) => self.local_regs[i],
            Sym::Host(i) => self.host_regs[&i],
        }
    }

    /// The C type of a scalar symbol.
    #[allow(dead_code)]
    pub fn sym_cty(&self, sym: Sym) -> CType {
        match sym {
            Sym::Local(i) => self.region.locals[i].ty,
            Sym::Host(i) => self.prog.hosts[i].ty,
        }
    }

    /// Run `f` under the active-iteration guard, if one is in effect:
    /// inactive threads skip the emitted code entirely. Must not be used
    /// around code containing barriers.
    pub fn guarded(&mut self, f: impl FnOnce(&mut Self) -> Result<(), Diag>) -> Result<(), Diag> {
        match self.active {
            None => f(self),
            Some(p) => {
                let skip = self.b.new_label();
                self.b.bra_unless(p, skip);
                f(self)?;
                self.b.place(skip);
                Ok(())
            }
        }
    }

    // ---- statement walk ----------------------------------------------------

    pub fn stmts(&mut self, stmts: &[HStmt]) -> Result<(), Diag> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &HStmt) -> Result<(), Diag> {
        match s {
            HStmt::AssignLocal { local, value } => {
                let (local, value) = (*local, value.clone());
                self.guarded(|cg| {
                    let v = cg.expr(&value)?;
                    let dst = cg.local_regs[local];
                    cg.b.mov_to(dst, v);
                    Ok(())
                })
            }
            HStmt::AssignHost { host, value } => {
                let (host, value) = (*host, value.clone());
                self.guarded(|cg| {
                    let v = cg.expr(&value)?;
                    let dst = cg.host_regs[&host];
                    cg.b.mov_to(dst, v);
                    Ok(())
                })
            }
            HStmt::Store {
                array,
                indices,
                value,
            } => {
                let (array, indices, value) = (*array, indices.clone(), value.clone());
                self.guarded(|cg| {
                    let off = cg.element_offset(array, &indices)?;
                    let v = cg.expr(&value)?;
                    let ety = machine_ty(cg.prog.arrays[array].ty);
                    let base = cg.array_base[&array];
                    cg.b.st_global(ety, gpsim::MemRef::indexed(base, off, ety.size() as u64), v);
                    Ok(())
                })
            }
            HStmt::ReduceUpdate {
                sym,
                op,
                value,
                span,
            } => {
                let (sym, op, value, span) = (*sym, *op, value.clone(), *span);
                self.reduce_update(sym, op, &value, span)
            }
            HStmt::If { cond, then, els } => {
                let (cond, then, els) = (cond.clone(), then.clone(), els.clone());
                self.guarded(|cg| {
                    let p = cg.expr_pred(&cond)?;
                    let l_else = cg.b.new_label();
                    let l_end = cg.b.new_label();
                    cg.b.bra_unless(p, l_else);
                    cg.stmts(&then)?;
                    cg.b.bra(l_end);
                    cg.b.place(l_else);
                    cg.stmts(&els)?;
                    cg.b.place(l_end);
                    Ok(())
                })
            }
            HStmt::Loop(l) => {
                let l = l.clone();
                self.emit_loop(&l)
            }
        }
    }

    /// Accumulate a reduction update into the innermost matching private.
    fn reduce_update(
        &mut self,
        sym: Sym,
        op: RedOp,
        value: &accparse::hir::HExpr,
        span: Span,
    ) -> Result<(), Diag> {
        let Some(idx) = self.red_stack.iter().rposition(|r| r.sym == sym) else {
            return Err(Diag::new(
                "internal: reduction update outside any active reduction",
                span,
            ));
        };
        let (priv_reg, cty) = (self.red_stack[idx].priv_reg, self.red_stack[idx].cty);
        let _ = op;
        let red_op = self.red_stack[idx].op;
        let saved_line = self.b.current_line();
        self.b.set_line(self.prog.line_of(span.start));
        let r = self.guarded(|cg| {
            let v = cg.expr(value)?;
            cg.accumulate(priv_reg, red_op, cty, v);
            Ok(())
        });
        self.b.set_line(saved_line);
        r
    }

    /// `acc = acc <op> v` at the reduction's machine type. Logical ops
    /// normalize `v` to 0/1 first.
    pub fn accumulate(&mut self, acc: Reg, op: RedOp, cty: CType, v: Reg) {
        let ty = machine_ty(cty);
        let v = if crate::types::is_logical(op) {
            let p = self.b.cmp(CmpOp::Ne, ty, v, Value::zero(ty));
            self.b.select(p, Value::I32(1), Value::I32(0))
        } else {
            v
        };
        self.b
            .bin_to(acc, crate::types::combine_binop(op), ty, acc, v);
    }

    /// Fresh register holding the identity element for (op, ty).
    pub fn identity_reg(&mut self, op: RedOp, cty: CType) -> Reg {
        self.b.mov_imm(identity(op, cty))
    }

    /// Emit end-of-kernel writebacks of host scalars via the mailbox.
    fn emit_writebacks(&mut self) {
        let Some(mb) = self.plan.mailbox else { return };
        if self.plan.writebacks.is_empty() {
            return;
        }
        let linear = self.special(SpecialReg::LaneLinear);
        let is0 = self.b.cmp(CmpOp::Eq, Ty::I32, linear, Value::I32(0));
        let skip = self.b.new_label();
        self.b.bra_unless(is0, skip);
        let base = self.buffer_regs[mb];
        let wbs = self.plan.writebacks.clone();
        for wb in wbs {
            let ty = machine_ty(self.prog.hosts[wb.host].ty);
            let v = self.host_regs[&wb.host];
            self.b.st_global(
                ty,
                gpsim::MemRef::direct(base).with_disp(wb.slot as i64 * 8),
                v,
            );
        }
        self.b.place(skip);
    }

    /// Compute the row-major linear element offset of `array[indices...]`
    /// as an I64 register.
    pub fn element_offset(
        &mut self,
        array: usize,
        indices: &[accparse::hir::HExpr],
    ) -> Result<Reg, Diag> {
        let dims = self.array_dims64[&array].clone();
        debug_assert_eq!(dims.len(), indices.len());
        let mut off: Option<Reg> = None;
        for (d, ix) in indices.iter().enumerate() {
            let ix_reg = self.expr(ix)?;
            let ix64 = self.b.cvt(Ty::I64, ix_reg);
            off = Some(match off {
                None => ix64,
                Some(acc) => {
                    let scaled = self.b.bin(gpsim::BinOp::Mul, Ty::I64, acc, dims[d]);
                    self.b.bin(gpsim::BinOp::Add, Ty::I64, scaled, ix64)
                }
            });
        }
        Ok(off.expect("arrays have at least one dimension"))
    }
}
