//! Reduction combine emitters: the paper's §3.1–§3.3.
//!
//! After a parallel loop with a `reduction` clause exits, each thread holds
//! a private partial in a register. These emitters consolidate the
//! partials:
//!
//! - span `[vector]`: per-worker row reduction in shared memory, row-wise
//!   (Fig. 6c, OpenUH) or transposed (Fig. 6b),
//! - span `[worker]`: lane-0 staging into the first row (Fig. 8c, OpenUH)
//!   or duplicated rows (Fig. 8b),
//! - span `[worker, vector]`: one block-wide tree (Fig. 9's RMP),
//! - spans including `gang`: per-participant partials written to a global
//!   buffer, reduced by a second kernel (Fig. 5c / Fig. 10),
//! - empty span (`seq` clause): plain serial fold.
//!
//! The tree itself is the interleaved log-step reduction of Fig. 7, fully
//! unrolled with warp-synchronous tail by default (§3.3), with a pre-step
//! that folds the non-power-of-two remainder first. All barriers are
//! emitted unconditionally for every thread of the block; participation is
//! handled with branches around the data movement only, which keeps
//! `__syncthreads()` uniform.

use super::{RedState, RegionCodegen};
use crate::options::{CombineSpace, CompilerOptions, TreeStyle, VectorLayout, WorkerStrategy};
use crate::types::{combine_binop, identity, machine_ty};
use accparse::ast::{CType, Level, RedOp};
use accparse::diag::Diag;
use gpsim::{
    BinOp, CmpOp, Kernel, KernelBuilder, MemRef, Operand, Reg, SimError, SpecialReg, Ty, Value,
};

/// Where a combine stages its partials.
#[derive(Clone, Copy)]
pub(crate) enum TreeSpace {
    /// Shared-memory slab at byte offset `off`, element stride `esize`.
    Shared { off: u64, esize: u64 },
    /// Global staging buffer: `base` is a U64 register pointing at this
    /// block's window; 8-byte element stride.
    Global { base: Reg },
}

/// Load element `eidx` (I32/I64 register) of the staging area.
fn ld_elem(b: &mut KernelBuilder, space: TreeSpace, ty: Ty, eidx: Reg) -> Reg {
    match space {
        TreeSpace::Shared { off, esize } => b.ld_shared(
            ty,
            MemRef {
                base: Operand::Imm(Value::U64(off)),
                index: Some(eidx),
                scale: esize,
                disp: 0,
            },
        ),
        TreeSpace::Global { base } => b.ld_global(ty, MemRef::indexed(base, eidx, 8)),
    }
}

/// Store `v` to element `eidx` of the staging area.
fn st_elem(b: &mut KernelBuilder, space: TreeSpace, ty: Ty, eidx: Reg, v: Reg) {
    match space {
        TreeSpace::Shared { off, esize } => b.st_shared(
            ty,
            MemRef {
                base: Operand::Imm(Value::U64(off)),
                index: Some(eidx),
                scale: esize,
                disp: 0,
            },
            v,
        ),
        TreeSpace::Global { base } => b.st_global(ty, MemRef::indexed(base, eidx, 8), v),
    }
}

/// Affine element indexing for the tree: element `e` lives at
/// `e * mult + base_elem`.
#[derive(Clone, Copy)]
struct Layout {
    mult: u32,
    base_elem: Option<Reg>,
}

impl Layout {
    fn elem_idx(&self, b: &mut KernelBuilder, e: Reg) -> Reg {
        let scaled = if self.mult == 1 {
            e
        } else {
            b.bin(BinOp::Mul, Ty::I32, e, Value::I32(self.mult as i32))
        };
        match self.base_elem {
            None => scaled,
            Some(base) => b.bin(BinOp::Add, Ty::I32, scaled, base),
        }
    }
}

/// One guarded tree step: lanes `< limit` do
/// `elem[lane] = elem[lane] op elem[lane + delta]`.
#[allow(clippy::too_many_arguments)]
fn emit_step(
    b: &mut KernelBuilder,
    space: TreeSpace,
    layout: Layout,
    ty: Ty,
    op: BinOp,
    lane: Reg,
    limit: Operand,
    delta: Operand,
) {
    let p = b.cmp(CmpOp::Lt, Ty::I32, lane, limit);
    let skip = b.new_label();
    b.bra_unless(p, skip);
    let e1 = layout.elem_idx(b, lane);
    let lane2 = b.bin(BinOp::Add, Ty::I32, lane, delta);
    let e2 = layout.elem_idx(b, lane2);
    let a = ld_elem(b, space, ty, e1);
    let v = ld_elem(b, space, ty, e2);
    let r = b.bin(op, ty, a, v);
    st_elem(b, space, ty, e1, r);
    b.place(skip);
}

/// Emit the interleaved log-step tree over `n` staged elements.
///
/// `lane` is the participation index; `bars_allowed` gates every barrier
/// (it must equal `prepass::combine_has_bars` for the span); `warp_sync`
/// enables the §3.3 warp-synchronous tail (skip barriers once the active
/// step fits in one warp).
#[allow(clippy::too_many_arguments)]
fn emit_tree(
    b: &mut KernelBuilder,
    space: TreeSpace,
    layout: Layout,
    ty: Ty,
    op: BinOp,
    lane: Reg,
    n: u32,
    bars_allowed: bool,
    warp_sync: bool,
    style: TreeStyle,
) {
    if n <= 1 {
        return;
    }
    let p2 = super::prepass::next_pow2_at_most(n);
    // Pre-step for non-power-of-two group sizes (§3.3): fold the remainder
    // down onto the first `n - p2` elements.
    if p2 != n {
        let rem = n - p2;
        emit_step(
            b,
            space,
            layout,
            ty,
            op,
            lane,
            Value::I32(rem as i32).into(),
            Value::I32(p2 as i32).into(),
        );
        let need = if warp_sync {
            n > 32 && bars_allowed
        } else {
            bars_allowed
        };
        if need {
            b.bar();
        }
    }
    match style {
        TreeStyle::Unrolled => {
            let mut s = p2 / 2;
            while s >= 1 {
                emit_step(
                    b,
                    space,
                    layout,
                    ty,
                    op,
                    lane,
                    Value::I32(s as i32).into(),
                    Value::I32(s as i32).into(),
                );
                let need = if warp_sync {
                    s > 32 && bars_allowed
                } else {
                    bars_allowed
                };
                if need && s > 1 {
                    b.bar();
                }
                s /= 2;
            }
        }
        TreeStyle::Looped => {
            // s starts at p2/2 and halves every iteration, with a barrier
            // each time — the naive form (PGI-like personality).
            let s = b.mov_imm(Value::I32((p2 / 2) as i32));
            let top = b.new_label();
            let exit = b.new_label();
            b.place(top);
            let pc = b.cmp(CmpOp::Ge, Ty::I32, s, Value::I32(1));
            b.bra_unless(pc, exit);
            emit_step(b, space, layout, ty, op, lane, s.into(), s.into());
            if bars_allowed {
                b.bar();
            }
            b.bin_to(s, BinOp::Shr, Ty::I32, s, Value::I32(1));
            b.bra(top);
            b.place(exit);
        }
    }
}

impl<'a> RegionCodegen<'a> {
    /// Resolve the staging space for an in-kernel combine of element size
    /// `esize`.
    fn combine_space(&mut self, esize: u64) -> TreeSpace {
        match self.opts.combine_space {
            CombineSpace::Shared => TreeSpace::Shared {
                off: self.slab_off as u64,
                esize,
            },
            CombineSpace::Global => {
                let buf_idx = self
                    .plan
                    .global_combine_buf
                    .expect("prepass allocates the global combine buffer");
                let buf = self.buffer_regs[buf_idx];
                let ctaid = self.special(SpecialReg::CtaIdX);
                let tpb = self.dims.threads_per_block();
                let win = self
                    .b
                    .bin(BinOp::Mul, Ty::I32, ctaid, Value::I32(tpb as i32 * 8));
                let win64 = self.b.cvt(Ty::U64, win);
                let base = self.b.bin(BinOp::Add, Ty::U64, buf, win64);
                TreeSpace::Global { base }
            }
        }
    }

    /// Fold the saved initial value into the tree result and write the
    /// final value back to the symbol's register.
    fn finish_combine(&mut self, st: &RedState, tree_result: Reg) {
        let ty = machine_ty(st.cty);
        let fin = if self.opts.bugs.skip_init_fold {
            tree_result
        } else {
            let f = self.b.reg();
            self.b.emit(gpsim::Inst::Mov {
                dst: f,
                src: st.saved_init,
            });
            self.accumulate(f, st.op, st.cty, tree_result);
            f
        };
        let dst = self.sym_target_reg(st.sym);
        let fin_t = self.b.cvt(ty, fin);
        self.b.mov_to(dst, fin_t);
    }

    /// Emit the combine for one reduction whose clause loop just exited.
    pub fn emit_combine(&mut self, st: &RedState) -> Result<(), Diag> {
        if st.span.is_empty() {
            // `seq` reduction: serial fold of this thread's private.
            self.finish_combine(st, st.priv_reg);
            return Ok(());
        }
        if st.span.contains(&Level::Gang) {
            self.emit_gang_partial(st);
            return Ok(());
        }
        let ty = machine_ty(st.cty);
        let esize = ty.size() as u64;
        let op = combine_binop(st.op);
        let space = self.combine_space(esize);
        let tpb = self.dims.threads_per_block();
        let bars = super::prepass::combine_has_bars(&st.span, self.dims, self.opts);
        let looped = self.opts.tree == TreeStyle::Looped;
        let lin = self.special(SpecialReg::LaneLinear);
        let tidx = self.special(SpecialReg::TidX);
        let tidy = self.special(SpecialReg::TidY);

        let (stage_idx, stage_guard, lane, layout, n, warp_sync): (
            Reg,
            Option<Reg>,
            Reg,
            Layout,
            u32,
            bool,
        ) = if st.span == [Level::Vector] {
            let mode = super::prepass::vector_bar_mode(self.dims);
            let warp_sync = !looped
                && (mode == super::prepass::VectorBarMode::WarpSyncTail
                    || (self.opts.bugs.warp_tail_everywhere
                        && mode == super::prepass::VectorBarMode::EveryStep));
            match self.opts.vector_layout {
                VectorLayout::RowWise => {
                    // Fig. 6c: element (w*vector + v); each row reduces over
                    // its own contiguous slice.
                    let base = self.b.bin(
                        BinOp::Mul,
                        Ty::I32,
                        tidy,
                        Value::I32(self.dims.vector as i32),
                    );
                    (
                        lin,
                        None,
                        tidx,
                        Layout {
                            mult: 1,
                            base_elem: Some(base),
                        },
                        self.dims.vector,
                        warp_sync,
                    )
                }
                VectorLayout::Transposed => {
                    // Fig. 6b: element (v*workers + w); reductions run down
                    // strided columns (bank conflicts).
                    let scaled = self.b.bin(
                        BinOp::Mul,
                        Ty::I32,
                        tidx,
                        Value::I32(self.dims.workers as i32),
                    );
                    let sidx = self.b.bin(BinOp::Add, Ty::I32, scaled, tidy);
                    (
                        sidx,
                        None,
                        tidx,
                        Layout {
                            mult: self.dims.workers,
                            base_elem: Some(tidy),
                        },
                        self.dims.vector,
                        warp_sync,
                    )
                }
            }
        } else if st.span == [Level::Worker] {
            match self.opts.worker_strategy {
                WorkerStrategy::FirstRow => {
                    // Fig. 8c: lane 0 of each worker stages at element w;
                    // the first `workers` linear lanes reduce.
                    let is_lane0 = self.b.cmp(CmpOp::Eq, Ty::I32, tidx, Value::I32(0));
                    (
                        tidy,
                        Some(is_lane0),
                        lin,
                        Layout {
                            mult: 1,
                            base_elem: None,
                        },
                        self.dims.workers,
                        !looped,
                    )
                }
                WorkerStrategy::DuplicateRows => {
                    // Fig. 8b: every lane stages its worker's partial at
                    // (v*workers + w); every row reduces in parallel with a
                    // barrier per step.
                    let scaled = self.b.bin(
                        BinOp::Mul,
                        Ty::I32,
                        tidx,
                        Value::I32(self.dims.workers as i32),
                    );
                    let sidx = self.b.bin(BinOp::Add, Ty::I32, scaled, tidy);
                    let base = self.b.bin(
                        BinOp::Mul,
                        Ty::I32,
                        tidx,
                        Value::I32(self.dims.workers as i32),
                    );
                    (
                        sidx,
                        None,
                        tidy,
                        Layout {
                            mult: 1,
                            base_elem: Some(base),
                        },
                        self.dims.workers,
                        false, // cross-row reads: barrier every step
                    )
                }
            }
        } else if st.span == [Level::Worker, Level::Vector] {
            // RMP across worker+vector (Fig. 9): one block-wide tree over
            // every thread's partial.
            (
                lin,
                None,
                lin,
                Layout {
                    mult: 1,
                    base_elem: None,
                },
                tpb,
                !looped,
            )
        } else {
            return Err(Diag::new(
                format!("internal: unexpected reduction span {:?}", st.span),
                accparse::diag::Span::default(),
            ));
        };

        // Stage the private partial.
        match stage_guard {
            None => st_elem(&mut self.b, space, ty, stage_idx, st.priv_reg),
            Some(g) => {
                let skip = self.b.new_label();
                self.b.bra_unless(g, skip);
                st_elem(&mut self.b, space, ty, stage_idx, st.priv_reg);
                self.b.place(skip);
            }
        }
        // Stage barrier: readers of staged data may sit in other warps.
        let stage_bar = if st.span == [Level::Vector] && !looped {
            super::prepass::vector_bar_mode(self.dims) != super::prepass::VectorBarMode::NoBars
        } else {
            tpb > 32
        };
        if stage_bar && bars && !self.opts.bugs.skip_stage_barrier {
            self.b.bar();
        }

        emit_tree(
            &mut self.b,
            space,
            layout,
            ty,
            op,
            lane,
            n,
            bars,
            warp_sync,
            self.opts.tree,
        );

        // Broadcast barrier, then every thread reads the group result.
        if bars && !self.opts.bugs.skip_bcast_barrier {
            self.b.bar();
        }
        let res_idx = match layout.base_elem {
            None => self.b.mov_imm(Value::I32(0)),
            Some(base) => base,
        };
        let res = ld_elem(&mut self.b, space, ty, res_idx);
        // Post-read barrier: the slab is reused by the next combine (the
        // enclosing loop's next iteration, or the next reduction sharing
        // the slab); without this, a fast warp re-stages over the result
        // before slow warps have read it.
        if bars && !self.opts.bugs.skip_postread_barrier {
            self.b.bar();
        }
        self.finish_combine(st, res);
        Ok(())
    }

    /// Gang-spanning reduction: each participant writes its partial to the
    /// global buffer for the second kernel (FinalizePass), or — under the
    /// atomic gang strategy — folds it into a single accumulator with one
    /// global atomic.
    fn emit_gang_partial(&mut self, st: &RedState) {
        let ty = machine_ty(st.cty);
        let esize = ty.size() as u64;
        let buf_idx = st.buffer.expect("gang reduction has a buffer");
        let atomic = self.plan.buffers[buf_idx].purpose == crate::plan::BufferPurpose::GangAtomic;
        let buf = self.buffer_regs[buf_idx];
        let ctaid = self.special(SpecialReg::CtaIdX);
        let tidx = self.special(SpecialReg::TidX);
        let tidy = self.special(SpecialReg::TidY);
        let lin = self.special(SpecialReg::LaneLinear);

        let has_w = st.span.contains(&Level::Worker);
        let has_v = st.span.contains(&Level::Vector);
        let (guard, idx): (Option<Reg>, Reg) = match (has_w, has_v) {
            (false, false) => {
                // [gang]: one partial per block, written by thread (0,0).
                let g = self.b.cmp(CmpOp::Eq, Ty::I32, lin, Value::I32(0));
                (Some(g), ctaid)
            }
            (true, false) => {
                // [gang, worker]: lane 0 of each worker writes.
                let g = self.b.cmp(CmpOp::Eq, Ty::I32, tidx, Value::I32(0));
                let scaled = self.b.bin(
                    BinOp::Mul,
                    Ty::I32,
                    ctaid,
                    Value::I32(self.dims.workers as i32),
                );
                let idx = self.b.bin(BinOp::Add, Ty::I32, scaled, tidy);
                (Some(g), idx)
            }
            (false, true) => {
                // [gang, vector]: worker rows execute redundantly; row 0
                // writes.
                let g = self.b.cmp(CmpOp::Eq, Ty::I32, tidy, Value::I32(0));
                let scaled = self.b.bin(
                    BinOp::Mul,
                    Ty::I32,
                    ctaid,
                    Value::I32(self.dims.vector as i32),
                );
                let idx = self.b.bin(BinOp::Add, Ty::I32, scaled, tidx);
                (Some(g), idx)
            }
            (true, true) => {
                // [gang, worker, vector]: every thread writes.
                let tpb = self.dims.threads_per_block();
                let scaled = self
                    .b
                    .bin(BinOp::Mul, Ty::I32, ctaid, Value::I32(tpb as i32));
                let idx = self.b.bin(BinOp::Add, Ty::I32, scaled, lin);
                (None, idx)
            }
        };
        let store = |cg: &mut Self, idx: Reg| {
            if atomic {
                let aop = crate::types::atomic_op(st.op)
                    .expect("prepass only selects atomic for atomic-capable ops");
                let v = if crate::types::is_logical(st.op) {
                    let p = cg.b.cmp(CmpOp::Ne, ty, st.priv_reg, Value::zero(ty));
                    cg.b.select(p, Value::I32(1), Value::I32(0))
                } else {
                    st.priv_reg
                };
                cg.b.atom_global(aop, ty, MemRef::direct(buf), v, false);
            } else {
                let idx64 = cg.b.cvt(Ty::I64, idx);
                cg.b.st_global(ty, MemRef::indexed(buf, idx64, esize), st.priv_reg);
            }
        };
        match guard {
            None => store(self, idx),
            Some(g) => {
                let skip = self.b.new_label();
                self.b.bra_unless(g, skip);
                store(self, idx);
                self.b.place(skip);
            }
        }
    }
}

/// Build the second-pass kernel that reduces a gang-partials buffer of
/// `op`/`cty` down to its element 0 using one block of `threads` threads
/// (power of two). Parameters: `[0]` buffer address, `[1]` element count.
///
/// A malformed kernel (e.g. a never-placed label from a broken tree
/// emitter) surfaces as a build error rather than a panic; the caller
/// attaches the region's source span.
pub(crate) fn build_finalize_kernel(
    op: RedOp,
    cty: CType,
    threads: u32,
    opts: &CompilerOptions,
) -> Result<Kernel, SimError> {
    debug_assert!(threads.is_power_of_two());
    let ty = machine_ty(cty);
    let esize = ty.size() as u64;
    let mut b = KernelBuilder::new(format!(
        "acc_reduce_final_{}_{}",
        op.clause_token().replace(['+', '*', '&', '|', '^'], "op"),
        cty
    ));
    let buf = b.param(0);
    let n = b.param(1);
    let tid = b.special(SpecialReg::TidX);

    // Grid-stride private accumulation (window sliding over the buffer).
    let acc = b.mov_imm(identity(op, cty));
    let i = b.mov(tid);
    let top = b.new_label();
    let exit = b.new_label();
    b.place(top);
    let p = b.cmp(CmpOp::Ge, Ty::I32, i, n);
    b.bra_if(p, exit);
    let i64r = b.cvt(Ty::I64, i);
    let v = b.ld_global(ty, MemRef::indexed(buf, i64r, esize));
    b.bin_to(acc, combine_binop(op), ty, acc, v);
    b.bin_to(i, BinOp::Add, Ty::I32, i, Value::I32(threads as i32));
    b.bra(top);
    b.place(exit);

    // Shared tree over the block.
    let slab = b.alloc_shared(threads as usize * esize as usize, 8) as u64;
    let space = TreeSpace::Shared { off: slab, esize };
    st_elem(&mut b, space, ty, tid, acc);
    let bars = threads > 32;
    if bars {
        b.bar();
    }
    emit_tree(
        &mut b,
        space,
        Layout {
            mult: 1,
            base_elem: None,
        },
        ty,
        combine_binop(op),
        tid,
        threads,
        bars,
        opts.tree != TreeStyle::Looped,
        opts.tree,
    );
    if bars {
        b.bar();
    }
    // Thread 0 writes the result back over element 0.
    let is0 = b.cmp(CmpOp::Eq, Ty::I32, tid, Value::I32(0));
    let skip = b.new_label();
    b.bra_unless(is0, skip);
    let zero = b.mov_imm(Value::I32(0));
    let r = ld_elem(&mut b, space, ty, zero);
    let z64 = b.cvt(Ty::I64, zero);
    b.st_global(ty, MemRef::indexed(buf, z64, esize), r);
    b.place(skip);
    b.try_finish()
}
