//! Planning pass run before code emission.
//!
//! Walks the region once to:
//! - resolve each reduction's *effective* span (auto-detected §3.2.1 span,
//!   or the clause's own levels for baseline personalities),
//! - reject unsupported reductions (the baseline "CE" entries) and invalid
//!   shapes (mixed-depth updates, gang reductions on locals),
//! - size the shared-memory combine slab (§3.3: one slab sized for the
//!   widest type, shared by every combine),
//! - allocate global partials buffers for gang-spanning reductions and the
//!   global-combine staging buffer when `CombineSpace::Global`,
//! - decide which loops need the uniform-trip-count (padded) form because
//!   a barrier-bearing combine executes inside them,
//! - plan the host-scalar mailbox.

use crate::options::{CombineSpace, CompilerOptions};
use crate::plan::{BufferPurpose, BufferSpec, HostWriteback, LaunchDims, ResultRead};
use crate::types::machine_ty;
use accparse::ast::{CType, Level};
use accparse::diag::Diag;
use accparse::hir::{AnalyzedRegion, HStmt, Reduction, Sym};

/// Planned facts about one reduction instance, in pre-order walk order.
#[derive(Debug, Clone)]
pub(crate) struct PlannedRed {
    /// Effective span after applying `auto_span` / `clause_levels_only`.
    pub span: Vec<Level>,
    /// Gang partials buffer index, when the span includes gang.
    pub buffer: Option<usize>,
}

/// The full plan for a region.
#[derive(Debug, Clone)]
pub(crate) struct Plan {
    /// Per reduction instance (walk order).
    pub reds: Vec<PlannedRed>,
    /// Per loop (pre-order walk order): emit the padded uniform-trip form.
    pub padded: Vec<bool>,
    /// Shared slab size in bytes (0 if no shared combines).
    pub slab_bytes: usize,
    pub buffers: Vec<BufferSpec>,
    pub results: Vec<ResultRead>,
    pub writebacks: Vec<HostWriteback>,
    pub mailbox: Option<usize>,
    /// Global staging buffer for `CombineSpace::Global` combines.
    pub global_combine_buf: Option<usize>,
}

/// The effective span of a reduction under the given options.
pub(crate) fn effective_span(r: &Reduction, opts: &CompilerOptions) -> Vec<Level> {
    if opts.auto_span && !opts.bugs.clause_levels_only {
        r.span_levels.clone()
    } else {
        r.clause_levels.clone()
    }
}

/// Barrier regime for a vector-span combine: the per-row tree can run
/// warp-synchronously only when each worker row is contained in (an
/// aligned part of) one warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VectorBarMode {
    /// Rows never cross a warp boundary: no barriers at all.
    NoBars,
    /// Rows are warp-aligned multiples of the warp: barrier after staging
    /// and after steps with `s > 32` (the §3.3 warp-synchronous tail).
    WarpSyncTail,
    /// Rows straddle warp boundaries (non-multiple-of-32 vector length):
    /// a barrier after every step.
    EveryStep,
}

/// Decide the barrier regime for a vector-span combine under `dims`.
pub(crate) fn vector_bar_mode(dims: LaunchDims) -> VectorBarMode {
    let tpb = dims.threads_per_block();
    let v = dims.vector;
    if tpb <= 32 || (v <= 32 && 32_u32.is_multiple_of(v)) {
        VectorBarMode::NoBars
    } else if v.is_multiple_of(32) {
        VectorBarMode::WarpSyncTail
    } else {
        VectorBarMode::EveryStep
    }
}

/// Does the in-kernel combine for `span` emit block barriers? Must stay an
/// upper bound on what the emitters in `reduce.rs` produce — the padded
/// loop decision depends on it.
pub(crate) fn combine_has_bars(span: &[Level], dims: LaunchDims, opts: &CompilerOptions) -> bool {
    if span.is_empty() || span.contains(&Level::Gang) {
        return false;
    }
    if opts.tree == crate::options::TreeStyle::Looped {
        return dims.threads_per_block() > 32;
    }
    if span == [Level::Vector] {
        return vector_bar_mode(dims) != VectorBarMode::NoBars;
    }
    // [Worker] and [Worker, Vector] stage across the whole block.
    dims.threads_per_block() > 32
}

/// Shared-slab bytes needed by the combine for one reduction (0 when the
/// combine doesn't use shared memory).
fn slab_need(span: &[Level], ty: CType, dims: LaunchDims, opts: &CompilerOptions) -> usize {
    if span.is_empty() || span.contains(&Level::Gang) {
        return 0;
    }
    if opts.combine_space == CombineSpace::Global {
        return 0;
    }
    let esize = machine_ty(ty).size();
    if span == [Level::Worker] && opts.worker_strategy == crate::options::WorkerStrategy::FirstRow {
        dims.workers as usize * esize
    } else {
        // Vector (both layouts), worker duplicate-rows, worker+vector: one
        // element per thread.
        dims.threads_per_block() as usize * esize
    }
}

/// Gang partials buffer length (participants) for a gang-spanning `span`.
pub(crate) fn gang_buffer_elems(span: &[Level], dims: LaunchDims) -> u64 {
    debug_assert!(span.contains(&Level::Gang));
    let mut n = dims.gangs as u64;
    if span.contains(&Level::Worker) {
        n *= dims.workers as u64;
    }
    if span.contains(&Level::Vector) {
        n *= dims.vector as u64;
    }
    n
}

pub(crate) fn prepass(
    region: &AnalyzedRegion,
    dims: LaunchDims,
    opts: &CompilerOptions,
) -> Result<Plan, Diag> {
    let mut plan = Plan {
        reds: Vec::new(),
        padded: Vec::new(),
        slab_bytes: 0,
        buffers: Vec::new(),
        results: Vec::new(),
        writebacks: Vec::new(),
        mailbox: None,
        global_combine_buf: None,
    };
    let mut gang_red_hosts: Vec<usize> = Vec::new();
    let mut needs_global_combine = false;

    walk_stmts(&region.body, &mut plan, dims, opts, &mut |red, plan| {
        let span = effective_span(red, opts);
        if let Some(rule) = opts.rejected(&span, red.op) {
            return Err(Diag::new(
                format!(
                    "this compiler cannot handle a {} reduction spanning {:?}: {}",
                    red.op.clause_token(),
                    span,
                    rule.reason
                ),
                red.span,
            ));
        }
        if red.mixed_updates {
            return Err(Diag::new(
                "reduction variable is updated at multiple parallelism depths; \
                 hoist the shallow update out of the parallel loop",
                red.span,
            ));
        }
        let mut buffer = None;
        if span.contains(&Level::Gang) {
            let host = match red.sym {
                Sym::Host(h) => h,
                Sym::Local(_) => {
                    return Err(Diag::new(
                        "a reduction spanning gang parallelism must target a host \
                         scalar (its value is only available after the region)",
                        red.span,
                    ));
                }
            };
            let idx = plan.buffers.len();
            let atomic = opts.gang_strategy == crate::options::GangStrategy::Atomic
                && crate::types::atomic_op(red.op).is_some();
            if atomic {
                plan.buffers.push(BufferSpec {
                    elems: 1,
                    ty: red.ty,
                    purpose: BufferPurpose::GangAtomic,
                    init: Some(crate::types::identity(red.op, red.ty)),
                });
            } else {
                plan.buffers.push(BufferSpec {
                    elems: gang_buffer_elems(&span, dims),
                    ty: red.ty,
                    purpose: BufferPurpose::GangPartials,
                    init: None,
                });
            }
            plan.results.push(ResultRead {
                host,
                buffer: idx,
                op: red.op,
                fold: !opts.bugs.skip_init_fold,
            });
            gang_red_hosts.push(host);
            buffer = Some(idx);
        } else if !span.is_empty() {
            let need = slab_need(&span, red.ty, dims, opts);
            plan.slab_bytes = plan.slab_bytes.max(need);
            if opts.combine_space == CombineSpace::Global {
                needs_global_combine = true;
            }
        }
        plan.reds.push(PlannedRed { span, buffer });
        Ok(())
    })?;

    if needs_global_combine {
        let idx = plan.buffers.len();
        plan.buffers.push(BufferSpec {
            elems: dims.total_threads() as u64,
            ty: CType::Long, // 8-byte slots, shared across types
            purpose: BufferPurpose::GlobalCombine,
            init: None,
        });
        plan.global_combine_buf = Some(idx);
    }

    // Mailbox: host scalars written in-kernel, excluding gang-reduction
    // targets (those come back through ResultRead).
    let mut slot = 0u64;
    for &h in &region.hosts_written {
        if !gang_red_hosts.contains(&h) {
            plan.writebacks.push(HostWriteback { host: h, slot });
            slot += 1;
        }
    }
    if !plan.writebacks.is_empty() {
        let idx = plan.buffers.len();
        plan.buffers.push(BufferSpec {
            elems: slot,
            ty: CType::Long, // 8-byte slots
            purpose: BufferPurpose::Mailbox,
            init: None,
        });
        plan.mailbox = Some(idx);
    }

    Ok(plan)
}

/// Walk statements, assigning loop ids (pre-order) and reduction ids (walk
/// order) and computing padding.
fn walk_stmts(
    stmts: &[HStmt],
    plan: &mut Plan,
    dims: LaunchDims,
    opts: &CompilerOptions,
    on_red: &mut impl FnMut(&Reduction, &mut Plan) -> Result<(), Diag>,
) -> Result<bool, Diag> {
    let mut subtree_bars = false;
    for s in stmts {
        match s {
            HStmt::Loop(l) => {
                let my_id = plan.padded.len();
                plan.padded.push(false); // placeholder, fixed below
                for r in &l.reductions {
                    on_red(r, plan)?;
                }
                let inner_bars = walk_stmts(&l.body, plan, dims, opts, on_red)?;
                let pos_on_tid = l
                    .sched
                    .iter()
                    .any(|lv| matches!(lv, Level::Worker | Level::Vector));
                plan.padded[my_id] = pos_on_tid && inner_bars;
                // Bars visible to *enclosing* loops: inner bars plus this
                // loop's own combines.
                let own_bars = l
                    .reductions
                    .iter()
                    .any(|r| combine_has_bars(&effective_span(r, opts), dims, opts));
                subtree_bars |= inner_bars || own_bars;
            }
            HStmt::If { then, els, .. } => {
                subtree_bars |= walk_stmts(then, plan, dims, opts, on_red)?;
                subtree_bars |= walk_stmts(els, plan, dims, opts, on_red)?;
            }
            _ => {}
        }
    }
    Ok(subtree_bars)
}

/// Host-side helper mirroring the walk order of loops used by `prepass`
/// and the code generator: pre-order over statements.
pub(crate) fn next_pow2_at_most(n: u32) -> u32 {
    debug_assert!(n >= 1);
    let mut p = 1u32;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_helper() {
        assert_eq!(next_pow2_at_most(1), 1);
        assert_eq!(next_pow2_at_most(2), 2);
        assert_eq!(next_pow2_at_most(3), 2);
        assert_eq!(next_pow2_at_most(96), 64);
        assert_eq!(next_pow2_at_most(128), 128);
        assert_eq!(next_pow2_at_most(1000), 512);
    }

    #[test]
    fn combine_bars_rules() {
        let o = CompilerOptions::openuh();
        let d = LaunchDims {
            gangs: 4,
            workers: 8,
            vector: 128,
        };
        assert!(combine_has_bars(&[Level::Vector], d, &o));
        assert!(combine_has_bars(&[Level::Worker], d, &o));
        assert!(combine_has_bars(&[Level::Worker, Level::Vector], d, &o));
        assert!(!combine_has_bars(&[Level::Gang], d, &o));
        assert!(!combine_has_bars(
            &[Level::Gang, Level::Worker, Level::Vector],
            d,
            &o
        ));
        assert!(!combine_has_bars(&[], d, &o));
        let small = LaunchDims {
            gangs: 4,
            workers: 1,
            vector: 32,
        };
        assert!(!combine_has_bars(&[Level::Vector], small, &o));
        assert!(!combine_has_bars(&[Level::Worker], small, &o));
        // Looped trees always bar when the block spans multiple warps.
        let looped = CompilerOptions {
            tree: crate::options::TreeStyle::Looped,
            ..CompilerOptions::openuh()
        };
        assert!(combine_has_bars(
            &[Level::Vector],
            LaunchDims {
                gangs: 4,
                workers: 2,
                vector: 32
            },
            &looped
        ));
        assert!(!combine_has_bars(
            &[Level::Vector],
            LaunchDims {
                gangs: 4,
                workers: 1,
                vector: 16
            },
            &looped
        ));
        // Unrolled trees: rows crossing warp boundaries need barriers even
        // with vector <= 32 (the warp-sync assumption breaks).
        assert!(combine_has_bars(
            &[Level::Vector],
            LaunchDims {
                gangs: 1,
                workers: 2,
                vector: 17
            },
            &o
        ));
        assert_eq!(
            vector_bar_mode(LaunchDims {
                gangs: 1,
                workers: 2,
                vector: 17
            }),
            VectorBarMode::EveryStep
        );
        assert_eq!(
            vector_bar_mode(LaunchDims {
                gangs: 1,
                workers: 8,
                vector: 128
            }),
            VectorBarMode::WarpSyncTail
        );
        assert_eq!(
            vector_bar_mode(LaunchDims {
                gangs: 1,
                workers: 4,
                vector: 16
            }),
            VectorBarMode::NoBars
        );
        assert_eq!(
            vector_bar_mode(LaunchDims {
                gangs: 1,
                workers: 8,
                vector: 48
            }),
            VectorBarMode::EveryStep
        );
    }

    #[test]
    fn gang_buffer_sizing() {
        let d = LaunchDims {
            gangs: 10,
            workers: 4,
            vector: 32,
        };
        assert_eq!(gang_buffer_elems(&[Level::Gang], d), 10);
        assert_eq!(gang_buffer_elems(&[Level::Gang, Level::Worker], d), 40);
        assert_eq!(gang_buffer_elems(&[Level::Gang, Level::Vector], d), 320);
        assert_eq!(
            gang_buffer_elems(&[Level::Gang, Level::Worker, Level::Vector], d),
            1280
        );
    }
}
