//! Compiler strategy options.
//!
//! Every design choice the paper discusses (and every alternative it
//! compares against) is a knob here, so the OpenUH strategy, the two
//! commercial-compiler personalities, and the ablation benches all drive
//! the *same* codegen with different options.

use crate::stablehash::{fnv1a64, FNV_OFFSET};
use accparse::ast::{Level, RedOp};
use std::fmt::Write as _;

/// How a parallel loop's iterations are distributed over its threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// The paper's window-sliding (grid-stride / round-robin) schedule
    /// (Fig. 3). Consecutive threads touch consecutive iterations, so
    /// vector loops coalesce.
    WindowSliding,
    /// Blocking: each thread takes one contiguous chunk. Same work, but
    /// vector loops stop coalescing — the §3.1.3 ablation.
    Blocking,
}

/// Shared-memory layout for the vector reduction (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorLayout {
    /// Fig. 6(c), OpenUH: threads and data keep the global-memory layout;
    /// each worker's row is contiguous in shared memory (conflict-prone
    /// only at the tail, fixed by unrolling).
    RowWise,
    /// Fig. 6(b): data and threads transposed in shared memory; reduction
    /// runs down columns, so lanes hit strided addresses (bank conflicts,
    /// memory divergence).
    Transposed,
}

/// Strategy for the worker reduction (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerStrategy {
    /// Fig. 8(c), OpenUH: lane 0 of each worker stores the partial into the
    /// first row; the first row's vector threads tree-reduce it. Uses
    /// `workers` elements of shared memory and (mostly) warp-synchronous
    /// steps.
    FirstRow,
    /// Fig. 8(b): every vector lane stores its worker's partial, producing
    /// `vector x workers` duplicated values; every row reduces in parallel
    /// with a barrier per step. More shared memory, more synchronization.
    DuplicateRows,
}

/// How the in-kernel tree reduction is emitted (paper Fig. 7 and §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeStyle {
    /// Fully unrolled interleaved log-step reduction with warp-synchronous
    /// tail (no `__syncthreads()` once the active lanes fit in one warp) —
    /// OpenUH unrolls all iterations since blocks are at most 1024 threads.
    Unrolled,
    /// A plain loop with a barrier after every step (the naive form).
    Looped,
}

/// Where in-kernel reduction partials are staged (§3.3: the global-memory
/// fallback exists for kernels whose shared memory is reserved for other
/// blocking optimizations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineSpace {
    Shared,
    Global,
}

/// How gang-spanning reductions are consolidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GangStrategy {
    /// The paper's strategy: per-participant partials in a global buffer,
    /// reduced by a second kernel (§3.1.3 — blocks cannot synchronize).
    TwoKernel,
    /// Alternative: every participant issues one global atomic RMW on a
    /// single accumulator. No extra launch, but lane-serialized contention.
    /// Falls back to TwoKernel for operators without an atomic (e.g. `*`).
    Atomic,
}

/// Injectable codegen defects used by the baseline personalities to
/// reproduce the failure matrix of the paper's Table 2. `None` for the
/// real compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InjectedBugs {
    /// Omit the barrier between staging partials and tree-reducing them:
    /// warps read stale partials, producing deterministic wrong results.
    pub skip_stage_barrier: bool,
    /// Ignore the detected multi-level span and honour only the levels
    /// written on the clause (the CAPS behaviour the paper describes:
    /// "failing which incorrect result is generated").
    pub clause_levels_only: bool,
    /// Skip folding the variable's initial value into the result.
    pub skip_init_fold: bool,
    /// Omit the barrier between writing the group result and every thread
    /// reading it back (the broadcast step): threads of other warps read
    /// the slot before the tree finished folding into it.
    pub skip_bcast_barrier: bool,
    /// Pretend every tree step is warp-synchronous even when active lanes
    /// span warps (drop the `s > 32` barrier guard) — the classic "it
    /// worked on one warp" miscompilation exposed by non-multiple-of-32
    /// vector lengths.
    pub warp_tail_everywhere: bool,
    /// Omit the barrier after the broadcast read that protects the shared
    /// slab from being overwritten by the *next* combine's staging stores.
    pub skip_postread_barrier: bool,
}

/// Full option set for one compilation.
///
/// `Eq`/`Hash` make the option set usable as (part of) a cache key; for
/// keys that must stay stable *across* process runs and rustc releases use
/// [`CompilerOptions::stable_key`] / [`CompilerOptions::fingerprint`]
/// instead of `std::hash` (whose hasher is not specified to be stable).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompilerOptions {
    pub schedule: Schedule,
    pub vector_layout: VectorLayout,
    pub worker_strategy: WorkerStrategy,
    pub tree: TreeStyle,
    pub combine_space: CombineSpace,
    /// Use the auto-detected reduction span (§3.2.1). When false, the span
    /// is the clause's own levels (plus `InjectedBugs::clause_levels_only`
    /// marks this as a deliberate baseline defect rather than a feature).
    pub auto_span: bool,
    pub bugs: InjectedBugs,
    /// Reductions this compiler cannot compile at all (returns a
    /// compile-time error, the "CE" entries of Table 2): predicate on
    /// (span levels, operator). Encoded as an explicit reject list.
    pub rejects: Vec<RejectRule>,
    /// Threads of the one-block finalize kernel used for gang-spanning
    /// reductions.
    pub finalize_threads: u32,
    /// Gang-reduction consolidation strategy.
    pub gang_strategy: GangStrategy,
}

/// A rejection rule: a reduction whose detected span equals `span` (order-
/// insensitive) and whose operator matches (None = any) fails to compile.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RejectRule {
    pub span: Vec<Level>,
    pub op: Option<RedOp>,
    /// Human-readable reason used in the diagnostic.
    pub reason: &'static str,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions::openuh()
    }
}

impl CompilerOptions {
    /// The OpenUH strategy set described by the paper.
    pub fn openuh() -> Self {
        CompilerOptions {
            schedule: Schedule::WindowSliding,
            vector_layout: VectorLayout::RowWise,
            worker_strategy: WorkerStrategy::FirstRow,
            tree: TreeStyle::Unrolled,
            combine_space: CombineSpace::Shared,
            auto_span: true,
            bugs: InjectedBugs::default(),
            rejects: Vec::new(),
            finalize_threads: 256,
            gang_strategy: GangStrategy::TwoKernel,
        }
    }

    /// Canonical, human-readable serialization of every knob, suitable as
    /// a content-addressed cache key component. Two option sets render the
    /// same string iff they compile identically; the format is versioned
    /// (`v1;` prefix) so a future knob addition invalidates old keys
    /// rather than silently aliasing them.
    pub fn stable_key(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("v1;");
        let sched = match self.schedule {
            Schedule::WindowSliding => "window",
            Schedule::Blocking => "blocking",
        };
        let layout = match self.vector_layout {
            VectorLayout::RowWise => "rowwise",
            VectorLayout::Transposed => "transposed",
        };
        let worker = match self.worker_strategy {
            WorkerStrategy::FirstRow => "firstrow",
            WorkerStrategy::DuplicateRows => "duprows",
        };
        let tree = match self.tree {
            TreeStyle::Unrolled => "unrolled",
            TreeStyle::Looped => "looped",
        };
        let combine = match self.combine_space {
            CombineSpace::Shared => "shared",
            CombineSpace::Global => "global",
        };
        let gang = match self.gang_strategy {
            GangStrategy::TwoKernel => "twokernel",
            GangStrategy::Atomic => "atomic",
        };
        let b = &self.bugs;
        let bugs: String = [
            b.skip_stage_barrier,
            b.clause_levels_only,
            b.skip_init_fold,
            b.skip_bcast_barrier,
            b.warp_tail_everywhere,
            b.skip_postread_barrier,
        ]
        .iter()
        .map(|&f| if f { '1' } else { '0' })
        .collect();
        let _ = write!(
            s,
            "sched={sched};layout={layout};worker={worker};tree={tree};\
             combine={combine};auto_span={};bugs={bugs};fin={};gang={gang};rejects=[",
            self.auto_span as u8, self.finalize_threads
        );
        for (i, r) in self.rejects.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            // Span order never affects matching (see `rejected`), so
            // canonicalize it out of the key.
            let mut span = r.span.clone();
            span.sort();
            for lv in &span {
                s.push(match lv {
                    Level::Gang => 'g',
                    Level::Worker => 'w',
                    Level::Vector => 'v',
                });
            }
            s.push(':');
            match r.op {
                Some(op) => s.push_str(op.clause_token()),
                None => s.push('*'),
            }
        }
        s.push(']');
        s
    }

    /// Stable 64-bit fingerprint of the option set (FNV-1a over
    /// [`CompilerOptions::stable_key`]): deterministic across runs,
    /// processes and toolchains, unlike `std::hash`.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(FNV_OFFSET, self.stable_key().as_bytes())
    }

    /// Does any rule reject this reduction?
    pub fn rejected(&self, span: &[Level], op: RedOp) -> Option<&RejectRule> {
        self.rejects.iter().find(|r| {
            let mut a = r.span.clone();
            let mut b = span.to_vec();
            a.sort();
            b.sort();
            a == b && r.op.is_none_or(|o| o == op)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_openuh() {
        let o = CompilerOptions::default();
        assert_eq!(o.schedule, Schedule::WindowSliding);
        assert_eq!(o.vector_layout, VectorLayout::RowWise);
        assert_eq!(o.worker_strategy, WorkerStrategy::FirstRow);
        assert_eq!(o.tree, TreeStyle::Unrolled);
        assert!(o.auto_span);
        assert!(o.rejects.is_empty());
        assert!(!o.bugs.skip_stage_barrier);
    }

    #[test]
    fn reject_rules_match_span_order_insensitively() {
        let mut o = CompilerOptions::openuh();
        o.rejects.push(RejectRule {
            span: vec![Level::Gang, Level::Worker, Level::Vector],
            op: Some(RedOp::Add),
            reason: "three-level reduction not supported",
        });
        assert!(o
            .rejected(&[Level::Vector, Level::Worker, Level::Gang], RedOp::Add)
            .is_some());
        assert!(o
            .rejected(&[Level::Gang, Level::Worker], RedOp::Add)
            .is_none());
        assert!(o
            .rejected(&[Level::Gang, Level::Worker, Level::Vector], RedOp::Mul)
            .is_none());
    }

    /// The key `stable_key_is_pinned` expects for its fixed
    /// (source, options) pair; recomputed there from first principles too.
    const PINNED_KEY: u64 = 0xf191_0dbf_e8b6_1890;

    /// The cache key for a fixed (source, options) pair is pinned: any
    /// change to the canonical serialization or the FNV constants is a
    /// deliberate cache-format break, caught here.
    #[test]
    fn stable_key_is_pinned() {
        let o = CompilerOptions::openuh();
        assert_eq!(
            o.stable_key(),
            "v1;sched=window;layout=rowwise;worker=firstrow;tree=unrolled;\
             combine=shared;auto_span=1;bugs=000000;fin=256;gang=twokernel;rejects=[]"
        );
        let src = "int N; int s;\ns = 0;\n#pragma acc parallel loop gang \
                   reduction(+:s)\nfor (int i = 0; i < N; i++) { s += 1; }\n";
        let key = crate::stablehash::program_key(src, &o);
        // Recompute from first principles so the pin is the *algorithm*,
        // not a copied constant.
        let expect = crate::stablehash::fnv1a64(
            crate::stablehash::fnv1a64(crate::stablehash::FNV_OFFSET, src.as_bytes()),
            o.stable_key().as_bytes(),
        );
        assert_eq!(key, expect);
        // And the concrete value is pinned across runs/processes.
        assert_eq!(key, PINNED_KEY);
        // Different options -> different key.
        let mut o2 = o.clone();
        o2.tree = TreeStyle::Looped;
        assert_ne!(crate::stablehash::program_key(src, &o2), key);
        // Reject-rule span order is canonicalized out.
        let mut a = o.clone();
        a.rejects.push(RejectRule {
            span: vec![Level::Vector, Level::Gang],
            op: None,
            reason: "x",
        });
        let mut b = o.clone();
        b.rejects.push(RejectRule {
            span: vec![Level::Gang, Level::Vector],
            op: None,
            reason: "x",
        });
        assert_eq!(a.stable_key(), b.stable_key());
    }

    #[test]
    fn options_are_hashable_and_eq() {
        use std::collections::HashMap;
        let mut m: HashMap<CompilerOptions, u32> = HashMap::new();
        m.insert(CompilerOptions::openuh(), 1);
        assert_eq!(m.get(&CompilerOptions::openuh()), Some(&1));
        let mut o = CompilerOptions::openuh();
        o.finalize_threads = 128;
        assert!(!m.contains_key(&o));
    }
}
