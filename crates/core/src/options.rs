//! Compiler strategy options.
//!
//! Every design choice the paper discusses (and every alternative it
//! compares against) is a knob here, so the OpenUH strategy, the two
//! commercial-compiler personalities, and the ablation benches all drive
//! the *same* codegen with different options.

use accparse::ast::{Level, RedOp};

/// How a parallel loop's iterations are distributed over its threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The paper's window-sliding (grid-stride / round-robin) schedule
    /// (Fig. 3). Consecutive threads touch consecutive iterations, so
    /// vector loops coalesce.
    WindowSliding,
    /// Blocking: each thread takes one contiguous chunk. Same work, but
    /// vector loops stop coalescing — the §3.1.3 ablation.
    Blocking,
}

/// Shared-memory layout for the vector reduction (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorLayout {
    /// Fig. 6(c), OpenUH: threads and data keep the global-memory layout;
    /// each worker's row is contiguous in shared memory (conflict-prone
    /// only at the tail, fixed by unrolling).
    RowWise,
    /// Fig. 6(b): data and threads transposed in shared memory; reduction
    /// runs down columns, so lanes hit strided addresses (bank conflicts,
    /// memory divergence).
    Transposed,
}

/// Strategy for the worker reduction (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStrategy {
    /// Fig. 8(c), OpenUH: lane 0 of each worker stores the partial into the
    /// first row; the first row's vector threads tree-reduce it. Uses
    /// `workers` elements of shared memory and (mostly) warp-synchronous
    /// steps.
    FirstRow,
    /// Fig. 8(b): every vector lane stores its worker's partial, producing
    /// `vector x workers` duplicated values; every row reduces in parallel
    /// with a barrier per step. More shared memory, more synchronization.
    DuplicateRows,
}

/// How the in-kernel tree reduction is emitted (paper Fig. 7 and §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeStyle {
    /// Fully unrolled interleaved log-step reduction with warp-synchronous
    /// tail (no `__syncthreads()` once the active lanes fit in one warp) —
    /// OpenUH unrolls all iterations since blocks are at most 1024 threads.
    Unrolled,
    /// A plain loop with a barrier after every step (the naive form).
    Looped,
}

/// Where in-kernel reduction partials are staged (§3.3: the global-memory
/// fallback exists for kernels whose shared memory is reserved for other
/// blocking optimizations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineSpace {
    Shared,
    Global,
}

/// How gang-spanning reductions are consolidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GangStrategy {
    /// The paper's strategy: per-participant partials in a global buffer,
    /// reduced by a second kernel (§3.1.3 — blocks cannot synchronize).
    TwoKernel,
    /// Alternative: every participant issues one global atomic RMW on a
    /// single accumulator. No extra launch, but lane-serialized contention.
    /// Falls back to TwoKernel for operators without an atomic (e.g. `*`).
    Atomic,
}

/// Injectable codegen defects used by the baseline personalities to
/// reproduce the failure matrix of the paper's Table 2. `None` for the
/// real compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectedBugs {
    /// Omit the barrier between staging partials and tree-reducing them:
    /// warps read stale partials, producing deterministic wrong results.
    pub skip_stage_barrier: bool,
    /// Ignore the detected multi-level span and honour only the levels
    /// written on the clause (the CAPS behaviour the paper describes:
    /// "failing which incorrect result is generated").
    pub clause_levels_only: bool,
    /// Skip folding the variable's initial value into the result.
    pub skip_init_fold: bool,
    /// Omit the barrier between writing the group result and every thread
    /// reading it back (the broadcast step): threads of other warps read
    /// the slot before the tree finished folding into it.
    pub skip_bcast_barrier: bool,
    /// Pretend every tree step is warp-synchronous even when active lanes
    /// span warps (drop the `s > 32` barrier guard) — the classic "it
    /// worked on one warp" miscompilation exposed by non-multiple-of-32
    /// vector lengths.
    pub warp_tail_everywhere: bool,
    /// Omit the barrier after the broadcast read that protects the shared
    /// slab from being overwritten by the *next* combine's staging stores.
    pub skip_postread_barrier: bool,
}

/// Full option set for one compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    pub schedule: Schedule,
    pub vector_layout: VectorLayout,
    pub worker_strategy: WorkerStrategy,
    pub tree: TreeStyle,
    pub combine_space: CombineSpace,
    /// Use the auto-detected reduction span (§3.2.1). When false, the span
    /// is the clause's own levels (plus `InjectedBugs::clause_levels_only`
    /// marks this as a deliberate baseline defect rather than a feature).
    pub auto_span: bool,
    pub bugs: InjectedBugs,
    /// Reductions this compiler cannot compile at all (returns a
    /// compile-time error, the "CE" entries of Table 2): predicate on
    /// (span levels, operator). Encoded as an explicit reject list.
    pub rejects: Vec<RejectRule>,
    /// Threads of the one-block finalize kernel used for gang-spanning
    /// reductions.
    pub finalize_threads: u32,
    /// Gang-reduction consolidation strategy.
    pub gang_strategy: GangStrategy,
}

/// A rejection rule: a reduction whose detected span equals `span` (order-
/// insensitive) and whose operator matches (None = any) fails to compile.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectRule {
    pub span: Vec<Level>,
    pub op: Option<RedOp>,
    /// Human-readable reason used in the diagnostic.
    pub reason: &'static str,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions::openuh()
    }
}

impl CompilerOptions {
    /// The OpenUH strategy set described by the paper.
    pub fn openuh() -> Self {
        CompilerOptions {
            schedule: Schedule::WindowSliding,
            vector_layout: VectorLayout::RowWise,
            worker_strategy: WorkerStrategy::FirstRow,
            tree: TreeStyle::Unrolled,
            combine_space: CombineSpace::Shared,
            auto_span: true,
            bugs: InjectedBugs::default(),
            rejects: Vec::new(),
            finalize_threads: 256,
            gang_strategy: GangStrategy::TwoKernel,
        }
    }

    /// Does any rule reject this reduction?
    pub fn rejected(&self, span: &[Level], op: RedOp) -> Option<&RejectRule> {
        self.rejects.iter().find(|r| {
            let mut a = r.span.clone();
            let mut b = span.to_vec();
            a.sort();
            b.sort();
            a == b && r.op.is_none_or(|o| o == op)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_openuh() {
        let o = CompilerOptions::default();
        assert_eq!(o.schedule, Schedule::WindowSliding);
        assert_eq!(o.vector_layout, VectorLayout::RowWise);
        assert_eq!(o.worker_strategy, WorkerStrategy::FirstRow);
        assert_eq!(o.tree, TreeStyle::Unrolled);
        assert!(o.auto_span);
        assert!(o.rejects.is_empty());
        assert!(!o.bugs.skip_stage_barrier);
    }

    #[test]
    fn reject_rules_match_span_order_insensitively() {
        let mut o = CompilerOptions::openuh();
        o.rejects.push(RejectRule {
            span: vec![Level::Gang, Level::Worker, Level::Vector],
            op: Some(RedOp::Add),
            reason: "three-level reduction not supported",
        });
        assert!(o
            .rejected(&[Level::Vector, Level::Worker, Level::Gang], RedOp::Add)
            .is_some());
        assert!(o
            .rejected(&[Level::Gang, Level::Worker], RedOp::Add)
            .is_none());
        assert!(o
            .rejected(&[Level::Gang, Level::Worker, Level::Vector], RedOp::Mul)
            .is_none());
    }
}
