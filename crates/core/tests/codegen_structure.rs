//! Structural tests on the generated kernels: the emitted IR must match
//! the shapes the paper describes (Fig. 3 index mapping, Fig. 5 combine
//! structure, §3.3 barrier elision and shared-memory sizing).

use accparse::compile as front;
use gpsim::Inst;
use uhacc_core::{
    compile_region, CombineSpace, CompilerOptions, LaunchDims, TreeStyle, VectorLayout,
    WorkerStrategy,
};

const TRIPLE: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int out[NK][NJ];
    #pragma acc parallel copyin(input) copyout(out)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                int s = 0;
                #pragma acc loop vector reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    s += input[k][j][i];
                }
                out[k][j] = s;
            }
        }
    }
"#;

const GANG_RED: &str = r#"
    int N; int s;
    int a[N];
    s = 0;
    #pragma acc parallel copyin(a)
    {
        #pragma acc loop gang reduction(+:s)
        for (int k = 0; k < N; k++) {
            s += a[k];
        }
    }
"#;

fn bars(k: &gpsim::Kernel) -> usize {
    k.insts.iter().filter(|i| matches!(i, Inst::Bar)).count()
}

#[test]
fn fig3_window_mapping_uses_all_three_dims() {
    let prog = front(TRIPLE).unwrap();
    let dims = LaunchDims {
        gangs: 8,
        workers: 4,
        vector: 64,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    let d = c.main.disasm();
    // The Fig. 3 mapping reads all three hardware indices.
    assert!(d.contains("%ctaid.x"), "gang -> blockIdx.x:\n{d}");
    assert!(d.contains("%tid.y"), "worker -> threadIdx.y:\n{d}");
    assert!(d.contains("%tid.x"), "vector -> threadIdx.x:\n{d}");
    // Window-sliding strides appear as the grid/block extents.
    assert!(
        d.contains("add.s32") && d.contains(", 64"),
        "vector stride 64 (window sliding):\n{d}"
    );
}

#[test]
fn warp_sync_tail_elides_barriers() {
    let prog = front(TRIPLE).unwrap();
    // vector=128 (warp-aligned): stage bar + one bar after the s=64 step +
    // broadcast bar + post-read bar = 4.
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 128,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert_eq!(bars(&c.main), 4, "{}", c.main.disasm());
    // vector=32, one worker row per warp: no barriers at all (§3.1.2's
    // "we do not need synchronization" observation).
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 32,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert_eq!(bars(&c.main), 0, "{}", c.main.disasm());
    // vector=48 (rows straddle warps): barrier after every one of the
    // log2(32)=5 steps plus pre-step, stage, broadcast, post-read.
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 48,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert!(bars(&c.main) > 6, "{}", c.main.disasm());
}

#[test]
fn looped_tree_has_barrier_inside_loop() {
    let prog = front(TRIPLE).unwrap();
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 128,
    };
    let opts = CompilerOptions {
        tree: TreeStyle::Looped,
        ..CompilerOptions::openuh()
    };
    let c = compile_region(&prog, 0, dims, &opts).unwrap();
    // The looped tree emits far fewer static instructions but loops over a
    // barrier; the unrolled version has more static tree steps.
    let unrolled = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert!(
        c.main.insts.len() < unrolled.main.insts.len(),
        "looped {} vs unrolled {}",
        c.main.insts.len(),
        unrolled.main.insts.len()
    );
}

#[test]
fn shared_memory_sizing_matches_strategy() {
    let worker_red = r#"
        int NK; int NJ;
        int a[NK][NJ];
        int out[NK];
        #pragma acc parallel copyin(a) copyout(out)
        {
            #pragma acc loop gang
            for (int k = 0; k < NK; k++) {
                int s = 0;
                #pragma acc loop worker reduction(+:s)
                for (int j = 0; j < NJ; j++) {
                    s += a[k][j];
                }
                out[k] = s;
            }
        }
    "#;
    let prog = front(worker_red).unwrap();
    let dims = LaunchDims {
        gangs: 2,
        workers: 8,
        vector: 64,
    };
    // Fig. 8c first-row: `workers` elements.
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert_eq!(c.main.shared_bytes, 8 * 4, "{}", c.main.shared_bytes);
    // Fig. 8b duplicate rows: one element per thread ("consumes a lot of
    // shared memory").
    let opts = CompilerOptions {
        worker_strategy: WorkerStrategy::DuplicateRows,
        ..CompilerOptions::openuh()
    };
    let c = compile_region(&prog, 0, dims, &opts).unwrap();
    assert_eq!(c.main.shared_bytes, 8 * 64 * 4);
    // Global staging: no shared memory at all.
    let opts = CompilerOptions {
        combine_space: CombineSpace::Global,
        ..CompilerOptions::openuh()
    };
    let c = compile_region(&prog, 0, dims, &opts).unwrap();
    assert_eq!(c.main.shared_bytes, 0);
}

#[test]
fn mixed_type_reductions_share_the_widest_slab() {
    // §3.3: an int and a double reduction on the same loop share one slab
    // sized for the double.
    let src = r#"
        int NK; int NJ;
        int a[NK][NJ];
        #pragma acc parallel copyin(a)
        {
            #pragma acc loop gang
            for (int k = 0; k < NK; k++) {
                int si = 0;
                double sd = 0.0;
                #pragma acc loop worker vector reduction(+:si) reduction(+:sd)
                for (int j = 0; j < NJ; j++) {
                    si += a[k][j];
                    sd += a[k][j] * 0.5;
                }
                a[k][0] = si + (int)sd;
            }
        }
    "#;
    let prog = front(src).unwrap();
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 32,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    // One slab of tpb * sizeof(double); NOT tpb * (4 + 8).
    assert_eq!(c.main.shared_bytes, 128 * 8);
}

#[test]
fn gang_reduction_creates_buffer_and_finalize_kernel() {
    let prog = front(GANG_RED).unwrap();
    let dims = LaunchDims {
        gangs: 24,
        workers: 1,
        vector: 1,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert_eq!(c.buffers.len(), 1);
    assert_eq!(c.buffers[0].elems, 24, "one partial per gang");
    assert_eq!(c.finalize.len(), 1, "the paper's second kernel");
    assert_eq!(c.results.len(), 1);
    assert!(c.results[0].fold, "initial value folded on the host");
    // The finalize kernel is a single-block tree reduction.
    let d = c.finalize[0].kernel.disasm();
    assert!(d.contains("acc_reduce_final"));
    assert!(d.contains("ld.global"));
}

#[test]
fn no_finalize_kernel_for_non_gang_spans() {
    let prog = front(TRIPLE).unwrap();
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 64,
    };
    let c = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert!(c.finalize.is_empty());
    assert!(c.buffers.is_empty());
    assert!(c.results.is_empty());
}

#[test]
fn params_are_deterministic_and_complete() {
    let prog = front(TRIPLE).unwrap();
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 64,
    };
    let a = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    let b = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert_eq!(a.params, b.params);
    assert_eq!(a.main.num_params as usize, a.params.len());
    // input (base + 3 dims) + out (base + 2 dims) + 3 host scalars = 10.
    assert_eq!(a.params.len(), 10, "{:?}", a.params);
}

#[test]
fn transposed_layout_changes_staging_indexing() {
    let prog = front(TRIPLE).unwrap();
    let dims = LaunchDims {
        gangs: 2,
        workers: 4,
        vector: 64,
    };
    let row = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    let opts = CompilerOptions {
        vector_layout: VectorLayout::Transposed,
        ..CompilerOptions::openuh()
    };
    let tr = compile_region(&prog, 0, dims, &opts).unwrap();
    // Same shared size, different code.
    assert_eq!(row.main.shared_bytes, tr.main.shared_bytes);
    assert_ne!(row.main.insts, tr.main.insts);
}

#[test]
fn compile_is_deterministic() {
    let prog = front(GANG_RED).unwrap();
    let dims = LaunchDims::paper();
    let a = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    let b = compile_region(&prog, 0, dims, &CompilerOptions::openuh()).unwrap();
    assert_eq!(a.main.insts, b.main.insts);
    assert_eq!(a.main.disasm(), b.main.disasm());
}

#[test]
fn rejects_zero_dims() {
    let prog = front(GANG_RED).unwrap();
    let dims = LaunchDims {
        gangs: 0,
        workers: 1,
        vector: 1,
    };
    assert!(compile_region(&prog, 0, dims, &CompilerOptions::openuh()).is_err());
}
