//! Golden-disasm tests: one kernel per reduction strategy of the paper's
//! figures, pinned instruction-for-instruction. A codegen change that
//! moves an instruction shows up as a reviewable golden diff instead of a
//! silent behavioural shift, and every golden is additionally required to
//! round-trip through [`gpsim::parse_kernel`] — `parse(disasm(k)) == k` —
//! so the printed form stays a complete, loss-free encoding of the IR.
//!
//! Regenerate after an intentional codegen change with:
//!
//! ```console
//! UPDATE_GOLDEN=1 cargo test -p uhacc-core --test golden_disasm
//! ```

use accparse::compile as front;
use uhacc_core::{compile_region, CompilerOptions, LaunchDims, VectorLayout, WorkerStrategy};

/// Vector-position reduction (the paper's Fig. 6 setting).
const VECTOR_SRC: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int out[NK][NJ];
    #pragma acc parallel copyin(input) copyout(out)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            #pragma acc loop worker
            for (int j = 0; j < NJ; j++) {
                int s = 0;
                #pragma acc loop vector reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    s += input[k][j][i];
                }
                out[k][j] = s;
            }
        }
    }
"#;

/// Worker-position reduction (the paper's Fig. 8 setting).
const WORKER_SRC: &str = r#"
    int NK; int NJ; int NI;
    int input[NK][NJ][NI];
    int temp[NK][NJ][NI];
    int out[NK];
    #pragma acc parallel copyin(input) create(temp) copyout(out)
    {
        #pragma acc loop gang
        for (int k = 0; k < NK; k++) {
            int s = 0;
            #pragma acc loop worker reduction(+:s)
            for (int j = 0; j < NJ; j++) {
                #pragma acc loop vector
                for (int i = 0; i < NI; i++) {
                    temp[k][j][i] = input[k][j][i];
                }
                s += temp[k][j][0];
            }
            out[k] = s;
        }
    }
"#;

fn check(name: &str, src: &str, opts: &CompilerOptions, golden: &str) {
    let dims = LaunchDims {
        gangs: 8,
        workers: 4,
        vector: 64,
    };
    let prog = front(src).unwrap();
    let c = compile_region(&prog, 0, dims, opts).unwrap();
    let text = c.main.disasm();

    // The printed form must be a loss-free encoding of the kernel.
    let parsed = gpsim::parse_kernel(&text).expect("golden disasm parses back");
    assert_eq!(parsed, *c.main, "{name}: disasm round-trip drift");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}.disasm", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &text).expect("write golden");
        return;
    }
    assert_eq!(
        text, golden,
        "{name}: kernel drifted from tests/golden/{name}.disasm \
         (UPDATE_GOLDEN=1 to regenerate after an intentional change)"
    );
}

#[test]
fn fig6b_vector_row_wise() {
    check(
        "fig6b_vector_row_wise",
        VECTOR_SRC,
        &CompilerOptions::openuh(),
        include_str!("golden/fig6b_vector_row_wise.disasm"),
    );
}

#[test]
fn fig6c_vector_transposed() {
    let mut opts = CompilerOptions::openuh();
    opts.vector_layout = VectorLayout::Transposed;
    check(
        "fig6c_vector_transposed",
        VECTOR_SRC,
        &opts,
        include_str!("golden/fig6c_vector_transposed.disasm"),
    );
}

#[test]
fn fig8b_worker_first_row() {
    check(
        "fig8b_worker_first_row",
        WORKER_SRC,
        &CompilerOptions::openuh(),
        include_str!("golden/fig8b_worker_first_row.disasm"),
    );
}

#[test]
fn fig8c_worker_duplicate_rows() {
    let mut opts = CompilerOptions::openuh();
    opts.worker_strategy = WorkerStrategy::DuplicateRows;
    check(
        "fig8c_worker_duplicate_rows",
        WORKER_SRC,
        &opts,
        include_str!("golden/fig8c_worker_duplicate_rows.disasm"),
    );
}
