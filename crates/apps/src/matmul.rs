//! Matrix multiplication with a parallelized inner-product loop (paper §4,
//! Fig. 12b / Fig. 13b).
//!
//! "Most developers usually only parallelize the outer two loops and let
//! the third loop execute sequentially ... However we can also parallelize
//! the third loop because essentially it just includes the sum reduction
//! operations." The k loop is distributed over vector threads with
//! `reduction(+:c)` — the paper's Fig. 13b shape: gang on i, worker on j,
//! vector on k.

use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::Device;
use uhacc_core::{CompilerOptions, LaunchDims};

/// Fig. 13b, verbatim shape.
pub(crate) const MATMUL_SRC: &str = r#"
int n;
double A[n][n];
double B[n][n];
double C[n][n];
#pragma acc parallel copyin(A) copyin(B) copyout(C)
{
    #pragma acc loop gang
    for (int i = 0; i < n; i++) {
        #pragma acc loop worker
        for (int j = 0; j < n; j++) {
            double c = 0.0;
            #pragma acc loop vector reduction(+:c)
            for (int k = 0; k < n; k++) {
                c += A[i][k] * B[k][j];
            }
            C[i][j] = c;
        }
    }
}
"#;

/// The naive variant the paper contrasts against: the k loop stays
/// sequential (`loop seq`), only i/j are parallel.
pub(crate) const MATMUL_SEQ_K_SRC: &str = r#"
int n;
double A[n][n];
double B[n][n];
double C[n][n];
#pragma acc parallel copyin(A) copyin(B) copyout(C)
{
    #pragma acc loop gang
    for (int i = 0; i < n; i++) {
        #pragma acc loop worker vector
        for (int j = 0; j < n; j++) {
            double c = 0.0;
            #pragma acc loop seq reduction(+:c)
            for (int k = 0; k < n; k++) {
                c += A[i][k] * B[k][j];
            }
            C[i][j] = c;
        }
    }
}
"#;

/// Result of one matmul run.
#[derive(Debug, Clone)]
pub struct MatmulResult {
    /// Modelled kernel milliseconds.
    pub kernel_ms: f64,
    /// The product matrix, row-major.
    pub c: Vec<f64>,
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatmulConfig {
    /// Matrix edge (paper sweeps sizes; scaled default).
    pub n: usize,
    pub dims: LaunchDims,
    /// Use the vector-parallel reduction k loop (Fig. 13b) or the naive
    /// sequential-k variant.
    pub parallel_k: bool,
}

impl Default for MatmulConfig {
    fn default() -> Self {
        MatmulConfig {
            n: 64,
            dims: LaunchDims {
                gangs: 64,
                workers: 4,
                vector: 64,
            },
            parallel_k: true,
        }
    }
}

/// Deterministic test matrices.
pub fn test_matrices(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n * n).map(|x| ((x % 7) as f64 - 3.0) * 0.5).collect();
    let b: Vec<f64> = (0..n * n).map(|x| ((x % 5) as f64 - 2.0) * 0.25).collect();
    (a, b)
}

/// CPU reference product.
pub fn cpu_matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Run the matmul on the simulated device.
pub fn run_matmul(cfg: &MatmulConfig, opts: CompilerOptions) -> Result<MatmulResult, AccError> {
    let n = cfg.n;
    let src = if cfg.parallel_k {
        MATMUL_SRC
    } else {
        MATMUL_SEQ_K_SRC
    };
    let mut r = AccRunner::with_options(src, opts, cfg.dims, Device::default())?;
    r.bind_int("n", n as i64)?;
    let (a, b) = test_matrices(n);
    r.bind_array("A", HostBuffer::from_f64(&a))?;
    r.bind_array("B", HostBuffer::from_f64(&b))?;
    r.bind_array("C", HostBuffer::new(accparse::CType::Double, n * n))?;
    r.run()?;
    let st = r.device().stats();
    let kernel_ms = r
        .device()
        .cost_model()
        .cycles_to_ms(st.kernel_cycles, r.device().config().clock_hz);
    Ok(MatmulResult {
        kernel_ms,
        c: r.array("C")?.to_f64_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_cpu() {
        let cfg = MatmulConfig {
            n: 24,
            ..Default::default()
        };
        let res = run_matmul(&cfg, CompilerOptions::openuh()).unwrap();
        let (a, b) = test_matrices(cfg.n);
        let want = cpu_matmul(&a, &b, cfg.n);
        for (g, w) in res.c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn seq_k_variant_matches_cpu() {
        let cfg = MatmulConfig {
            n: 20,
            parallel_k: false,
            ..Default::default()
        };
        let res = run_matmul(&cfg, CompilerOptions::openuh()).unwrap();
        let (a, b) = test_matrices(cfg.n);
        let want = cpu_matmul(&a, &b, cfg.n);
        for (g, w) in res.c.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn kernel_time_positive_and_size_monotone() {
        let small = run_matmul(
            &MatmulConfig {
                n: 16,
                ..Default::default()
            },
            CompilerOptions::openuh(),
        )
        .unwrap();
        let big = run_matmul(
            &MatmulConfig {
                n: 48,
                ..Default::default()
            },
            CompilerOptions::openuh(),
        )
        .unwrap();
        assert!(small.kernel_ms > 0.0);
        assert!(big.kernel_ms > small.kernel_ms);
    }
}
