//! # acc-apps — the paper's three real-world applications
//!
//! §4 of the paper evaluates the reduction implementation on three
//! applications beyond the synthetic testsuite:
//!
//! - [`heat2d`] — 2D heat equation: Jacobi relaxation with a
//!   `reduction(max:error)` convergence test every iteration (Fig. 12a).
//! - [`matmul`] — matrix multiplication with the inner-product k loop
//!   parallelized as a vector `+` reduction (Fig. 12b).
//! - [`pi`] — Monte Carlo PI with a gang+vector `+` reduction over
//!   host-pregenerated sample points (Fig. 12c).
//!
//! Every app verifies its device result against a plain CPU computation.

pub mod heat2d;
pub mod matmul;
pub mod pi;

pub use heat2d::{run_heat, HeatConfig, HeatResult};
pub use matmul::{run_matmul, MatmulConfig, MatmulResult};
pub use pi::{run_pi, PiConfig, PiResult};

/// Every application's directive source, for tooling that sweeps over
/// real codes (the lint testsuite asserts all of them are finding-free).
pub fn all_sources() -> Vec<(&'static str, &'static str)> {
    vec![
        ("heat2d", heat2d::HEAT_SRC),
        ("matmul", matmul::MATMUL_SRC),
        ("matmul-seq-k", matmul::MATMUL_SEQ_K_SRC),
        ("pi", pi::PI_SRC),
    ]
}
