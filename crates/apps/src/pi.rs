//! Monte Carlo PI (paper §4, Fig. 12c / Fig. 13c).
//!
//! Random points in the square [-1,1]² are tested against the unit circle;
//! `pi ≈ 4 m / n`. The point coordinates are pre-generated on the host
//! (the paper: "since at the time of writing most compilers do not support
//! function call inside an OpenACC kernel region, we pre-generate the x
//! and y values on the host and then transfer them to the device") and the
//! hit count `m` is a `+` reduction distributed over gang and vector
//! threads of one loop.

use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uhacc_core::{CompilerOptions, LaunchDims};

/// Fig. 13c shape: one loop, gang+vector, `+` reduction on the hit count.
pub(crate) const PI_SRC: &str = r#"
int n;
int m;
double x[n]; double y[n];
m = 0;
#pragma acc parallel loop gang vector reduction(+:m) copyin(x, y)
for (int i = 0; i < n; i++) {
    if (x[i]*x[i] + y[i]*y[i] < 1.0) {
        m += 1;
    }
}
"#;

/// Result of one PI estimation.
#[derive(Debug, Clone, Copy)]
pub struct PiResult {
    /// Points inside the circle.
    pub hits: u64,
    /// Total points sampled.
    pub samples: u64,
    /// The estimate `4 m / n`.
    pub pi: f64,
    /// Modelled kernel milliseconds (reduction only, excluding PCIe).
    pub kernel_ms: f64,
    /// Modelled total milliseconds including the point upload.
    pub total_ms: f64,
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct PiConfig {
    /// Point count (the paper sampled 1/2/4 GB of points; scaled default).
    pub samples: usize,
    pub seed: u64,
    pub dims: LaunchDims,
}

impl Default for PiConfig {
    fn default() -> Self {
        PiConfig {
            samples: 1 << 18,
            seed: 42,
            dims: LaunchDims {
                gangs: 192,
                workers: 1,
                vector: 128,
            },
        }
    }
}

/// Host-side generation of the sample points (the paper's methodology).
pub fn generate_points(cfg: &PiConfig) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let xs: Vec<f64> = (0..cfg.samples).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ys: Vec<f64> = (0..cfg.samples).map(|_| rng.gen_range(-1.0..1.0)).collect();
    (xs, ys)
}

/// CPU reference hit count.
pub fn cpu_hits(xs: &[f64], ys: &[f64]) -> u64 {
    xs.iter()
        .zip(ys)
        .filter(|(x, y)| **x * **x + **y * **y < 1.0)
        .count() as u64
}

/// Run the estimation on the simulated device.
pub fn run_pi(cfg: &PiConfig, opts: CompilerOptions) -> Result<PiResult, AccError> {
    let (xs, ys) = generate_points(cfg);
    let mut r = AccRunner::with_options(PI_SRC, opts, cfg.dims, Device::default())?;
    r.bind_int("n", cfg.samples as i64)?;
    r.bind_array("x", HostBuffer::from_f64(&xs))?;
    r.bind_array("y", HostBuffer::from_f64(&ys))?;
    r.run()?;
    let hits = r.scalar("m")?.as_i64() as u64;
    let st = r.device().stats();
    let kernel_ms = r
        .device()
        .cost_model()
        .cycles_to_ms(st.kernel_cycles, r.device().config().clock_hz);
    Ok(PiResult {
        hits,
        samples: cfg.samples as u64,
        pi: 4.0 * hits as f64 / cfg.samples as f64,
        kernel_ms,
        total_ms: r.elapsed_ms(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_matches_cpu_hit_count_exactly() {
        let cfg = PiConfig {
            samples: 50_000,
            ..Default::default()
        };
        let res = run_pi(&cfg, CompilerOptions::openuh()).unwrap();
        let (xs, ys) = generate_points(&cfg);
        assert_eq!(res.hits, cpu_hits(&xs, &ys));
    }

    #[test]
    fn pi_estimate_is_reasonable() {
        let cfg = PiConfig {
            samples: 200_000,
            ..Default::default()
        };
        let res = run_pi(&cfg, CompilerOptions::openuh()).unwrap();
        assert!(
            (res.pi - std::f64::consts::PI).abs() < 0.02,
            "pi = {}",
            res.pi
        );
        assert!(res.kernel_ms > 0.0);
        assert!(res.total_ms > res.kernel_ms, "transfers must be accounted");
    }

    #[test]
    fn accuracy_improves_with_samples() {
        let small = run_pi(
            &PiConfig {
                samples: 1 << 10,
                ..Default::default()
            },
            CompilerOptions::openuh(),
        )
        .unwrap();
        let big = run_pi(
            &PiConfig {
                samples: 1 << 18,
                ..Default::default()
            },
            CompilerOptions::openuh(),
        )
        .unwrap();
        let err_small = (small.pi - std::f64::consts::PI).abs();
        let err_big = (big.pi - std::f64::consts::PI).abs();
        assert!(err_big < err_small, "{err_big} vs {err_small}");
    }
}
