//! 2D heat equation with max-reduction convergence test (paper §4,
//! Fig. 12a / Fig. 13a).
//!
//! A grid with fixed boundary temperatures is relaxed by Jacobi iteration;
//! each step also computes `error = max |temp1 - temp2|` with a
//! `reduction(max:...)` clause. Iteration stops when the error drops below
//! a threshold (the paper iterates until the difference "gradually
//! decreases from a large value until 0").

use accrt::{AccError, AccRunner, HostBuffer};
use gpsim::Device;
use uhacc_core::{CompilerOptions, LaunchDims};

/// The update + convergence program: region 0 relaxes `temp2` from
/// `temp1`, region 1 computes the max difference.
pub(crate) const HEAT_SRC: &str = r#"
int ni; int nj;
double error;
double temp1[nj][ni];
double temp2[nj][ni];
#pragma acc parallel copy(temp1) copy(temp2)
{
    #pragma acc loop gang
    for (int j = 1; j < nj - 1; j++) {
        #pragma acc loop vector
        for (int i = 1; i < ni - 1; i++) {
            temp2[j][i] = 0.25 * (temp1[j][i+1] + temp1[j][i-1]
                                + temp1[j+1][i] + temp1[j-1][i]);
        }
    }
}
#pragma acc parallel copyin(temp1) copyin(temp2)
{
    #pragma acc loop gang reduction(max:error)
    for (int j = 1; j < nj - 1; j++) {
        #pragma acc loop vector
        for (int i = 1; i < ni - 1; i++) {
            error = fmax(error, fabs(temp1[j][i] - temp2[j][i]));
        }
    }
}
"#;

/// Result of a heat-equation run.
#[derive(Debug, Clone)]
pub struct HeatResult {
    /// Iterations executed.
    pub iterations: usize,
    /// Final max |delta| between the last two iterates.
    pub final_error: f64,
    /// Modelled device milliseconds spent in the max-reduction kernel
    /// passes (the paper's Fig. 12a measures the reduction, not the
    /// stencil: "in this paper we only focus on the maximum reduction").
    pub reduction_ms: f64,
    /// Modelled device milliseconds total (stencil + reduction + copies).
    pub total_ms: f64,
    /// The final grid.
    pub grid: Vec<f64>,
}

/// Configuration for the heat solver.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Grid edge length (paper sweeps 128..512).
    pub n: usize,
    /// Convergence threshold.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    pub dims: LaunchDims,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            n: 128,
            tol: 1e-4,
            max_iters: 500,
            dims: LaunchDims {
                gangs: 64,
                workers: 1,
                vector: 128,
            },
        }
    }
}

/// CPU reference: one Jacobi step + max-diff, for verification.
pub fn cpu_step(t1: &[f64], t2: &mut [f64], n: usize) -> f64 {
    let mut err = 0.0f64;
    for j in 1..n - 1 {
        for i in 1..n - 1 {
            let v = 0.25
                * (t1[j * n + i + 1]
                    + t1[j * n + i - 1]
                    + t1[(j + 1) * n + i]
                    + t1[(j - 1) * n + i]);
            err = err.max((t1[j * n + i] - v).abs());
            t2[j * n + i] = v;
        }
    }
    err
}

/// Build the initial grid: hot top edge, cold elsewhere.
pub fn initial_grid(n: usize) -> Vec<f64> {
    let mut g = vec![0.0f64; n * n];
    g[..n].fill(100.0);
    g
}

/// Run the heat equation on the simulated device with the given compiler
/// options, iterating until convergence (or the cap).
pub fn run_heat(cfg: &HeatConfig, opts: CompilerOptions) -> Result<HeatResult, AccError> {
    let n = cfg.n;
    // Build the runner once; iterate by re-running the two regions with
    // the double-buffer arrays swapped between steps.
    let mut r = AccRunner::with_options(HEAT_SRC, opts, cfg.dims, Device::default())?;
    r.bind_int("ni", n as i64)?;
    r.bind_int("nj", n as i64)?;
    let grid = initial_grid(n);
    r.bind_array("temp1", HostBuffer::from_f64(&grid))?;
    r.bind_array("temp2", HostBuffer::from_f64(&grid))?;
    // Keep both buffers device-resident across the iteration loop (the
    // OpenACC 2.0 data-lifetime control the paper's §2.1 anticipates);
    // only the scalar `error` crosses PCIe per iteration.
    r.enter_data("temp1")?;
    r.enter_data("temp2")?;

    let mut iterations = 0;
    let mut final_error = f64::INFINITY;
    let mut reduction_cycles: u64 = 0;
    for _ in 0..cfg.max_iters {
        // Stencil update.
        r.run_region(0)?;
        // Convergence check: reset `error`, then max-reduce |t1 - t2|.
        r.bind_float("error", 0.0)?;
        let before = r.device().stats().kernel_cycles;
        r.run_region(1)?;
        reduction_cycles += r.device().stats().kernel_cycles - before;
        final_error = r.scalar("error")?.as_f64();
        iterations += 1;
        // Swap for the next iteration.
        r.swap_arrays("temp1", "temp2")?;
        if final_error < cfg.tol {
            break;
        }
    }
    r.exit_data("temp1")?;
    r.exit_data("temp2")?;
    let cost = r.device().cost_model();
    let clock = r.device().config().clock_hz;
    let reduction_ms = cost.cycles_to_ms(reduction_cycles, clock);
    let total_ms = r.elapsed_ms();
    let grid = r.array("temp1")?.to_f64_vec();
    Ok(HeatResult {
        iterations,
        final_error,
        reduction_ms,
        total_ms,
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heat_converges_and_matches_cpu() {
        let cfg = HeatConfig {
            n: 16,
            tol: 1e-3,
            max_iters: 1000,
            ..Default::default()
        };
        let res = run_heat(&cfg, CompilerOptions::openuh()).unwrap();
        assert!(res.iterations > 1);
        assert!(res.final_error < 1e-3, "error {}", res.final_error);
        // CPU reference for the same number of iterations.
        let n = cfg.n;
        let mut t1 = initial_grid(n);
        let mut t2 = t1.clone();
        for _ in 0..res.iterations {
            cpu_step(&t1, &mut t2, n);
            std::mem::swap(&mut t1, &mut t2);
        }
        for (g, c) in res.grid.iter().zip(&t1) {
            assert!((g - c).abs() < 1e-9, "grid mismatch: {g} vs {c}");
        }
        assert!(res.reduction_ms > 0.0);
        assert!(res.total_ms >= res.reduction_ms);
    }

    #[test]
    fn error_decreases_monotonically_early() {
        // The max-difference must shrink as the solution relaxes.
        let cfg = HeatConfig {
            n: 24,
            tol: 0.0,
            max_iters: 10,
            ..Default::default()
        };
        let r1 = run_heat(
            &HeatConfig {
                max_iters: 2,
                ..cfg
            },
            CompilerOptions::openuh(),
        )
        .unwrap();
        let r2 = run_heat(
            &HeatConfig {
                max_iters: 10,
                ..cfg
            },
            CompilerOptions::openuh(),
        )
        .unwrap();
        assert!(r2.final_error < r1.final_error);
    }
}
