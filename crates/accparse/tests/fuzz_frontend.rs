//! Robustness properties of the front end: the lexer, parser and semantic
//! analyzer must never panic — every malformed input becomes a `Diag`.

use accparse::{compile, parser, token};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// The lexer returns Ok or Err on arbitrary bytes, never panics.
    #[test]
    fn lexer_total(src in "\\PC*") {
        let _ = token::lex(&src);
    }

    /// The parser is total on arbitrary strings.
    #[test]
    fn parser_total(src in "\\PC*") {
        let _ = parser::parse_program(&src);
    }

    /// The whole front end is total on token-soup built from the language's
    /// own vocabulary (much more likely to get deep into the parser/sema).
    #[test]
    fn frontend_total_on_vocabulary_soup(words in prop::collection::vec(
        prop_oneof![
            Just("int"), Just("float"), Just("double"), Just("long"),
            Just("for"), Just("if"), Just("else"),
            Just("#pragma acc parallel\n"), Just("#pragma acc loop gang\n"),
            Just("#pragma acc loop vector reduction(+:s)\n"),
            Just("#pragma omp target teams distribute\n"),
            Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
            Just(";"), Just(","), Just("="), Just("+="), Just("+"), Just("*"),
            Just("<"), Just("a"), Just("s"), Just("i"), Just("N"), Just("0"),
            Just("1"), Just("2.5"), Just("fmax"), Just("collapse(2)"),
            Just("reduction(max:s)"), Just("copyin(a)"),
        ],
        0..60,
    )) {
        let src = words.join(" ");
        let _ = compile(&src);
    }

    /// Expression parser round-trips through arbitrary nesting depth
    /// without stack overflow (bounded here; deep inputs error cleanly).
    #[test]
    fn deep_parens_do_not_crash(depth in 0usize..200) {
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let _ = parser::parse_expr(&src);
    }

    /// Valid generated reduction programs always compile.
    #[test]
    fn generated_valid_programs_compile(
        n_ops in 1usize..4,
        use_if in any::<bool>(),
        ty in prop_oneof![Just("int"), Just("long"), Just("double")],
    ) {
        let mut body = String::new();
        for k in 0..n_ops {
            body.push_str(&format!("s += a[i] + {k};\n"));
        }
        if use_if {
            body = format!("if (i % 2 == 0) {{ {body} }}");
        }
        let src = format!(
            "int N; {ty} s;\n{ty} a[N];\ns = 0;\n#pragma acc parallel copyin(a)\n{{\n#pragma acc loop gang vector reduction(+:s)\nfor (int i = 0; i < N; i++) {{\n{body}\n}}\n}}"
        );
        prop_assert!(compile(&src).is_ok(), "{src}");
    }
}
