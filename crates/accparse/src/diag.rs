//! Diagnostics with byte-span source locations.

use std::fmt;

/// A byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-length span at `pos`.
    pub fn at(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A compiler diagnostic: message plus location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    pub message: String,
    pub span: Span,
}

impl Diag {
    /// Create a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diag {
            message: message.into(),
            span,
        }
    }

    /// Render the diagnostic against its source, with line/column and a
    /// caret line — the usual compiler error format.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        let line_text = src.lines().nth(line - 1).unwrap_or("");
        let caret_pad = " ".repeat(col.saturating_sub(1));
        let caret_len = (self.span.end.saturating_sub(self.span.start)).max(1);
        let carets = "^".repeat(caret_len.min(line_text.len().saturating_sub(col - 1).max(1)));
        format!(
            "error: {}\n --> line {line}, column {col}\n  | {line_text}\n  | {caret_pad}{carets}",
            self.message
        )
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {} (at byte {})", self.message, self.span.start)
    }
}

impl std::error::Error for Diag {}

/// 1-based line and column of byte offset `pos` in `src`.
pub fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= pos {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 999), (3, 3));
    }

    #[test]
    fn render_points_at_error() {
        let src = "int x = @;\n";
        let d = Diag::new("unexpected character `@`", Span::at(8));
        let r = d.render(src);
        assert!(r.contains("line 1, column 9"));
        assert!(r.contains("int x = @;"));
        assert!(r.contains('^'));
    }
}
