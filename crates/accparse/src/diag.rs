//! Diagnostics with byte-span source locations.
//!
//! Historically this module carried a single fatal [`Diag`]; the lint
//! layer (`lint.rs`) grew it into a multi-diagnostic system: every
//! diagnostic now has a [`Severity`], an optional stable code (`L100`,
//! `L200`, ...), attached [`Note`]s, and an optional [`FixIt`] carrying a
//! concrete source-level suggestion.  [`render_all`] ranks a batch
//! (errors first, then by source position) and renders each with a
//! caret-style snippet; [`diags_to_json`] emits the same batch as a JSON
//! array for tooling.

use std::fmt;

/// A byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-length span at `pos`.
    pub fn at(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Diagnostic severity. Ordering is by decreasing gravity: `Error <
/// Warning < Note`, so sorting ascending ranks errors first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Error,
    Warning,
    Note,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// A secondary message attached to a [`Diag`], optionally pointing at
/// its own source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Note {
    pub message: String,
    pub span: Option<Span>,
}

/// A machine-applicable suggestion: insert `insert` at `at.start`
/// (`at` names the construct the suggestion modifies).
#[derive(Debug, Clone, PartialEq)]
pub struct FixIt {
    pub message: String,
    pub insert: String,
    pub at: Span,
}

/// A compiler diagnostic: message plus location, severity, stable code,
/// notes and an optional fix-it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diag {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
    /// Extension payload (code, notes, fix-it), boxed so the common error
    /// path stays small: parser/sema recursion carries `Result<_, Diag>`
    /// in every frame, and deeply nested inputs (the fuzzer feeds
    /// 200-level paren towers) sit close to the thread stack limit in
    /// debug builds.
    ext: Option<Box<DiagExt>>,
}

#[derive(Debug, Clone, PartialEq, Default)]
struct DiagExt {
    code: Option<&'static str>,
    notes: Vec<Note>,
    fixit: Option<FixIt>,
}

impl Diag {
    /// Create an error diagnostic (the historical constructor: every
    /// parse/sema failure goes through here).
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diag {
            severity: Severity::Error,
            message: message.into(),
            span,
            ext: None,
        }
    }

    /// Create a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diag {
            severity: Severity::Warning,
            ..Diag::new(message, span)
        }
    }

    /// Create an info-level (note severity) diagnostic. Notes report
    /// proven facts (e.g. L210's relaxation proof) rather than defects;
    /// `--werror` does not upgrade them.
    pub fn note(message: impl Into<String>, span: Span) -> Self {
        Diag {
            severity: Severity::Note,
            ..Diag::new(message, span)
        }
    }

    fn ext_mut(&mut self) -> &mut DiagExt {
        self.ext.get_or_insert_with(Default::default)
    }

    /// Stable diagnostic code (`"L100"`, ...) — `None` for classic
    /// parse/sema errors that predate the code catalog.
    pub fn code(&self) -> Option<&'static str> {
        self.ext.as_ref().and_then(|e| e.code)
    }

    /// Attached notes, in attachment order.
    pub fn notes(&self) -> &[Note] {
        self.ext.as_ref().map(|e| e.notes.as_slice()).unwrap_or(&[])
    }

    /// The attached fix-it, if any.
    pub fn fixit(&self) -> Option<&FixIt> {
        self.ext.as_ref().and_then(|e| e.fixit.as_ref())
    }

    /// Attach a stable diagnostic code.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.ext_mut().code = Some(code);
        self
    }

    /// Attach a note without a location.
    pub fn with_note(mut self, message: impl Into<String>) -> Self {
        self.ext_mut().notes.push(Note {
            message: message.into(),
            span: None,
        });
        self
    }

    /// Attach a note pointing at `span`.
    pub fn with_note_at(mut self, message: impl Into<String>, span: Span) -> Self {
        self.ext_mut().notes.push(Note {
            message: message.into(),
            span: Some(span),
        });
        self
    }

    /// Attach a fix-it suggestion.
    pub fn with_fixit(
        mut self,
        message: impl Into<String>,
        insert: impl Into<String>,
        at: Span,
    ) -> Self {
        self.ext_mut().fixit = Some(FixIt {
            message: message.into(),
            insert: insert.into(),
            at,
        });
        self
    }

    /// Render the diagnostic against its source, with line/column and a
    /// caret line — the usual compiler error format.
    pub fn render(&self, src: &str) -> String {
        let mut out = String::new();
        let code = self.code().map(|c| format!("[{c}]")).unwrap_or_default();
        out.push_str(&format!(
            "{}{code}: {}\n",
            self.severity.label(),
            self.message
        ));
        out.push_str(&snippet(src, self.span, " --> "));
        for n in self.notes() {
            match n.span {
                Some(sp) => {
                    out.push_str(&format!("\n  = note: {}\n", n.message));
                    out.push_str(&snippet(src, sp, "   --> "));
                }
                None => out.push_str(&format!("\n  = note: {}", n.message)),
            }
        }
        if let Some(f) = self.fixit() {
            out.push_str(&format!("\n  = help: {}: `{}`", f.message, f.insert.trim()));
        }
        out
    }
}

/// Caret snippet for `span`: location line (prefixed with `arrow`), the
/// source line, and a caret underline.
fn snippet(src: &str, span: Span, arrow: &str) -> String {
    let (line, col) = line_col(src, span.start);
    let line_text = src.lines().nth(line - 1).unwrap_or("");
    let caret_pad = " ".repeat(col.saturating_sub(1));
    let caret_len = (span.end.saturating_sub(span.start)).max(1);
    let carets = "^".repeat(caret_len.min(line_text.len().saturating_sub(col - 1).max(1)));
    format!("{arrow}line {line}, column {col}\n  | {line_text}\n  | {caret_pad}{carets}")
}

/// Rank a batch of diagnostics in place: errors before warnings before
/// notes; within a severity, by source position.
pub fn rank(diags: &mut [Diag]) {
    diags.sort_by_key(|d| (d.severity, d.span.start, d.span.end));
}

/// Render a ranked batch, separated by blank lines, followed by a
/// `N error(s), M warning(s)` summary line.
pub fn render_all(diags: &[Diag], src: &str) -> String {
    let mut ranked: Vec<Diag> = diags.to_vec();
    rank(&mut ranked);
    let mut out = String::new();
    for d in &ranked {
        out.push_str(&d.render(src));
        out.push_str("\n\n");
    }
    let errors = ranked
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = ranked
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = ranked
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    // The historical two-field summary is pinned by goldens; the note
    // count only appears once info-level diagnostics (L210) exist.
    if notes > 0 {
        out.push_str(&format!(
            "{errors} error(s), {warnings} warning(s), {notes} note(s)\n"
        ));
    } else {
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    }
    out
}

/// Escape `s` for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn span_json(src: &str, span: Span) -> String {
    let (line, col) = line_col(src, span.start);
    format!(
        "{{\"start\":{},\"end\":{},\"line\":{line},\"column\":{col}}}",
        span.start, span.end
    )
}

/// Serialize a ranked batch of diagnostics as a JSON array (stable field
/// order; no external dependencies, so the writer is hand-rolled).
pub fn diags_to_json(diags: &[Diag], src: &str) -> String {
    let mut ranked: Vec<Diag> = diags.to_vec();
    rank(&mut ranked);
    let mut items = Vec::new();
    for d in &ranked {
        let mut fields = Vec::new();
        fields.push(format!("\"severity\":\"{}\"", d.severity.label()));
        match d.code() {
            Some(c) => fields.push(format!("\"code\":\"{c}\"")),
            None => fields.push("\"code\":null".to_string()),
        }
        fields.push(format!("\"message\":\"{}\"", json_escape(&d.message)));
        fields.push(format!("\"span\":{}", span_json(src, d.span)));
        let notes: Vec<String> = d
            .notes()
            .iter()
            .map(|n| {
                let sp = match n.span {
                    Some(s) => span_json(src, s),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"message\":\"{}\",\"span\":{sp}}}",
                    json_escape(&n.message)
                )
            })
            .collect();
        fields.push(format!("\"notes\":[{}]", notes.join(",")));
        match d.fixit() {
            Some(f) => fields.push(format!(
                "\"fixit\":{{\"message\":\"{}\",\"insert\":\"{}\",\"at\":{}}}",
                json_escape(&f.message),
                json_escape(&f.insert),
                span_json(src, f.at)
            )),
            None => fields.push("\"fixit\":null".to_string()),
        }
        items.push(format!("{{{}}}", fields.join(",")));
    }
    format!("[{}]", items.join(","))
}

/// Version of the top-level lint-report JSON schema emitted by
/// [`lint_report_json`]. Bump when the report *envelope* changes shape
/// (adding diagnostic codes does not bump it; consumers must tolerate
/// unknown codes). Version history:
///
/// * 1 — bare `[...]` diagnostic array (implicit; never carried a marker)
/// * 2 — `{"schema_version":2,"diagnostics":[...]}` envelope
pub const LINT_SCHEMA_VERSION: u32 = 2;

/// Serialize a ranked batch of diagnostics as the versioned lint-report
/// envelope consumed by `uhacc-cc --lint --json` and uhaccd `/lint`.
pub fn lint_report_json(diags: &[Diag], src: &str) -> String {
    format!(
        "{{\"schema_version\":{LINT_SCHEMA_VERSION},\"diagnostics\":{}}}",
        diags_to_json(diags, src)
    )
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (at byte {})",
            self.severity.label(),
            self.message,
            self.span.start
        )
    }
}

impl std::error::Error for Diag {}

/// 1-based line and column of byte offset `pos` in `src`.
pub fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= pos {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 999), (3, 3));
    }

    #[test]
    fn render_points_at_error() {
        let src = "int x = @;\n";
        let d = Diag::new("unexpected character `@`", Span::at(8));
        let r = d.render(src);
        assert!(r.contains("line 1, column 9"));
        assert!(r.contains("int x = @;"));
        assert!(r.contains('^'));
    }

    #[test]
    fn render_includes_code_notes_and_fixit() {
        let src = "#pragma acc loop gang\nfor (int i = 0; i < n; i++) s += a[i];\n";
        let d = Diag::new("possible race on `s`", Span::new(50, 51))
            .with_code("L100")
            .with_note("updated on every gang iteration")
            .with_note_at("the parallel loop is here", Span::new(0, 21))
            .with_fixit(
                "add a reduction clause",
                " reduction(+:s)",
                Span::new(0, 21),
            );
        let r = d.render(src);
        assert!(r.starts_with("error[L100]: possible race on `s`"));
        assert!(r.contains("= note: updated on every gang iteration"));
        assert!(r.contains("= note: the parallel loop is here"));
        assert!(r.contains("= help: add a reduction clause: `reduction(+:s)`"));
    }

    #[test]
    fn rank_orders_errors_first_then_position() {
        let mut ds = vec![
            Diag::warning("w early", Span::at(1)),
            Diag::new("e late", Span::at(90)),
            Diag::new("e early", Span::at(5)),
        ];
        rank(&mut ds);
        assert_eq!(ds[0].message, "e early");
        assert_eq!(ds[1].message, "e late");
        assert_eq!(ds[2].message, "w early");
    }

    #[test]
    fn render_all_counts_severities() {
        let src = "x\n";
        let ds = vec![
            Diag::new("a", Span::at(0)),
            Diag::warning("b", Span::at(0)),
            Diag::warning("c", Span::at(0)),
        ];
        let r = render_all(&ds, src);
        assert!(r.ends_with("1 error(s), 2 warning(s)\n"));
    }

    #[test]
    fn json_output_is_stable_and_escaped() {
        let src = "int \"q\";\n";
        let ds = vec![Diag::warning("odd name `\"q\"`", Span::new(4, 7)).with_code("L300")];
        let j = diags_to_json(&ds, src);
        assert!(j.starts_with("[{\"severity\":\"warning\",\"code\":\"L300\","));
        assert!(j.contains("\\\"q\\\""));
        assert!(j.contains("\"span\":{\"start\":4,\"end\":7,\"line\":1,\"column\":5}"));
        assert!(j.contains("\"fixit\":null"));
    }
}
