//! Classic dataflow analyses over the HIR statement tree.
//!
//! The lint layer ([`crate::lint`]) is built on four analyses, all running
//! directly on the structured `HStmt` tree (no CFG is needed — the
//! language has no `goto`, so loops are the only back edges and a local
//! fixpoint per loop suffices):
//!
//! * **use-def events** ([`scalar_events`]) — every scalar read, write and
//!   reduction-shaped update, each tagged with its enclosing-loop chain
//!   and a preorder position. This is the use-def-chain substrate the
//!   placement analysis (paper §3.2.1) walks.
//! * **consume liveness** ([`consume_liveness`]) — backward liveness in
//!   which a reduction-shaped update `s = s ⊕ e` does *not* read `s`:
//!   what remains live is exactly the set of variables whose value is
//!   *consumed* later, which is the paper's "where is the variable next
//!   used" question.
//! * **definite assignment** ([`read_before_write`]) — forward
//!   must-assigned analysis (the dual of reaching definitions over the
//!   "uninitialized" pseudo-definition) used by the `private`
//!   read-before-write check.
//! * **affine dependence** ([`loop_dependence`]) — strong-SIV distance
//!   tests on affine subscripts, used to detect loop-carried dependences
//!   in loops the user parallelized.

use crate::ast::{BinOpKind, RedOp};
use crate::diag::Span;
use crate::hir::{HExpr, HExprKind, HLoop, HStmt, MathFunc, Sym};
use std::collections::{BTreeMap, HashSet};

/// Identifies a loop by its source span (unique per loop).
pub type LoopKey = (usize, usize);

/// The [`LoopKey`] of a loop.
pub fn loop_key(l: &HLoop) -> LoopKey {
    (l.span.start, l.span.end)
}

// ---- expression walkers -------------------------------------------------

/// Strip top-level implicit casts (sema's `coerce` wraps values).
pub fn strip_casts(e: &HExpr) -> &HExpr {
    match &e.kind {
        HExprKind::Cast { operand } => strip_casts(operand),
        _ => e,
    }
}

pub(crate) fn children(e: &HExpr) -> Vec<&HExpr> {
    match &e.kind {
        HExprKind::Int(_) | HExprKind::Float(_) | HExprKind::Sym(_) => Vec::new(),
        HExprKind::Load { indices, .. } => indices.iter().collect(),
        HExprKind::Un { operand, .. } | HExprKind::Cast { operand } => vec![operand],
        HExprKind::Bin { lhs, rhs, .. } => vec![lhs, rhs],
        HExprKind::Cond { cond, then, els } => vec![cond, then, els],
        HExprKind::Call { args, .. } => args.iter().collect(),
    }
}

/// Collect every scalar symbol read by `e`.
pub fn expr_syms(e: &HExpr, out: &mut HashSet<Sym>) {
    if let HExprKind::Sym(s) = &e.kind {
        out.insert(*s);
    }
    for c in children(e) {
        expr_syms(c, out);
    }
}

/// Does `e` read scalar `s` anywhere?
pub fn expr_reads_sym(e: &HExpr, s: Sym) -> bool {
    if matches!(&e.kind, HExprKind::Sym(t) if *t == s) {
        return true;
    }
    children(e).into_iter().any(|c| expr_reads_sym(c, s))
}

/// Span-insensitive structural equality of expressions.
pub fn expr_eq(a: &HExpr, b: &HExpr) -> bool {
    if a.ty != b.ty {
        return false;
    }
    match (&a.kind, &b.kind) {
        (HExprKind::Int(x), HExprKind::Int(y)) => x == y,
        (HExprKind::Float(x), HExprKind::Float(y)) => x == y,
        (HExprKind::Sym(x), HExprKind::Sym(y)) => x == y,
        (
            HExprKind::Load {
                array: ax,
                indices: ix,
            },
            HExprKind::Load {
                array: ay,
                indices: iy,
            },
        ) => ax == ay && ix.len() == iy.len() && ix.iter().zip(iy).all(|(p, q)| expr_eq(p, q)),
        (
            HExprKind::Un {
                op: ox,
                operand: px,
            },
            HExprKind::Un {
                op: oy,
                operand: py,
            },
        ) => ox == oy && expr_eq(px, py),
        (
            HExprKind::Bin {
                op: ox,
                lhs: lx,
                rhs: rx,
                ..
            },
            HExprKind::Bin {
                op: oy,
                lhs: ly,
                rhs: ry,
                ..
            },
        ) => ox == oy && expr_eq(lx, ly) && expr_eq(rx, ry),
        (
            HExprKind::Cond {
                cond: cx,
                then: tx,
                els: ex,
            },
            HExprKind::Cond {
                cond: cy,
                then: ty,
                els: ey,
            },
        ) => expr_eq(cx, cy) && expr_eq(tx, ty) && expr_eq(ex, ey),
        (HExprKind::Call { func: fx, args: ax }, HExprKind::Call { func: fy, args: ay }) => {
            fx == fy && ax.len() == ay.len() && ax.iter().zip(ay).all(|(p, q)| expr_eq(p, q))
        }
        (HExprKind::Cast { operand: px }, HExprKind::Cast { operand: py }) => expr_eq(px, py),
        _ => false,
    }
}

// ---- reduction-shaped updates -------------------------------------------

/// A recognized `s = s ⊕ e` assignment (the shape sema turns into
/// `ReduceUpdate` when a matching clause is active; without a clause it
/// stays a plain assignment — and is a cross-iteration race in a parallel
/// loop).
#[derive(Debug, Clone, Copy)]
pub struct UpdateShape<'a> {
    pub sym: Sym,
    pub op: RedOp,
    /// The non-self operand `e`.
    pub operand: &'a HExpr,
    pub span: Span,
}

/// The reduction operator a binary operator corresponds to, if any.
pub fn bin_red_op(op: BinOpKind) -> Option<RedOp> {
    match op {
        BinOpKind::Add => Some(RedOp::Add),
        BinOpKind::Mul => Some(RedOp::Mul),
        BinOpKind::BitAnd => Some(RedOp::BitAnd),
        BinOpKind::BitOr => Some(RedOp::BitOr),
        BinOpKind::BitXor => Some(RedOp::BitXor),
        BinOpKind::LogAnd => Some(RedOp::LogAnd),
        BinOpKind::LogOr => Some(RedOp::LogOr),
        _ => None,
    }
}

fn sym_of(e: &HExpr) -> Option<Sym> {
    match &strip_casts(e).kind {
        HExprKind::Sym(s) => Some(*s),
        _ => None,
    }
}

/// Recognize a reduction-shaped assignment: `s = s ⊕ e` / `s = e ⊕ s`
/// for the paper's nine operators, or `s = fmax(s, e)` / `min`/`max`
/// forms. The operand must not read `s` again (an expression like
/// `s = s + s` is not a clean reduction).
pub fn update_shape(stmt: &HStmt) -> Option<UpdateShape<'_>> {
    let (target, value) = match stmt {
        HStmt::AssignLocal { local, value } => (Sym::Local(*local), value),
        HStmt::AssignHost { host, value } => (Sym::Host(*host), value),
        _ => return None,
    };
    let v = strip_casts(value);
    match &v.kind {
        HExprKind::Bin { op, lhs, rhs, .. } => {
            let rop = bin_red_op(*op)?;
            for (own, other) in [(lhs, rhs), (rhs, lhs)] {
                if sym_of(own) == Some(target) && !expr_reads_sym(other, target) {
                    return Some(UpdateShape {
                        sym: target,
                        op: rop,
                        operand: other,
                        span: v.span,
                    });
                }
            }
            None
        }
        HExprKind::Call { func, args } if args.len() == 2 => {
            let rop = match func {
                MathFunc::FMax | MathFunc::IMax => RedOp::Max,
                MathFunc::FMin | MathFunc::IMin => RedOp::Min,
                _ => return None,
            };
            for (own, other) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                if sym_of(own) == Some(target) && !expr_reads_sym(other, target) {
                    return Some(UpdateShape {
                        sym: target,
                        op: rop,
                        operand: other,
                        span: v.span,
                    });
                }
            }
            None
        }
        _ => None,
    }
}

// ---- use-def events -----------------------------------------------------

/// What a [`ScalarEvent`] does to its symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarEventKind {
    /// A reduction-shaped plain assignment (`s = s ⊕ e` with no clause).
    Update(RedOp),
    /// A `ReduceUpdate` under an active reduction clause.
    ClauseUpdate(RedOp),
    /// Any other write.
    Write,
    /// A read (the self-read of an `Update`/`ClauseUpdate` is *not*
    /// reported — only its operand's reads are).
    Read,
}

/// One scalar use or definition, with its position in the loop structure.
#[derive(Debug, Clone)]
pub struct ScalarEvent<'a> {
    pub sym: Sym,
    pub kind: ScalarEventKind,
    /// Enclosing loops, outermost first.
    pub chain: Vec<&'a HLoop>,
    /// Preorder position in the region body (use-def ordering).
    pub order: usize,
    pub span: Span,
}

struct EventWalker<'a> {
    chain: Vec<&'a HLoop>,
    order: usize,
    out: Vec<ScalarEvent<'a>>,
}

impl<'a> EventWalker<'a> {
    fn reads(&mut self, e: &'a HExpr) {
        let mut syms = HashSet::new();
        expr_syms(e, &mut syms);
        for sym in syms {
            self.out.push(ScalarEvent {
                sym,
                kind: ScalarEventKind::Read,
                chain: self.chain.clone(),
                order: self.order,
                span: e.span,
            });
        }
    }

    fn event(&mut self, sym: Sym, kind: ScalarEventKind, span: Span) {
        self.out.push(ScalarEvent {
            sym,
            kind,
            chain: self.chain.clone(),
            order: self.order,
            span,
        });
    }

    fn stmts(&mut self, stmts: &'a [HStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &'a HStmt) {
        self.order += 1;
        match stmt {
            HStmt::AssignLocal { .. } | HStmt::AssignHost { .. } => {
                if let Some(u) = update_shape(stmt) {
                    self.reads(u.operand);
                    self.event(u.sym, ScalarEventKind::Update(u.op), u.span);
                } else {
                    let (sym, value) = match stmt {
                        HStmt::AssignLocal { local, value } => (Sym::Local(*local), value),
                        HStmt::AssignHost { host, value } => (Sym::Host(*host), value),
                        _ => unreachable!(),
                    };
                    self.reads(value);
                    self.event(sym, ScalarEventKind::Write, value.span);
                }
            }
            HStmt::Store { indices, value, .. } => {
                for ix in indices {
                    self.reads(ix);
                }
                self.reads(value);
            }
            HStmt::ReduceUpdate {
                sym,
                op,
                value,
                span,
            } => {
                self.reads(value);
                self.event(*sym, ScalarEventKind::ClauseUpdate(*op), *span);
            }
            HStmt::If { cond, then, els } => {
                self.reads(cond);
                self.stmts(then);
                self.stmts(els);
            }
            HStmt::Loop(l) => {
                self.reads(&l.lower);
                self.reads(&l.bound);
                self.reads(&l.step);
                self.chain.push(l);
                self.order += 1;
                // The loop defines its induction variable.
                self.event(Sym::Local(l.var), ScalarEventKind::Write, l.span);
                self.stmts(&l.body);
                self.chain.pop();
            }
        }
    }
}

/// Collect every scalar use/def in `body` with loop chains and preorder
/// positions.
pub fn scalar_events(body: &[HStmt]) -> Vec<ScalarEvent<'_>> {
    let mut w = EventWalker {
        chain: Vec::new(),
        order: 0,
        out: Vec::new(),
    };
    w.stmts(body);
    w.out
}

// ---- consume liveness ---------------------------------------------------

/// Result of [`consume_liveness`]: which symbols are consumed (read in a
/// non-update position) after each loop.
#[derive(Debug, Default)]
pub struct Liveness {
    /// Symbols live immediately *after* each loop, keyed by [`LoopKey`].
    pub live_after_loop: BTreeMap<LoopKey, HashSet<Sym>>,
}

/// Backward liveness over the statement tree where reduction-shaped
/// updates do not gen their own symbol (their self-read only feeds the
/// accumulation, not a *use* of the combined value). The result answers
/// §3.2.1's placement question: a symbol in `live_after_loop[l]` has its
/// accumulated value consumed somewhere after `l`.
pub fn consume_liveness(body: &[HStmt], exit_live: &HashSet<Sym>) -> Liveness {
    let mut lv = Liveness::default();
    let mut live = exit_live.clone();
    stmts_live(body, &mut live, &mut lv);
    lv
}

fn gen_expr(e: &HExpr, live: &mut HashSet<Sym>) {
    expr_syms(e, live);
}

fn stmts_live(stmts: &[HStmt], live: &mut HashSet<Sym>, lv: &mut Liveness) {
    for s in stmts.iter().rev() {
        stmt_live(s, live, lv);
    }
}

fn stmt_live(stmt: &HStmt, live: &mut HashSet<Sym>, lv: &mut Liveness) {
    match stmt {
        HStmt::AssignLocal { .. } | HStmt::AssignHost { .. } => {
            if let Some(u) = update_shape(stmt) {
                // kill nothing (the accumulated value flows through),
                // gen the operand but not the self-read.
                gen_expr(u.operand, live);
            } else {
                let (sym, value) = match stmt {
                    HStmt::AssignLocal { local, value } => (Sym::Local(*local), value),
                    HStmt::AssignHost { host, value } => (Sym::Host(*host), value),
                    _ => unreachable!(),
                };
                live.remove(&sym);
                gen_expr(value, live);
            }
        }
        HStmt::Store { indices, value, .. } => {
            for ix in indices {
                gen_expr(ix, live);
            }
            gen_expr(value, live);
        }
        HStmt::ReduceUpdate { value, .. } => gen_expr(value, live),
        HStmt::If { cond, then, els } => {
            let mut t = live.clone();
            stmts_live(then, &mut t, lv);
            stmts_live(els, live, lv);
            live.extend(t);
            gen_expr(cond, live);
        }
        HStmt::Loop(l) => {
            lv.live_after_loop
                .entry(loop_key(l))
                .or_default()
                .extend(live.iter().copied());
            // Fixpoint over the back edge: anything generated by the body
            // may flow into an earlier iteration of the body.
            loop {
                let before = live.clone();
                let mut body_live = live.clone();
                stmts_live(&l.body, &mut body_live, lv);
                live.extend(body_live);
                if *live == before {
                    break;
                }
            }
            live.remove(&Sym::Local(l.var));
            gen_expr(&l.lower, live);
            gen_expr(&l.bound, live);
            gen_expr(&l.step, live);
        }
    }
}

// ---- definite assignment ------------------------------------------------

/// Forward must-assigned analysis: report, for each tracked symbol, the
/// first read that can execute before any write on some path (the
/// `private` read-before-write check). Loop bodies are treated as
/// possibly executing zero times, so writes inside a nested loop do not
/// count as definite. Reads inside `ReduceUpdate` self-positions do not
/// count (codegen initializes the accumulator with the identity).
pub fn read_before_write(
    body: &[HStmt],
    tracked: &HashSet<Sym>,
    pre_assigned: &HashSet<Sym>,
) -> Vec<(Sym, Span)> {
    let mut reports: BTreeMap<usize, (Sym, Span)> = BTreeMap::new();
    let mut assigned = pre_assigned.clone();
    let mut seen: HashSet<Sym> = HashSet::new();
    da_stmts(body, tracked, &mut assigned, &mut seen, &mut reports);
    reports.into_values().collect()
}

fn da_check(
    e: &HExpr,
    tracked: &HashSet<Sym>,
    assigned: &HashSet<Sym>,
    seen: &mut HashSet<Sym>,
    reports: &mut BTreeMap<usize, (Sym, Span)>,
) {
    let mut syms = HashSet::new();
    expr_syms(e, &mut syms);
    for s in syms {
        if tracked.contains(&s) && !assigned.contains(&s) && seen.insert(s) {
            reports.insert(e.span.start, (s, e.span));
        }
    }
}

fn da_stmts(
    stmts: &[HStmt],
    tracked: &HashSet<Sym>,
    assigned: &mut HashSet<Sym>,
    seen: &mut HashSet<Sym>,
    reports: &mut BTreeMap<usize, (Sym, Span)>,
) {
    for s in stmts {
        da_stmt(s, tracked, assigned, seen, reports);
    }
}

fn da_stmt(
    stmt: &HStmt,
    tracked: &HashSet<Sym>,
    assigned: &mut HashSet<Sym>,
    seen: &mut HashSet<Sym>,
    reports: &mut BTreeMap<usize, (Sym, Span)>,
) {
    match stmt {
        HStmt::AssignLocal { local, value } => {
            da_check(value, tracked, assigned, seen, reports);
            assigned.insert(Sym::Local(*local));
        }
        HStmt::AssignHost { host, value } => {
            da_check(value, tracked, assigned, seen, reports);
            assigned.insert(Sym::Host(*host));
        }
        HStmt::Store { indices, value, .. } => {
            for ix in indices {
                da_check(ix, tracked, assigned, seen, reports);
            }
            da_check(value, tracked, assigned, seen, reports);
        }
        HStmt::ReduceUpdate { sym, value, .. } => {
            da_check(value, tracked, assigned, seen, reports);
            assigned.insert(*sym);
        }
        HStmt::If { cond, then, els } => {
            da_check(cond, tracked, assigned, seen, reports);
            let mut a_then = assigned.clone();
            let mut a_els = assigned.clone();
            da_stmts(then, tracked, &mut a_then, seen, reports);
            da_stmts(els, tracked, &mut a_els, seen, reports);
            *assigned = a_then.intersection(&a_els).copied().collect();
        }
        HStmt::Loop(l) => {
            da_check(&l.lower, tracked, assigned, seen, reports);
            da_check(&l.bound, tracked, assigned, seen, reports);
            da_check(&l.step, tracked, assigned, seen, reports);
            // The body may run zero times: analyze it (the loop var is
            // assigned inside), but discard its assignments.
            let mut a_body = assigned.clone();
            a_body.insert(Sym::Local(l.var));
            da_stmts(&l.body, tracked, &mut a_body, seen, reports);
        }
    }
}

// ---- array accesses and affine dependence -------------------------------

/// One array access inside a loop body.
#[derive(Debug, Clone, Copy)]
pub struct ArrayAccess<'a> {
    pub array: usize,
    pub indices: &'a [HExpr],
    pub is_write: bool,
    pub span: Span,
}

fn expr_accesses<'a>(e: &'a HExpr, out: &mut Vec<ArrayAccess<'a>>) {
    if let HExprKind::Load { array, indices } = &e.kind {
        out.push(ArrayAccess {
            array: *array,
            indices,
            is_write: false,
            span: e.span,
        });
    }
    for c in children(e) {
        expr_accesses(c, out);
    }
}

/// Collect every array access (loads and stores) in `stmts`, descending
/// into nested control flow and loops.
pub fn collect_array_accesses<'a>(stmts: &'a [HStmt], out: &mut Vec<ArrayAccess<'a>>) {
    for s in stmts {
        match s {
            HStmt::AssignLocal { value, .. } | HStmt::AssignHost { value, .. } => {
                expr_accesses(value, out)
            }
            HStmt::Store {
                array,
                indices,
                value,
            } => {
                out.push(ArrayAccess {
                    array: *array,
                    indices,
                    is_write: true,
                    span: indices.first().map(|e| e.span).unwrap_or(value.span),
                });
                for ix in indices {
                    expr_accesses(ix, out);
                }
                expr_accesses(value, out);
            }
            HStmt::ReduceUpdate { value, .. } => expr_accesses(value, out),
            HStmt::If { cond, then, els } => {
                expr_accesses(cond, out);
                collect_array_accesses(then, out);
                collect_array_accesses(els, out);
            }
            HStmt::Loop(l) => {
                expr_accesses(&l.lower, out);
                expr_accesses(&l.bound, out);
                expr_accesses(&l.step, out);
                collect_array_accesses(&l.body, out);
            }
        }
    }
}

/// Symbols whose value varies across iterations of a loop body: targets
/// of any write in the body, plus nested induction variables.
pub fn varying_syms(body: &[HStmt]) -> HashSet<Sym> {
    let mut out = HashSet::new();
    for ev in scalar_events(body) {
        if !matches!(ev.kind, ScalarEventKind::Read) {
            out.insert(ev.sym);
        }
    }
    out
}

/// `coeff * var + offset [+ base]` decomposition of a subscript.
#[derive(Debug, Clone, Copy)]
pub struct AffineForm<'a> {
    pub coeff: i64,
    pub offset: i64,
    /// Var-free symbolic remainder (`None` = 0).
    pub base: Option<&'a HExpr>,
}

/// Decompose `e` as an affine form in local `var`. Returns `None` when
/// the subscript is not affine in `var` (e.g. `i*i`, `a[i]`-dependent).
pub fn affine_in(e: &HExpr, var: usize) -> Option<AffineForm<'_>> {
    if let Some(k) = e.const_int() {
        return Some(AffineForm {
            coeff: 0,
            offset: k,
            base: None,
        });
    }
    if !expr_reads_sym(e, Sym::Local(var)) {
        return Some(AffineForm {
            coeff: 0,
            offset: 0,
            base: Some(e),
        });
    }
    match &e.kind {
        HExprKind::Sym(Sym::Local(v)) if *v == var => Some(AffineForm {
            coeff: 1,
            offset: 0,
            base: None,
        }),
        HExprKind::Cast { operand } => affine_in(operand, var),
        HExprKind::Un {
            op: crate::ast::UnOpKind::Neg,
            operand,
        } => {
            let a = affine_in(operand, var)?;
            if a.base.is_some() {
                return None;
            }
            Some(AffineForm {
                coeff: a.coeff.checked_neg()?,
                offset: a.offset.checked_neg()?,
                base: None,
            })
        }
        HExprKind::Bin { op, lhs, rhs, .. } => match op {
            BinOpKind::Add | BinOpKind::Sub => {
                let a = affine_in(lhs, var)?;
                let b = affine_in(rhs, var)?;
                let sign = if *op == BinOpKind::Add { 1 } else { -1 };
                let base = match (a.base, b.base) {
                    (x, None) => x,
                    (None, Some(y)) if *op == BinOpKind::Add => Some(y),
                    (Some(x), Some(y)) if expr_eq(x, y) && *op == BinOpKind::Sub => None,
                    _ => return None,
                };
                // Checked arithmetic throughout: a subscript built from
                // absurd literals must degrade to "not affine" (and thus a
                // conservative Unanalyzable verdict), never wrap or panic.
                let add_signed = |x: i64, y: i64| {
                    if sign == 1 {
                        x.checked_add(y)
                    } else {
                        x.checked_sub(y)
                    }
                };
                Some(AffineForm {
                    coeff: add_signed(a.coeff, b.coeff)?,
                    offset: add_signed(a.offset, b.offset)?,
                    base,
                })
            }
            BinOpKind::Mul => {
                let (k, other) = if let Some(k) = lhs.const_int() {
                    (k, rhs)
                } else if let Some(k) = rhs.const_int() {
                    (k, lhs)
                } else {
                    return None;
                };
                let a = affine_in(other, var)?;
                if a.base.is_some() {
                    return None;
                }
                Some(AffineForm {
                    coeff: k.checked_mul(a.coeff)?,
                    offset: k.checked_mul(a.offset)?,
                    base: None,
                })
            }
            _ => None,
        },
        _ => None,
    }
}

/// Per-dimension relation between two subscripts w.r.t. the loop var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DimRel {
    /// The subscripts can never be equal.
    Indep,
    /// Equal only at iteration distance `d` (`d == 0` pins same-iteration).
    Dist(i64),
    /// Equal at every iteration distance (loop-invariant equal subscripts).
    AllIter,
    /// Not analyzable.
    Unknown,
}

fn dim_rel(a: &HExpr, b: &HExpr, var: usize, varying: &HashSet<Sym>) -> DimRel {
    let (Some(fa), Some(fb)) = (affine_in(a, var), affine_in(b, var)) else {
        return DimRel::Unknown;
    };
    // A symbolic base must be invariant across iterations of the analyzed
    // loop, otherwise the "same base" reasoning is unsound (e.g. an inner
    // induction variable takes every value in every outer iteration).
    let base_invariant = |base: Option<&HExpr>| {
        base.map(|e| {
            let mut syms = HashSet::new();
            expr_syms(e, &mut syms);
            syms.is_disjoint(varying)
        })
        .unwrap_or(true)
    };
    let bases_known = match (fa.base, fb.base) {
        (None, None) => true,
        (Some(x), Some(y)) => expr_eq(x, y) && base_invariant(Some(x)),
        _ => false,
    };
    if !bases_known {
        return DimRel::Unknown;
    }
    if fa.coeff != fb.coeff {
        // Weak SIV; solvable in principle, out of scope here.
        return DimRel::Unknown;
    }
    // coeff*(i2 - i1) = d; offsets near the i64 boundary fall back to
    // Unknown instead of overflowing.
    let Some(d) = fa.offset.checked_sub(fb.offset) else {
        return DimRel::Unknown;
    };
    if fa.coeff == 0 {
        return if d == 0 {
            DimRel::AllIter
        } else {
            DimRel::Indep
        };
    }
    match (d.checked_rem(fa.coeff), d.checked_div(fa.coeff)) {
        (Some(0), Some(q)) => DimRel::Dist(q),
        (Some(_), _) => DimRel::Indep,
        // i64::MIN / -1 style overflow: not analyzable.
        _ => DimRel::Unknown,
    }
}

/// Result of a dependence test between two accesses in a parallel loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepResult {
    /// No two distinct iterations touch the same element.
    Independent,
    /// Conflicts only within one iteration — safe to parallelize.
    SameIteration,
    /// Distinct iterations at the given distance touch the same element.
    Carried(i64),
    /// Every iteration touches the same element.
    SameElement,
    /// Subscripts not analyzable; a carried dependence cannot be excluded.
    Unanalyzable,
}

/// Strong-SIV dependence test between a write and another access to the
/// same array, with respect to loop variable `var`. `varying` is the set
/// of symbols whose value changes across iterations of the loop body
/// (see [`varying_syms`]).
pub fn loop_dependence(
    w: &ArrayAccess<'_>,
    o: &ArrayAccess<'_>,
    var: usize,
    varying: &HashSet<Sym>,
) -> DepResult {
    debug_assert_eq!(w.array, o.array);
    let mut dist: Option<i64> = None;
    let mut unknown = false;
    for (ia, ib) in w.indices.iter().zip(o.indices.iter()) {
        match dim_rel(ia, ib, var, varying) {
            DimRel::Indep => return DepResult::Independent,
            DimRel::Dist(k) => match dist {
                Some(prev) if prev != k => return DepResult::Independent,
                _ => dist = Some(k),
            },
            DimRel::AllIter => {}
            DimRel::Unknown => unknown = true,
        }
    }
    match dist {
        // A required distance of zero excludes cross-iteration conflicts
        // regardless of unanalyzable dimensions.
        Some(0) => DepResult::SameIteration,
        Some(k) => {
            if unknown {
                DepResult::Unanalyzable
            } else {
                DepResult::Carried(k)
            }
        }
        None => {
            if unknown {
                DepResult::Unanalyzable
            } else {
                DepResult::SameElement
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::analyze;

    fn compile_region(src: &str) -> crate::hir::AnalyzedProgram {
        let ast = crate::parser::parse_program(src).expect("parse");
        analyze(&ast).expect("analyze")
    }

    fn grid_like(update: &str) -> String {
        format!(
            "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {{\n{update}\n}}\n}}"
        )
    }

    #[test]
    fn update_shape_recognizes_all_forms() {
        for (stmt, op) in [
            ("s = s + a[i];", RedOp::Add),
            ("s += a[i];", RedOp::Add),
            ("s = a[i] + s;", RedOp::Add),
            ("s = s * a[i];", RedOp::Mul),
            ("s = fmax(s, a[i]);", RedOp::Max),
            ("s = fmin(a[i], s);", RedOp::Min),
        ] {
            let p = compile_region(&grid_like(stmt));
            let evs = scalar_events(&p.regions[0].body);
            let found = evs
                .iter()
                .find(|e| matches!(e.kind, ScalarEventKind::Update(_)))
                .unwrap_or_else(|| panic!("no update event for `{stmt}`"));
            assert_eq!(found.kind, ScalarEventKind::Update(op), "for `{stmt}`");
            assert_eq!(found.chain.len(), 1, "for `{stmt}`");
        }
    }

    #[test]
    fn update_shape_rejects_non_reductions() {
        for stmt in ["s = s + a[i] + s;", "s = a[i];", "s = s - a[i];"] {
            let p = compile_region(&grid_like(stmt));
            let evs = scalar_events(&p.regions[0].body);
            assert!(
                !evs.iter()
                    .any(|e| matches!(e.kind, ScalarEventKind::Update(_))),
                "`{stmt}` must not be update-shaped"
            );
        }
    }

    #[test]
    fn consume_liveness_excludes_update_self_read() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { s += a[i]; }\n}";
        let p = compile_region(src);
        let r = &p.regions[0];
        // s is a host scalar written by the region: live at exit.
        let s_sym = Sym::Host(p.hosts.iter().position(|h| h.name == "s").expect("host s"));
        let exit: HashSet<Sym> = [s_sym].into_iter().collect();
        let lv = consume_liveness(&r.body, &exit);
        let (_, after) = lv.live_after_loop.iter().next().expect("one loop");
        assert!(after.contains(&s_sym));
        // With nothing live at exit, the update alone keeps nothing alive.
        let lv2 = consume_liveness(&r.body, &HashSet::new());
        let (_, after2) = lv2.live_after_loop.iter().next().expect("one loop");
        assert!(!after2.contains(&s_sym));
    }

    #[test]
    fn read_before_write_flags_uninitialized_use() {
        let src = "int N;\ndouble a[N]; double out[N];\n\
             #pragma acc parallel copyin(a) copyout(out)\n{\n\
             double t = 0.0;\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { out[i] = t + a[i]; t = a[i]; }\n}";
        let p = compile_region(src);
        let r = &p.regions[0];
        let t_sym = Sym::Local(
            r.locals
                .iter()
                .position(|l| l.name == "t")
                .expect("local t"),
        );
        // Track t across the loop body only (private-per-iteration view):
        // the read `t + a[i]` precedes the write `t = a[i]`.
        let body = match r.body.iter().find(|s| matches!(s, HStmt::Loop(_))) {
            Some(HStmt::Loop(l)) => &l.body,
            _ => panic!("no loop"),
        };
        let tracked: HashSet<Sym> = [t_sym].into_iter().collect();
        let reports = read_before_write(body, &tracked, &HashSet::new());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, t_sym);
    }

    #[test]
    fn affine_decomposition() {
        let src = "int N; int M;\ndouble a[N]; double out[N];\n\
             #pragma acc parallel copyin(a) copyout(out)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { out[2*i + 3] = a[M + i] + a[7]; }\n}";
        let p = compile_region(src);
        let mut accs = Vec::new();
        collect_array_accesses(&p.regions[0].body, &mut accs);
        let var = match &p.regions[0].body[0] {
            HStmt::Loop(l) => l.var,
            _ => panic!(),
        };
        let store = accs.iter().find(|a| a.is_write).unwrap();
        let f = affine_in(&store.indices[0], var).unwrap();
        assert_eq!((f.coeff, f.offset), (2, 3));
        assert!(f.base.is_none());
        let loads: Vec<_> = accs.iter().filter(|a| !a.is_write).collect();
        let fm = affine_in(&loads[0].indices[0], var).unwrap();
        assert_eq!(fm.coeff, 1);
        assert!(fm.base.is_some());
        let fc = affine_in(&loads[1].indices[0], var).unwrap();
        assert_eq!((fc.coeff, fc.offset), (0, 7));
    }

    #[test]
    fn dependence_distances() {
        // a[i] = a[i-1] + 1 — classic distance-1 carried dependence.
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 1; i < N; i++) { a[i] = a[i - 1] + 1.0; }\n}";
        let p = compile_region(src);
        let body = match &p.regions[0].body[0] {
            HStmt::Loop(l) => l,
            _ => panic!(),
        };
        let mut accs = Vec::new();
        collect_array_accesses(&body.body, &mut accs);
        let varying = varying_syms(&body.body);
        let w = accs.iter().find(|a| a.is_write).unwrap();
        let r = accs.iter().find(|a| !a.is_write).unwrap();
        assert_eq!(
            loop_dependence(w, r, body.var, &varying),
            DepResult::Carried(1)
        );
        assert_eq!(
            loop_dependence(w, w, body.var, &varying),
            DepResult::SameIteration
        );
    }

    /// Build the (write, other) access pair plus loop var/varying set for a
    /// single-loop body containing exactly one store.
    fn dep_of(src: &str) -> DepResult {
        let p = compile_region(src);
        let body = match &p.regions[0].body[0] {
            HStmt::Loop(l) => l,
            _ => panic!("no loop"),
        };
        let mut accs = Vec::new();
        collect_array_accesses(&body.body, &mut accs);
        let varying = varying_syms(&body.body);
        let w = accs.iter().find(|a| a.is_write).expect("write access");
        let r = accs
            .iter()
            .find(|a| !a.is_write && a.array == w.array)
            .expect("read access");
        loop_dependence(w, r, body.var, &varying)
    }

    #[test]
    fn dependence_negative_distance() {
        // a[i] = a[i+1]: the write at iteration i conflicts with the read
        // issued at iteration i+1 — a carried anti-dependence at distance
        // -1 from the write's perspective.
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N - 1; i++) { a[i] = a[i + 1]; }\n}";
        assert_eq!(dep_of(src), DepResult::Carried(-1));
    }

    #[test]
    fn dependence_zero_distance_with_scaled_subscripts() {
        // a[2*i] = a[2*i] + 1: same scaled subscript on both sides — a
        // distance of exactly zero, which is safe to parallelize.
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N / 2; i++) { a[2*i] = a[2*i] + 1.0; }\n}";
        assert_eq!(dep_of(src), DepResult::SameIteration);
    }

    #[test]
    fn dependence_loop_var_on_both_sides_of_subscript() {
        // a[i + i] = a[2*i]: `i` appears twice in the left subscript; the
        // affine collector must fold it to coeff 2 and prove distance 0.
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N / 2; i++) { a[i + i] = a[2*i]; }\n}";
        assert_eq!(dep_of(src), DepResult::SameIteration);
        // a[i - i] cancels to a constant subscript: every iteration hits
        // element 0 while reading a varying one — SameElement conflict.
        let src2 = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { a[i - i] = a[0] + 1.0; }\n}";
        assert_eq!(dep_of(src2), DepResult::SameElement);
    }

    #[test]
    fn dependence_offset_overflow_is_conservative() {
        // Subscript offsets near the i64 boundary: constant folding and
        // the affine test must degrade to Unanalyzable (or prove
        // independence), never wrap or panic in debug builds.
        let big = i64::MAX;
        let src = format!(
            "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {{ a[i + {big}] = a[i - {big}]; }}\n}}"
        );
        // `i + MAX` is affine (coeff 1, offset MAX); the distance test
        // MAX - (-MAX) overflows and must come back Unknown → Unanalyzable.
        assert_eq!(dep_of(&src), DepResult::Unanalyzable);
        // Constant-folded subscript overflow: MAX + MAX is not a
        // representable constant; the whole expression degrades.
        let src2 = format!(
            "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {{ a[{big} + {big}] = a[i]; }}\n}}"
        );
        assert_eq!(dep_of(&src2), DepResult::Unanalyzable);
        // Scaled-coefficient overflow: MAX * 2 * i cannot be represented.
        let src3 = format!(
            "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {{ a[{big} * i + i] = a[i]; }}\n}}"
        );
        assert_eq!(dep_of(&src3), DepResult::Unanalyzable);
    }

    #[test]
    fn dependence_same_element_and_unknown() {
        let src = "int N;\ndouble a[N]; double b[N];\nint idx[N];\n\
             #pragma acc parallel copy(a) copyin(b) copyin(idx)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { a[0] = b[i]; a[idx[i]] = 1.0; }\n}";
        let p = compile_region(src);
        let body = match &p.regions[0].body[0] {
            HStmt::Loop(l) => l,
            _ => panic!(),
        };
        let mut accs = Vec::new();
        collect_array_accesses(&body.body, &mut accs);
        let varying = varying_syms(&body.body);
        let writes: Vec<_> = accs.iter().filter(|a| a.is_write).collect();
        assert_eq!(
            loop_dependence(writes[0], writes[0], body.var, &varying),
            DepResult::SameElement
        );
        assert_eq!(
            loop_dependence(writes[1], writes[1], body.var, &varying),
            DepResult::Unanalyzable
        );
    }
}
