//! `acclint` — source-level reduction and data-clause dataflow lints.
//!
//! Runs the [`crate::dataflow`] analyses over an [`AnalyzedProgram`] and
//! reports ranked diagnostics. The rule catalog (see DESIGN.md §13):
//!
//! | code | severity | check |
//! |------|----------|-------|
//! | L100 | error    | reduction-shaped accumulation in a parallel loop with no `reduction` clause (fix-it suggests the exact clause and placement, §3.2.1) |
//! | L101 | error    | `reduction` clause placed below the loop whose iterations consume the value (span not fully covered) |
//! | L102 | warning  | reduction variable read (non-update) inside the reduction loop — observes an unspecified partial value |
//! | L103 | warning  | `reduction` clause whose variable is never updated under the loop |
//! | L104 | error    | reduction updates at different parallelism depths (rejected by codegen) |
//! | L200 | error    | loop-carried dependence on affine array subscripts in a parallel loop |
//! | L201 | warning  | unanalyzable subscripts — a carried dependence cannot be excluded |
//! | L210 | note     | carried dependence proven to be a reduction idiom ([`crate::redflow`]) — relaxed; reports the operator, identity and privatization cost |
//! | L211 | error    | reduction-shaped updates that mix operators, or whose running value escapes mid-loop (scan) |
//! | L300 | warning  | `copyin` array never read by the region |
//! | L301 | warning  | `copyout` array never written by the region |
//! | L304 | warning  | `private` variable read before it is assigned |
//! | L400 | warning  | duplicate variable in a clause |
//! | L401 | warning  | data clause shadowed by an enclosing `acc data` binding |
//! | L402 | warning  | data clause names an array the region never references |

use crate::ast::{DataDir, Level, RedOp};
use crate::dataflow::{
    collect_array_accesses, consume_liveness, loop_dependence, loop_key, read_before_write,
    scalar_events, varying_syms, DepResult, Liveness, LoopKey, ScalarEvent, ScalarEventKind,
};
use crate::diag::{Diag, Span};
use crate::hir::{visit_loops, AnalyzedProgram, AnalyzedRegion, HLoop, HStmt, Sym};
use crate::redflow::{self, ArrayRedVerdict};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Machine-readable payload of a lint finding (the diagnostic carries the
/// human-readable rendering; tests and the sweep assert on this).
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    MissingReduction {
        var: String,
        op: RedOp,
        /// Schedule of the loop the clause should be written on.
        clause_loop_levels: Vec<Level>,
        /// Full detected span (paper §3.2.1), outermost level first.
        span_levels: Vec<Level>,
    },
    SpanMismatch {
        var: String,
        /// Parallelism levels between the consume point and the clause
        /// loop that the clause does not cover.
        uncovered: Vec<Level>,
    },
    ReductionReadInside {
        var: String,
    },
    DeadReduction {
        var: String,
    },
    MixedDepthUpdates {
        var: String,
    },
    LoopCarried {
        array: String,
        /// Iteration distance; `None` = every iteration hits the same
        /// element.
        distance: Option<i64>,
    },
    Unanalyzable {
        array: String,
    },
    /// A carried dependence proven benign by the redflow pass: every
    /// touch of the array is an `op`-update, so the conflict commutes.
    ReductionRelaxed {
        array: String,
        op: RedOp,
    },
    /// A reduction idiom that is *not* legal: operators mix, the running
    /// value escapes mid-loop, or a plain write clobbers the accumulator.
    /// `var` names the scalar or array accumulator.
    ReductionIllegal {
        var: String,
    },
    CopyinNeverRead {
        array: String,
    },
    CopyoutNeverWritten {
        array: String,
    },
    PrivateReadBeforeWrite {
        var: String,
    },
    DuplicateClauseVar {
        var: String,
    },
    ShadowedDataClause {
        array: String,
    },
    DeadDataClause {
        array: String,
    },
}

impl FindingKind {
    /// The stable diagnostic code of this finding.
    pub fn code(&self) -> &'static str {
        match self {
            FindingKind::MissingReduction { .. } => "L100",
            FindingKind::SpanMismatch { .. } => "L101",
            FindingKind::ReductionReadInside { .. } => "L102",
            FindingKind::DeadReduction { .. } => "L103",
            FindingKind::MixedDepthUpdates { .. } => "L104",
            FindingKind::LoopCarried { .. } => "L200",
            FindingKind::Unanalyzable { .. } => "L201",
            FindingKind::ReductionRelaxed { .. } => "L210",
            FindingKind::ReductionIllegal { .. } => "L211",
            FindingKind::CopyinNeverRead { .. } => "L300",
            FindingKind::CopyoutNeverWritten { .. } => "L301",
            FindingKind::PrivateReadBeforeWrite { .. } => "L304",
            FindingKind::DuplicateClauseVar { .. } => "L400",
            FindingKind::ShadowedDataClause { .. } => "L401",
            FindingKind::DeadDataClause { .. } => "L402",
        }
    }
}

/// One lint finding: a structured payload plus its rendered diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    pub diag: Diag,
}

impl Finding {
    /// The stable diagnostic code of this finding.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

/// Parse, analyze and lint `src`. A parse/sema error aborts linting.
pub fn lint_source(src: &str) -> Result<(AnalyzedProgram, Vec<Finding>), Diag> {
    let p = crate::compile(src)?;
    let findings = lint_program(&p);
    Ok((p, findings))
}

/// Run every lint over an analyzed program. Findings are ranked errors
/// first, then by source position.
pub fn lint_program(p: &AnalyzedProgram) -> Vec<Finding> {
    let mut out = Vec::new();
    for (ri, r) in p.regions.iter().enumerate() {
        let cx = RegionCx::new(p, r);
        cx.missing_reduction(&mut out);
        cx.reduction_clause_lints(&mut out);
        cx.illegal_scalar_reductions(&mut out);
        cx.loop_carried(&mut out);
        cx.data_clause_lints(ri, &mut out);
        cx.private_lints(&mut out);
        cx.duplicate_lints(&mut out);
    }
    out.sort_by_key(|f| (f.diag.severity, f.diag.span.start, f.diag.span.end));
    out
}

/// A loop together with its enclosing-loop chain (outermost first,
/// excluding the loop itself).
struct LoopInfo<'a> {
    l: &'a HLoop,
    chain: Vec<&'a HLoop>,
}

fn collect_loops<'a>(stmts: &'a [HStmt], chain: &mut Vec<&'a HLoop>, out: &mut Vec<LoopInfo<'a>>) {
    for s in stmts {
        match s {
            HStmt::Loop(l) => {
                out.push(LoopInfo {
                    l,
                    chain: chain.clone(),
                });
                chain.push(l);
                collect_loops(&l.body, chain, out);
                chain.pop();
            }
            HStmt::If { then, els, .. } => {
                collect_loops(then, chain, out);
                collect_loops(els, chain, out);
            }
            _ => {}
        }
    }
}

fn common_prefix_len(a: &[&HLoop], b: &[&HLoop]) -> usize {
    a.iter()
        .zip(b.iter())
        .take_while(|(x, y)| loop_key(x) == loop_key(y))
        .count()
}

fn levels_of(chain: &[&HLoop]) -> Vec<Level> {
    let set: BTreeSet<Level> = chain.iter().flat_map(|l| l.sched.iter().copied()).collect();
    set.into_iter().collect()
}

fn fmt_levels(levels: &[Level]) -> String {
    levels
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Where a scalar's accumulated value is next consumed.
enum ConsumePoint {
    /// Read at the given span, under the given loop depth.
    Read(Span),
    /// Copied back to the host after the region.
    RegionExit,
}

struct RegionCx<'a> {
    p: &'a AnalyzedProgram,
    r: &'a AnalyzedRegion,
    events: Vec<ScalarEvent<'a>>,
    loops: Vec<LoopInfo<'a>>,
    liveness: Liveness,
    hosts_written: HashSet<Sym>,
}

impl<'a> RegionCx<'a> {
    fn new(p: &'a AnalyzedProgram, r: &'a AnalyzedRegion) -> Self {
        let events = scalar_events(&r.body);
        let mut loops = Vec::new();
        collect_loops(&r.body, &mut Vec::new(), &mut loops);
        let hosts_written: HashSet<Sym> = r.hosts_written.iter().map(|h| Sym::Host(*h)).collect();
        let liveness = consume_liveness(&r.body, &hosts_written);
        RegionCx {
            p,
            r,
            events,
            loops,
            liveness,
            hosts_written,
        }
    }

    fn sym_name(&self, sym: Sym) -> &str {
        match sym {
            Sym::Host(h) => &self.p.hosts[h].name,
            Sym::Local(l) => &self.r.locals[l].name,
        }
    }

    fn array_name(&self, a: usize) -> &str {
        &self.p.arrays[a].name
    }

    /// Find the shallowest consume point of `sym`'s updates: the place its
    /// accumulated value is next used (paper §3.2.1's placement question).
    /// Returns the consume-chain depth plus the witnessing point, or
    /// `None` when the value is never consumed. Sets `*intra_loop` when a
    /// read observes the running value inside the updates' innermost loop
    /// (a scan, not a reduction).
    fn consume_point(
        &self,
        updates: &[&ScalarEvent<'a>],
        reads: &[&ScalarEvent<'a>],
        sym: Sym,
        intra_loop: &mut bool,
    ) -> Option<(usize, ConsumePoint)> {
        let mut best: Option<(usize, ConsumePoint)> = None;
        for u in updates {
            for rd in reads {
                let eff = common_prefix_len(&rd.chain, &u.chain);
                if eff == u.chain.len() {
                    *intra_loop = true;
                } else if (rd.order > u.order || eff > 0)
                    && best.as_ref().is_none_or(|(d, _)| eff < *d)
                {
                    best = Some((eff, ConsumePoint::Read(rd.span)));
                }
            }
        }
        if self.hosts_written.contains(&sym) {
            best = Some((0, ConsumePoint::RegionExit));
        }
        best
    }

    // ---- L100 -----------------------------------------------------------

    fn missing_reduction(&self, out: &mut Vec<Finding>) {
        let mut syms: Vec<Sym> = Vec::new();
        for ev in &self.events {
            if matches!(ev.kind, ScalarEventKind::Update(_)) && !syms.contains(&ev.sym) {
                syms.push(ev.sym);
            }
        }
        for sym in syms {
            // A clause already covers this symbol somewhere: partial
            // coverage is L101's job.
            if self
                .events
                .iter()
                .any(|e| e.sym == sym && matches!(e.kind, ScalarEventKind::ClauseUpdate(_)))
            {
                continue;
            }
            let updates: Vec<&ScalarEvent<'a>> = self
                .events
                .iter()
                .filter(|e| e.sym == sym && matches!(e.kind, ScalarEventKind::Update(_)))
                .collect();
            let reads: Vec<&ScalarEvent<'a>> = self
                .events
                .iter()
                .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Read)
                .collect();
            let writes: Vec<&ScalarEvent<'a>> = self
                .events
                .iter()
                .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Write)
                .collect();
            let mut intra_loop = false;
            let Some((depth, point)) = self.consume_point(&updates, &reads, sym, &mut intra_loop)
            else {
                continue; // value never consumed: dead accumulation
            };
            if intra_loop {
                continue; // running value observed per iteration: a scan
            }
            // Group updates by the loop the clause belongs on: the loop
            // just inside the consume point, along each update's chain.
            let mut groups: BTreeMap<LoopKey, Vec<&ScalarEvent<'a>>> = BTreeMap::new();
            for u in &updates {
                if u.chain.len() > depth {
                    groups.entry(loop_key(u.chain[depth])).or_default().push(u);
                }
            }
            for us in groups.values() {
                self.report_missing_reduction(sym, depth, &point, us, &writes, out);
            }
        }
    }

    fn report_missing_reduction(
        &self,
        sym: Sym,
        depth: usize,
        point: &ConsumePoint,
        updates: &[&ScalarEvent<'a>],
        writes: &[&ScalarEvent<'a>],
        out: &mut Vec<Finding>,
    ) {
        let candidate = updates[0].chain[depth];
        let ScalarEventKind::Update(op) = updates[0].kind else {
            return;
        };
        // All updates must agree on the operator to suggest one clause.
        if updates
            .iter()
            .any(|u| u.kind != ScalarEventKind::Update(op))
        {
            return;
        }
        // A plain write inside the candidate loop re-initializes the
        // accumulator every iteration: no cross-iteration accumulation.
        let cand_chain = &updates[0].chain[..depth + 1];
        if writes.iter().any(|w| {
            w.chain.len() >= cand_chain.len()
                && common_prefix_len(&w.chain, cand_chain) == cand_chain.len()
        }) {
            return;
        }
        // Detected span (§3.2.1): every parallelism level from the
        // candidate loop down to each update site.
        let mut span_levels: BTreeSet<Level> = BTreeSet::new();
        for u in updates {
            span_levels.extend(levels_of(&u.chain[depth..]));
        }
        let span_levels: Vec<Level> = span_levels.into_iter().collect();
        if span_levels.is_empty() {
            return; // purely sequential accumulation is fine
        }
        // The accumulated value must actually survive the candidate loop.
        if !self.hosts_written.contains(&sym)
            && !self
                .liveness
                .live_after_loop
                .get(&loop_key(candidate))
                .is_some_and(|s| s.contains(&sym))
        {
            return;
        }
        let var = self.sym_name(sym).to_string();
        let clause = format!("reduction({}:{})", op.clause_token(), var);
        let cand_sched = candidate.sched.clone();
        let loop_desc = if cand_sched.is_empty() {
            "loop".to_string()
        } else {
            format!("`{}` loop", fmt_levels(&cand_sched))
        };
        let mut diag = Diag::new(
            format!(
                "`{var}` is accumulated across iterations of a parallel loop \
                 without a `reduction` clause"
            ),
            updates[0].span,
        )
        .with_code("L100")
        .with_note(format!(
            "concurrent iterations race on the read-modify-write of `{var}`"
        ));
        diag = match point {
            ConsumePoint::Read(span) => diag.with_note_at(
                format!("the accumulated value of `{var}` is next used here"),
                *span,
            ),
            ConsumePoint::RegionExit => diag.with_note(format!(
                "the accumulated value of `{var}` is copied back to the host after the region"
            )),
        };
        diag = diag
            .with_note(format!(
                "detected reduction span: {} (every parallelism level between \
                 the next use and the update)",
                fmt_levels(&span_levels)
            ))
            .with_fixit(
                format!("add this clause to the {loop_desc}"),
                clause,
                candidate.span,
            );
        out.push(Finding {
            kind: FindingKind::MissingReduction {
                var,
                op,
                clause_loop_levels: cand_sched,
                span_levels,
            },
            diag,
        });
    }

    // ---- L101 / L102 / L103 / L104 --------------------------------------

    fn reduction_clause_lints(&self, out: &mut Vec<Finding>) {
        for info in &self.loops {
            for red in &info.l.reductions {
                let var = self.sym_name(red.sym).to_string();
                if !red.has_update {
                    out.push(Finding {
                        kind: FindingKind::DeadReduction { var: var.clone() },
                        diag: Diag::warning(
                            format!(
                                "`reduction` clause on `{var}`, but `{var}` is never \
                                 updated under this loop"
                            ),
                            red.span,
                        )
                        .with_code("L103")
                        .with_note("the clause has no effect; remove it or add the update"),
                    });
                    continue;
                }
                if red.mixed_updates {
                    out.push(Finding {
                        kind: FindingKind::MixedDepthUpdates { var: var.clone() },
                        diag: Diag::new(
                            format!(
                                "reduction variable `{var}` is updated at different \
                                 parallelism depths"
                            ),
                            red.span,
                        )
                        .with_code("L104")
                        .with_note(
                            "a single per-thread accumulator over-counts the shallower \
                             update site; hoist the updates to one depth",
                        ),
                    });
                }
                self.span_mismatch(info, red, &var, out);
                self.read_inside_clause_loop(info, red, &var, out);
            }
        }
    }

    fn span_mismatch(
        &self,
        info: &LoopInfo<'a>,
        red: &crate::hir::Reduction,
        var: &str,
        out: &mut Vec<Finding>,
    ) {
        let sym = red.sym;
        let updates: Vec<&ScalarEvent<'a>> = self
            .events
            .iter()
            .filter(|e| {
                e.sym == sym
                    && matches!(e.kind, ScalarEventKind::ClauseUpdate(_))
                    && e.chain.iter().any(|l| loop_key(l) == loop_key(info.l))
            })
            .collect();
        if updates.is_empty() {
            return;
        }
        let reads: Vec<&ScalarEvent<'a>> = self
            .events
            .iter()
            .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Read)
            .collect();
        let mut intra_loop = false;
        let Some((depth, _)) = self.consume_point(&updates, &reads, sym, &mut intra_loop) else {
            return;
        };
        let clause_depth = info.chain.len();
        if depth >= clause_depth {
            return; // clause sits at (or above) the consume point
        }
        // Parallelism levels between the consume point and the clause
        // loop: combined outside the clause's coverage.
        let uncovered = levels_of(&info.chain[depth..]);
        if uncovered.is_empty() {
            return; // only sequential loops in between: no race
        }
        let required = info.chain[depth];
        let clause = format!("reduction({}:{})", red.op.clause_token(), var);
        out.push(Finding {
            kind: FindingKind::SpanMismatch {
                var: var.to_string(),
                uncovered: uncovered.clone(),
            },
            diag: Diag::new(
                format!(
                    "`reduction` clause on `{var}` does not cover every parallelism \
                     level that combines it"
                ),
                red.span,
            )
            .with_code("L101")
            .with_note(format!(
                "the value of `{var}` is also combined across the `{}` level(s), \
                 outside this clause's loop",
                fmt_levels(&uncovered)
            ))
            .with_fixit(
                format!(
                    "move the clause to the outer `{}` loop (the compiler widens the \
                     span down to the updates, \u{00a7}3.2.1)",
                    fmt_levels(&required.sched)
                ),
                clause,
                required.span,
            ),
        });
    }

    fn read_inside_clause_loop(
        &self,
        info: &LoopInfo<'a>,
        red: &crate::hir::Reduction,
        var: &str,
        out: &mut Vec<Finding>,
    ) {
        let key = loop_key(info.l);
        for rd in self.events.iter().filter(|e| {
            e.sym == red.sym
                && e.kind == ScalarEventKind::Read
                && e.chain.iter().any(|l| loop_key(l) == key)
        }) {
            out.push(Finding {
                kind: FindingKind::ReductionReadInside {
                    var: var.to_string(),
                },
                diag: Diag::warning(
                    format!("reduction variable `{var}` is read inside the reduction loop"),
                    rd.span,
                )
                .with_code("L102")
                .with_note(
                    "the value observed here is an unspecified partial accumulation; \
                     only the value after the loop is defined",
                )
                .with_note_at("the `reduction` clause is here", red.span),
            });
        }
    }

    // ---- L211 (scalar accumulators) -------------------------------------

    /// Flag illegal scalar reduction idioms: updates of one accumulator
    /// mixing operators within one parallel loop nest, and clause-less
    /// accumulators whose running value is consumed inside the updates'
    /// innermost loop (a scan — `missing_reduction` deliberately stays
    /// silent on both shapes, since no single `reduction` clause fixes
    /// them; this pass reports them as errors instead).
    fn illegal_scalar_reductions(&self, out: &mut Vec<Finding>) {
        fn sym_key(s: Sym) -> (u8, usize) {
            match s {
                Sym::Host(h) => (0, h),
                Sym::Local(l) => (1, l),
            }
        }
        // Group update events per (sym, outermost loop of the nest): all
        // updates under one top-level loop combine into one accumulator,
        // so that is the scope an operator mix corrupts.
        let mut groups: BTreeMap<((u8, usize), LoopKey), Vec<&ScalarEvent<'a>>> = BTreeMap::new();
        for ev in &self.events {
            if !matches!(
                ev.kind,
                ScalarEventKind::Update(_) | ScalarEventKind::ClauseUpdate(_)
            ) {
                continue;
            }
            if ev.chain.is_empty() || levels_of(&ev.chain).is_empty() {
                continue; // sequential accumulation: any shape is fine
            }
            groups
                .entry((sym_key(ev.sym), loop_key(ev.chain[0])))
                .or_default()
                .push(ev);
        }
        for evs in groups.values() {
            let sym = evs[0].sym;
            let var = self.sym_name(sym).to_string();
            let op_of = |e: &ScalarEvent<'_>| match e.kind {
                ScalarEventKind::Update(op) | ScalarEventKind::ClauseUpdate(op) => op,
                _ => unreachable!(),
            };
            let first_op = op_of(evs[0]);
            if let Some(second) = evs.iter().find(|e| op_of(e) != first_op) {
                out.push(Finding {
                    kind: FindingKind::ReductionIllegal { var: var.clone() },
                    diag: Diag::new(
                        format!(
                            "reduction updates of `{var}` mix `{first_op}` and `{}` \
                             operators in one parallel loop nest",
                            op_of(second)
                        ),
                        second.span,
                    )
                    .with_code("L211")
                    .with_note_at(
                        format!("the first update uses `{first_op}` here"),
                        evs[0].span,
                    )
                    .with_note(
                        "mixed operators combine order-sensitively and cannot be \
                         privatized; use one operator per accumulator",
                    ),
                });
                continue;
            }
            // Escape check only for clause-less accumulators (a read
            // inside a clause's loop is L102's warning).
            if evs
                .iter()
                .any(|e| matches!(e.kind, ScalarEventKind::ClauseUpdate(_)))
            {
                continue;
            }
            let escape = self
                .events
                .iter()
                .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Read)
                .find_map(|rd| {
                    evs.iter()
                        .find(|u| common_prefix_len(&rd.chain, &u.chain) == u.chain.len())
                        .map(|u| (rd.span, u.span))
                });
            if let Some((read, update)) = escape {
                out.push(Finding {
                    kind: FindingKind::ReductionIllegal { var: var.clone() },
                    diag: Diag::new(
                        format!(
                            "the running value of `{var}` is consumed inside the \
                             parallel loop that accumulates it (a scan, not a reduction)"
                        ),
                        read,
                    )
                    .with_code("L211")
                    .with_note_at(format!("`{var}` is accumulated here"), update)
                    .with_note(
                        "each iteration observes an unspecified partial value under \
                         parallel execution; a reduction clause cannot express this — \
                         mark the loop `seq` or restructure as a scan primitive",
                    ),
                });
            }
        }
    }

    // ---- L200 / L201 / L210 / L211 (arrays) ------------------------------

    fn loop_carried(&self, out: &mut Vec<Finding>) {
        // Pass 1: per (parallel loop, array), collect every non-benign
        // dependence pair as evidence, then classify the array against
        // the redflow reduction lattice.
        struct DepGroup {
            /// Loop-nest path of the reporting loop: the keys of every
            /// enclosing loop, outermost first, ending with the loop
            /// itself. `a.path` being a proper prefix of `b.path` means
            /// `a`'s loop encloses `b`'s.
            path: Vec<LoopKey>,
            array: usize,
            /// (dependence, write span, other-access span) pairs.
            evidence: Vec<(DepResult, Span, Span)>,
            verdict: ArrayRedVerdict,
            /// Parallelism levels of the loop and everything nested in it
            /// (the span a privatized accumulator must cover).
            levels: Vec<crate::ast::Level>,
        }
        let mut groups: Vec<DepGroup> = Vec::new();
        for info in &self.loops {
            if info.l.sched.is_empty() {
                continue;
            }
            let mut accs = Vec::new();
            collect_array_accesses(&info.l.body, &mut accs);
            let varying = varying_syms(&info.l.body);
            let mut per_array: BTreeMap<usize, Vec<(DepResult, Span, Span)>> = BTreeMap::new();
            for w in accs.iter().filter(|a| a.is_write) {
                for o in accs.iter().filter(|a| a.array == w.array) {
                    let dep = loop_dependence(w, o, info.l.var, &varying);
                    if matches!(dep, DepResult::Independent | DepResult::SameIteration) {
                        continue;
                    }
                    per_array
                        .entry(w.array)
                        .or_default()
                        .push((dep, w.span, o.span));
                }
            }
            if per_array.is_empty() {
                continue;
            }
            let mut lvls: BTreeSet<crate::ast::Level> = info.l.sched.iter().copied().collect();
            visit_loops(&info.l.body, &mut |nl| {
                lvls.extend(nl.sched.iter().copied());
            });
            let levels: Vec<crate::ast::Level> = lvls.into_iter().collect();
            let mut path: Vec<LoopKey> = info.chain.iter().map(|l| loop_key(l)).collect();
            path.push(loop_key(info.l));
            for (array, evidence) in per_array {
                groups.push(DepGroup {
                    path: path.clone(),
                    array,
                    evidence,
                    verdict: redflow::classify_array_reduction(&info.l.body, array),
                    levels: levels.clone(),
                });
            }
        }
        // Pass 2: cross-nested-loop dedupe. A loop nest often yields the
        // same story twice (once per enclosing parallel loop); keep the
        // most informative verdict per array.
        let encloses = |a: &[LoopKey], b: &[LoopKey]| a.len() < b.len() && b.starts_with(a);
        let nested = |a: &[LoopKey], b: &[LoopKey]| encloses(a, b) || encloses(b, a);
        let unana_only = |g: &DepGroup| {
            matches!(g.verdict, ArrayRedVerdict::NotReduction)
                && g.evidence
                    .iter()
                    .all(|(d, _, _)| matches!(d, DepResult::Unanalyzable))
        };
        let keep: Vec<bool> = groups
            .iter()
            .map(|g| {
                // Duplicate proven verdicts across a nest: the outermost
                // loop's report covers the whole nest.
                if matches!(g.verdict, ArrayRedVerdict::Proven { .. })
                    && groups.iter().any(|g2| {
                        g2.array == g.array
                            && matches!(g2.verdict, ArrayRedVerdict::Proven { .. })
                            && encloses(&g2.path, &g.path)
                    })
                {
                    return false;
                }
                // An unanalyzable-only finding is noise when a nested (or
                // enclosing) loop resolves the same array to a definite
                // verdict.
                if unana_only(g)
                    && groups.iter().any(|g2| {
                        g2.array == g.array && !unana_only(g2) && nested(&g2.path, &g.path)
                    })
                {
                    return false;
                }
                true
            })
            .collect();
        for (g, keep) in groups.iter().zip(keep) {
            if keep {
                self.report_dep_group(g.array, &g.evidence, &g.verdict, &g.levels, out);
            }
        }
    }

    /// Emit the single finding for one (loop, array) dependence group.
    fn report_dep_group(
        &self,
        array: usize,
        evidence: &[(DepResult, Span, Span)],
        verdict: &ArrayRedVerdict,
        levels: &[crate::ast::Level],
        out: &mut Vec<Finding>,
    ) {
        let array_name = self.array_name(array).to_string();
        match *verdict {
            ArrayRedVerdict::Proven { op, update, sites } => {
                let is_float = self.p.arrays[array].ty.is_float();
                let witness = match evidence[0].0 {
                    DepResult::Carried(k) => format!(
                        "iterations at distance {k} touch the same element of `{array_name}`"
                    ),
                    DepResult::SameElement => {
                        format!("every iteration touches the same element of `{array_name}`")
                    }
                    _ => format!(
                        "the subscripts of `{array_name}` are not analyzable, so a \
                         carried conflict cannot be excluded"
                    ),
                };
                let mut diag = Diag::note(
                    format!(
                        "carried accesses on `{array_name}` form a `{op}` reduction; \
                         the dependence is relaxed"
                    ),
                    update,
                )
                .with_code("L210")
                .with_note(format!(
                    "proof: all {sites} store(s) to `{array_name}` in this parallel \
                     loop are `{array_name}[e] {op}= v` updates with no other read or \
                     write of `{array_name}`, so any interleaving commutes"
                ))
                .with_note(format!(
                    "identity: {}; privatization cost: {}",
                    redflow::identity_text(op, is_float),
                    redflow::privatization_cost(levels)
                ));
                diag = diag.with_note_at(witness, evidence[0].2);
                out.push(Finding {
                    kind: FindingKind::ReductionRelaxed {
                        array: array_name,
                        op,
                    },
                    diag,
                });
            }
            ArrayRedVerdict::Mixed {
                first_op,
                second_op,
                first,
                second,
            } => {
                out.push(Finding {
                    kind: FindingKind::ReductionIllegal {
                        var: array_name.clone(),
                    },
                    diag: Diag::new(
                        format!(
                            "reduction updates of `{array_name}` mix `{first_op}` and \
                             `{second_op}` operators in a parallel loop"
                        ),
                        second,
                    )
                    .with_code("L211")
                    .with_note_at(format!("the first update uses `{first_op}` here"), first)
                    .with_note(
                        "mixed operators combine order-sensitively and cannot be \
                         privatized; use one operator per accumulator",
                    ),
                });
            }
            ArrayRedVerdict::Escape { update, read } => {
                out.push(Finding {
                    kind: FindingKind::ReductionIllegal {
                        var: array_name.clone(),
                    },
                    diag: Diag::new(
                        format!(
                            "`{array_name}` is updated like a reduction but its running \
                             value is read mid-loop"
                        ),
                        read,
                    )
                    .with_code("L211")
                    .with_note_at(
                        format!("the reduction-shaped update of `{array_name}` is here"),
                        update,
                    )
                    .with_note(
                        "the partial value observed here is unspecified under parallel \
                         execution; the dependence cannot be relaxed",
                    ),
                });
            }
            ArrayRedVerdict::Overwrite { update, write } => {
                out.push(Finding {
                    kind: FindingKind::ReductionIllegal {
                        var: array_name.clone(),
                    },
                    diag: Diag::new(
                        format!(
                            "`{array_name}` is updated like a reduction but also \
                             plainly overwritten in the same loop"
                        ),
                        write,
                    )
                    .with_code("L211")
                    .with_note_at(
                        format!("the reduction-shaped update of `{array_name}` is here"),
                        update,
                    )
                    .with_note(
                        "the overwrite discards concurrent accumulation; every store \
                         must use the same `op=` update shape",
                    ),
                });
            }
            ArrayRedVerdict::NotReduction => {
                self.report_unproven_group(&array_name, evidence, out);
            }
        }
    }

    /// The classic L200/L201 report, deduplicated: one finding per
    /// (loop, array) with additional access pairs attached as notes.
    fn report_unproven_group(
        &self,
        array: &str,
        evidence: &[(DepResult, Span, Span)],
        out: &mut Vec<Finding>,
    ) {
        let carried: Vec<&(DepResult, Span, Span)> = evidence
            .iter()
            .filter(|(d, _, _)| matches!(d, DepResult::Carried(_) | DepResult::SameElement))
            .collect();
        let unana = evidence.len() - carried.len();
        if let Some((dep, wspan, ospan)) = carried.first() {
            let (distance, mut diag) = match dep {
                DepResult::Carried(k) => (
                    Some(*k),
                    Diag::new(
                        format!(
                            "loop-carried dependence on `{array}` in a \
                             parallel loop (iteration distance {k})"
                        ),
                        *wspan,
                    )
                    .with_code("L200")
                    .with_note_at(
                        format!(
                            "this access touches the element written {k} \
                             iteration(s) away",
                        ),
                        *ospan,
                    )
                    .with_note(
                        "parallel iterations execute in arbitrary order; \
                         mark the loop `seq` or restructure the recurrence",
                    ),
                ),
                _ => (
                    None,
                    Diag::new(
                        format!(
                            "every iteration of this parallel loop accesses \
                             the same element of `{array}`"
                        ),
                        *wspan,
                    )
                    .with_code("L200")
                    .with_note(
                        "concurrent iterations race on one element; if this \
                         is a reduction, accumulate into a scalar",
                    ),
                ),
            };
            // Remaining conflicting pairs ride along as notes instead of
            // repeating the diagnostic once per access pair.
            for (dep, _, ospan) in carried.iter().skip(1).take(3) {
                let desc = match dep {
                    DepResult::Carried(k) => format!("iteration distance {k}"),
                    _ => "same element every iteration".to_string(),
                };
                diag = diag.with_note_at(
                    format!("another conflicting access pair on `{array}` ({desc})"),
                    *ospan,
                );
            }
            if carried.len() > 4 {
                diag = diag.with_note(format!(
                    "{} more conflicting access pair(s) on `{array}` in this loop",
                    carried.len() - 4
                ));
            }
            if unana > 0 {
                diag = diag.with_note(format!(
                    "{unana} further access pair(s) on `{array}` have unanalyzable \
                     subscripts"
                ));
            }
            out.push(Finding {
                kind: FindingKind::LoopCarried {
                    array: array.to_string(),
                    distance,
                },
                diag,
            });
        } else {
            let (_, wspan, _) = evidence[0];
            let mut diag = Diag::warning(
                format!(
                    "cannot analyze the subscripts of `{array}`; a \
                     loop-carried dependence cannot be excluded"
                ),
                wspan,
            )
            .with_code("L201")
            .with_note(
                "subscripts must be affine in the loop variable for \
                 the dependence test; verify iterations are independent",
            );
            if evidence.len() > 1 {
                diag = diag.with_note(format!(
                    "{} more unanalyzable access pair(s) on `{array}` in this loop",
                    evidence.len() - 1
                ));
            }
            out.push(Finding {
                kind: FindingKind::Unanalyzable {
                    array: array.to_string(),
                },
                diag,
            });
        }
    }

    // ---- L300 / L301 / L401 / L402 --------------------------------------

    fn data_clause_lints(&self, ri: usize, out: &mut Vec<Finding>) {
        let mut accs = Vec::new();
        collect_array_accesses(&self.r.body, &mut accs);
        let read: HashSet<usize> = accs
            .iter()
            .filter(|a| !a.is_write)
            .map(|a| a.array)
            .collect();
        let written: HashSet<usize> = accs
            .iter()
            .filter(|a| a.is_write)
            .map(|a| a.array)
            .collect();
        for b in self.r.data.iter().filter(|b| !b.implied) {
            let array = self.array_name(b.array).to_string();
            let is_read = read.contains(&b.array);
            let is_written = written.contains(&b.array);
            if !is_read && !is_written {
                out.push(Finding {
                    kind: FindingKind::DeadDataClause {
                        array: array.clone(),
                    },
                    diag: Diag::warning(
                        format!(
                            "data clause names `{array}`, but the region never \
                             references it"
                        ),
                        self.r.span,
                    )
                    .with_code("L402")
                    .with_note("remove the clause to avoid a useless transfer"),
                });
                continue;
            }
            match b.dir {
                DataDir::CopyIn if !is_read => {
                    let mut d = Diag::warning(
                        format!("`copyin({array})` but the region never reads `{array}`"),
                        self.r.span,
                    )
                    .with_code("L300");
                    d = if is_written {
                        d.with_note(format!(
                            "the region only writes `{array}`; use `copyout({array})` \
                             (or `create({array})` if the host never reads it back)"
                        ))
                    } else {
                        d.with_note("the host-to-device transfer is wasted")
                    };
                    out.push(Finding {
                        kind: FindingKind::CopyinNeverRead { array },
                        diag: d,
                    });
                }
                DataDir::CopyOut if !is_written => {
                    let mut d = Diag::warning(
                        format!("`copyout({array})` but the region never writes `{array}`"),
                        self.r.span,
                    )
                    .with_code("L301")
                    .with_note(
                        "the device-to-host transfer copies back unmodified (or \
                         uninitialized) data",
                    );
                    if is_read {
                        d = d.with_note(format!(
                            "the region only reads `{array}`; use `copyin({array})`"
                        ));
                    }
                    out.push(Finding {
                        kind: FindingKind::CopyoutNeverWritten { array },
                        diag: d,
                    });
                }
                _ => {}
            }
        }
        // L401: explicit movement clause on an array already resident via
        // an enclosing structured `acc data` scope.
        for ds in &self.p.data_scopes {
            if !(ds.first_region <= ri && ri < ds.end_region) {
                continue;
            }
            for b in self.r.data.iter().filter(|b| !b.implied) {
                if b.dir == DataDir::Present {
                    continue;
                }
                if ds.bindings.iter().any(|(a, _)| *a == b.array) {
                    let array = self.array_name(b.array).to_string();
                    out.push(Finding {
                        kind: FindingKind::ShadowedDataClause {
                            array: array.clone(),
                        },
                        diag: Diag::warning(
                            format!(
                                "data clause on `{array}` is shadowed by an enclosing \
                                 `acc data` region"
                            ),
                            self.r.span,
                        )
                        .with_code("L401")
                        .with_note(format!(
                            "`{array}` is already resident; the clause moves no data \
                             (present-or-copy semantics) — write `present({array})` to \
                             state the intent"
                        )),
                    });
                }
            }
        }
    }

    // ---- L304 -----------------------------------------------------------

    fn private_lints(&self, out: &mut Vec<Finding>) {
        #[allow(clippy::type_complexity)]
        let scopes: Vec<(&[(Sym, Span)], &[HStmt])> =
            std::iter::once((self.r.privates.as_slice(), self.r.body.as_slice()))
                .chain(
                    self.loops
                        .iter()
                        .map(|i| (i.l.privates.as_slice(), i.l.body.as_slice())),
                )
                .collect();
        for (privates, body) in scopes {
            if privates.is_empty() {
                continue;
            }
            let tracked: HashSet<Sym> = privates
                .iter()
                .map(|(s, _)| *s)
                .filter(|s| match s {
                    Sym::Local(l) => !self.r.locals[*l].is_loop_var,
                    Sym::Host(_) => true,
                })
                .collect();
            if tracked.is_empty() {
                continue;
            }
            for (sym, span) in read_before_write(body, &tracked, &HashSet::new()) {
                let var = self.sym_name(sym).to_string();
                out.push(Finding {
                    kind: FindingKind::PrivateReadBeforeWrite { var: var.clone() },
                    diag: Diag::warning(
                        format!("private variable `{var}` may be read before it is assigned"),
                        span,
                    )
                    .with_code("L304")
                    .with_note(
                        "each thread's private copy starts uninitialized; assignments \
                         outside the construct do not initialize it",
                    ),
                });
            }
        }
    }

    // ---- L400 -----------------------------------------------------------

    fn duplicate_lints(&self, out: &mut Vec<Finding>) {
        // Duplicate `private` items (region construct and each loop).
        let lists = std::iter::once(self.r.privates.as_slice())
            .chain(self.loops.iter().map(|i| i.l.privates.as_slice()));
        for privates in lists {
            let mut seen: HashSet<Sym> = HashSet::new();
            for (sym, span) in privates {
                if !seen.insert(*sym) {
                    let var = self.sym_name(*sym).to_string();
                    out.push(Finding {
                        kind: FindingKind::DuplicateClauseVar { var: var.clone() },
                        diag: Diag::warning(
                            format!("`{var}` appears more than once in `private` clauses"),
                            *span,
                        )
                        .with_code("L400")
                        .with_note("the duplicate entry has no effect"),
                    });
                }
            }
        }
        // Duplicate reduction variables on one loop directive.
        for info in &self.loops {
            let mut seen: HashSet<Sym> = HashSet::new();
            for red in &info.l.reductions {
                if !seen.insert(red.sym) {
                    let var = self.sym_name(red.sym).to_string();
                    out.push(Finding {
                        kind: FindingKind::DuplicateClauseVar { var: var.clone() },
                        diag: Diag::warning(
                            format!(
                                "`{var}` appears in more than one `reduction` clause on \
                                 this loop"
                            ),
                            red.span,
                        )
                        .with_code("L400")
                        .with_note("only one reduction operator can apply per variable"),
                    });
                }
            }
        }
        // Duplicate arrays in the region's explicit data clauses.
        let mut seen: HashSet<usize> = HashSet::new();
        for b in self.r.data.iter().filter(|b| !b.implied) {
            if !seen.insert(b.array) {
                let array = self.array_name(b.array).to_string();
                out.push(Finding {
                    kind: FindingKind::DuplicateClauseVar { var: array.clone() },
                    diag: Diag::warning(
                        format!("`{array}` appears in more than one data clause"),
                        self.r.span,
                    )
                    .with_code("L400")
                    .with_note("the first clause wins; remove the duplicate"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let (_, f) = lint_source(src).expect("compile");
        f
    }

    fn codes(src: &str) -> Vec<&'static str> {
        findings(src).iter().map(|f| f.code()).collect()
    }

    #[test]
    fn missing_reduction_simple() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang vector\nfor (int i = 0; i < N; i++) { s = s + a[i]; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        match &f[0].kind {
            FindingKind::MissingReduction {
                var,
                op,
                span_levels,
                ..
            } => {
                assert_eq!(var, "s");
                assert_eq!(*op, RedOp::Add);
                assert_eq!(span_levels, &[Level::Gang, Level::Vector]);
            }
            k => panic!("wrong kind {k:?}"),
        }
        let fix = f[0].diag.fixit().expect("fixit");
        assert_eq!(fix.insert, "reduction(+:s)");
    }

    #[test]
    fn missing_reduction_nested_span() {
        // Update in the vector loop, consumed at region exit: the span
        // covers both levels; the clause belongs on the gang loop.
        let src = "int N; int M; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             #pragma acc loop vector\nfor (int j = 0; j < M; j++) { s += a[i * M + j]; }\n}\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        match &f[0].kind {
            FindingKind::MissingReduction {
                clause_loop_levels,
                span_levels,
                ..
            } => {
                assert_eq!(clause_loop_levels, &[Level::Gang]);
                assert_eq!(span_levels, &[Level::Gang, Level::Vector]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn missing_reduction_consumed_per_gang_iteration() {
        // Accumulator re-initialized and consumed inside the gang loop:
        // only the vector level reduces.
        let src = "int N; int M;\ndouble a[N]; double out[N];\n\
             #pragma acc parallel copyin(a) copyout(out)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             double t = 0.0;\n\
             #pragma acc loop vector\nfor (int j = 0; j < M; j++) { t += a[i * M + j]; }\n\
             out[i] = t;\n}\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        match &f[0].kind {
            FindingKind::MissingReduction {
                var,
                clause_loop_levels,
                span_levels,
                ..
            } => {
                assert_eq!(var, "t");
                assert_eq!(clause_loop_levels, &[Level::Vector]);
                assert_eq!(span_levels, &[Level::Vector]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn sequential_accumulation_is_clean() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop seq\nfor (int i = 0; i < N; i++) { s += a[i]; }\n}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn scan_pattern_is_not_reported() {
        // Running value consumed every iteration: a scan, not a reduction.
        let src = "int N; double s;\ndouble a[N]; double b[N];\ns = 0;\n\
             #pragma acc parallel copyin(a) copyout(b)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { s += a[i]; b[i] = s; }\n}";
        let c = codes(src);
        assert!(!c.contains(&"L100"), "{c:?}");
        // ...but it is an L211: the running value escapes every iteration.
        assert!(c.contains(&"L211"), "{c:?}");
    }

    #[test]
    fn scalar_mixed_operators_are_l211() {
        // `s` is accumulated with `+` at gang depth and `*` at vector
        // depth: no single reduction clause makes this legal.
        let src = "int N; double s;\ndouble a[N]; double b[N];\ns = 1;\n\
             #pragma acc parallel copyin(a,b)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             s += a[i];\n\
             #pragma acc loop vector\nfor (int j = 0; j < N; j++) { s *= b[j]; }\n}\n}";
        let f = findings(src);
        let l211: Vec<_> = f.iter().filter(|x| x.code() == "L211").collect();
        assert_eq!(l211.len(), 1, "{f:?}");
        assert_eq!(
            l211[0].kind,
            FindingKind::ReductionIllegal { var: "s".into() }
        );
        // No L100 fix-it should be offered for an unfixable shape.
        assert!(!codes(src).contains(&"L100"));
    }

    #[test]
    fn disjoint_sequential_loops_may_mix_operators() {
        // Two separate top-level parallel loops each using one operator:
        // legal (each has its own clause), no L211.
        let src = "int N; double s; double p;\ndouble a[N];\ns = 0; p = 1;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; }\n\
             #pragma acc loop gang reduction(*:p)\n\
             for (int i = 0; i < N; i++) { p *= a[i]; }\n}";
        assert!(codes(src).is_empty(), "{:?}", codes(src));
    }

    #[test]
    fn clean_reduction_has_no_findings() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang vector reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; }\n}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn span_mismatch_reported() {
        // Clause on the vector loop, but the value is combined across the
        // gang level too (consumed after the gang loop). Sema rejects this
        // shape for host scalars outright, so the lint covers the
        // region-local case.
        let src = "int N; int M;\ndouble a[N]; double out[N];\n\
             #pragma acc parallel copyin(a) copyout(out)\n{\n\
             double s = 0.0;\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             #pragma acc loop vector reduction(+:s)\n\
             for (int j = 0; j < M; j++) { s += a[i * M + j]; }\n}\n\
             out[0] = s;\n}";
        let f = findings(src);
        let sm: Vec<_> = f.iter().filter(|f| f.code() == "L101").collect();
        assert_eq!(sm.len(), 1, "{f:?}");
        match &sm[0].kind {
            FindingKind::SpanMismatch { var, uncovered } => {
                assert_eq!(var, "s");
                assert_eq!(uncovered, &[Level::Gang]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn dead_reduction_clause() {
        let src = "int N; double s;\ndouble a[N]; double b[N];\ns = 0;\n\
             #pragma acc parallel copyin(a) copyout(b)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { b[i] = a[i]; }\n}";
        assert_eq!(codes(src), vec!["L103"]);
    }

    #[test]
    fn loop_carried_dependence() {
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 1; i < N; i++) { a[i] = a[i - 1] + 1.0; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            f[0].kind,
            FindingKind::LoopCarried {
                array: "a".into(),
                distance: Some(1)
            }
        );
    }

    #[test]
    fn same_element_accumulation_is_relaxed_to_l210() {
        // Every iteration updates a[0] with `+=`: a race under the naive
        // test, but a proven reduction — relaxed to an informational note.
        let src = "int N;\ndouble a[N]; double b[N];\n\
             #pragma acc parallel copy(a) copyin(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[0] += b[i]; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            f[0].kind,
            FindingKind::ReductionRelaxed {
                array: "a".into(),
                op: RedOp::Add,
            }
        );
        assert_eq!(f[0].diag.severity, crate::diag::Severity::Note);
        // The note carries the proof, identity and privatization cost.
        let msg = format!("{:?}", f[0].diag);
        assert!(msg.contains("identity"), "{msg}");
    }

    #[test]
    fn histogram_update_is_relaxed_to_l210() {
        // Indirect subscript: unanalyzable dependence, but every store is
        // a `+=` update so the conflict commutes.
        let src = "int N; int B;\nint hist[B]; int bin[N];\n\
             #pragma acc parallel copy(hist) copyin(bin)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { hist[bin[i]] += 1; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            f[0].kind,
            FindingKind::ReductionRelaxed {
                array: "hist".into(),
                op: RedOp::Add,
            }
        );
        assert!(!codes(src).contains(&"L201"));
    }

    #[test]
    fn nested_parallel_loops_report_one_relaxation() {
        // gang × vector nest over the same accumulator: exactly one L210,
        // attributed to the nest as a whole, not one per loop level.
        let src = "int N;\ndouble a[N]; double b[N];\n\
             #pragma acc parallel copy(a) copyin(b)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             #pragma acc loop vector\nfor (int j = 0; j < N; j++) {\n\
             a[0] += b[j]; } } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code(), "L210");
    }

    #[test]
    fn mixed_array_operators_are_l211() {
        let src = "int N;\ndouble a[N]; double b[N]; double c[N];\n\
             #pragma acc parallel copy(a) copyin(b) copyin(c)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[0] += b[i]; a[0] *= c[i]; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, FindingKind::ReductionIllegal { var: "a".into() });
    }

    #[test]
    fn array_escape_mid_loop_is_l211() {
        // The partial histogram value escapes into `last` every iteration.
        let src = "int N; int B;\nint hist[B]; int bin[N]; int last[N];\n\
             #pragma acc parallel copy(hist) copyin(bin) copyout(last)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { hist[bin[i]] += 1; last[i] = hist[bin[i]]; }\n}";
        let f = findings(src);
        let l211: Vec<_> = f.iter().filter(|x| x.code() == "L211").collect();
        assert_eq!(l211.len(), 1, "{f:?}");
        assert_eq!(
            l211[0].kind,
            FindingKind::ReductionIllegal { var: "hist".into() }
        );
        assert!(!codes(src).contains(&"L210"));
    }

    #[test]
    fn array_overwrite_is_l211() {
        let src = "int N;\ndouble a[N]; double b[N];\n\
             #pragma acc parallel copy(a) copyin(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[0] += b[i]; a[0] = 0.0; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code(), "L211");
    }

    #[test]
    fn genuine_recurrence_still_fires_l200() {
        // `a[i] = a[i-1] + b[i]` is not reduction-shaped (subscripts of
        // the load and store differ): the relaxation must not apply.
        let src = "int N;\ndouble a[N]; double b[N];\n\
             #pragma acc parallel copy(a) copyin(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 1; i < N; i++) { a[i] = a[i - 1] + b[i]; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].code(), "L200");
        assert!(!codes(src).contains(&"L210"));
    }

    #[test]
    fn carried_dependences_dedupe_into_one_finding() {
        // Two distinct recurrences on `a` in one loop: one L200 with the
        // extra pair attached as a note, not two findings.
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 2; i < N; i++) { a[i] = a[i - 1] + a[i - 2]; }\n}";
        let f = findings(src);
        let l200: Vec<_> = f.iter().filter(|x| x.code() == "L200").collect();
        assert_eq!(l200.len(), 1, "{f:?}");
    }

    #[test]
    fn max_reduction_via_fmax_is_relaxed() {
        let src = "int N;\ndouble m[N]; double a[N];\n\
             #pragma acc parallel copy(m) copyin(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { m[0] = fmax(m[0], a[i]); }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            f[0].kind,
            FindingKind::ReductionRelaxed {
                array: "m".into(),
                op: RedOp::Max,
            }
        );
    }

    #[test]
    fn distance_zero_is_clean() {
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[i] = a[i] * 2.0; }\n}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn data_clause_lints_fire() {
        let src = "int N;\ndouble a[N]; double b[N]; double c[N];\n\
             #pragma acc parallel copyin(a) copyin(b) copyout(c)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { b[i] = a[i] + c[i]; }\n}";
        let c = codes(src);
        // b: copyin but only written; c: copyout but only read.
        assert!(c.contains(&"L300"), "{c:?}");
        assert!(c.contains(&"L301"), "{c:?}");
    }

    #[test]
    fn dead_data_clause() {
        let src = "int N;\ndouble a[N]; double b[N]; double c[N];\n\
             #pragma acc parallel copyin(a) copyin(c) copyout(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { b[i] = a[i]; }\n}";
        assert_eq!(codes(src), vec!["L402"]);
    }

    #[test]
    fn private_read_before_write() {
        let src = "int N;\ndouble a[N]; double b[N];\n\
             #pragma acc parallel copyin(a) copyout(b)\n{\n\
             double t = 1.0;\n\
             #pragma acc loop gang private(t)\n\
             for (int i = 0; i < N; i++) { b[i] = t * a[i]; t = a[i]; }\n}";
        let c = codes(src);
        assert!(c.contains(&"L304"), "{c:?}");
    }

    #[test]
    fn shadowed_data_clause() {
        let src = "int N;\ndouble a[N];\n\
             #pragma acc data copy(a)\n{\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[i] = a[i] + 1.0; }\n}\n}";
        let c = codes(src);
        assert!(c.contains(&"L401"), "{c:?}");
    }

    #[test]
    fn findings_rank_errors_first() {
        let src = "int N; double s;\ndouble a[N]; double b[N]; double dead[N];\ns = 0;\n\
             #pragma acc parallel copyin(a) copyin(dead) copy(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 1; i < N; i++) { s += a[i]; b[i] = b[i - 1]; }\n}";
        let f = findings(src);
        let codes: Vec<_> = f.iter().map(|x| x.code()).collect();
        assert!(codes.contains(&"L100"), "{codes:?}");
        assert!(codes.contains(&"L200"), "{codes:?}");
        assert!(codes.contains(&"L402"), "{codes:?}");
        // Errors (L100/L200) must come before the warning (L402).
        let pos_err = codes.iter().position(|c| *c == "L200").unwrap();
        let pos_warn = codes.iter().position(|c| *c == "L402").unwrap();
        assert!(pos_err < pos_warn);
    }
}
