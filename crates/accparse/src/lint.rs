//! `acclint` — source-level reduction and data-clause dataflow lints.
//!
//! Runs the [`crate::dataflow`] analyses over an [`AnalyzedProgram`] and
//! reports ranked diagnostics. The rule catalog (see DESIGN.md §13):
//!
//! | code | severity | check |
//! |------|----------|-------|
//! | L100 | error    | reduction-shaped accumulation in a parallel loop with no `reduction` clause (fix-it suggests the exact clause and placement, §3.2.1) |
//! | L101 | error    | `reduction` clause placed below the loop whose iterations consume the value (span not fully covered) |
//! | L102 | warning  | reduction variable read (non-update) inside the reduction loop — observes an unspecified partial value |
//! | L103 | warning  | `reduction` clause whose variable is never updated under the loop |
//! | L104 | error    | reduction updates at different parallelism depths (rejected by codegen) |
//! | L200 | error    | loop-carried dependence on affine array subscripts in a parallel loop |
//! | L201 | warning  | unanalyzable subscripts — a carried dependence cannot be excluded |
//! | L300 | warning  | `copyin` array never read by the region |
//! | L301 | warning  | `copyout` array never written by the region |
//! | L304 | warning  | `private` variable read before it is assigned |
//! | L400 | warning  | duplicate variable in a clause |
//! | L401 | warning  | data clause shadowed by an enclosing `acc data` binding |
//! | L402 | warning  | data clause names an array the region never references |

use crate::ast::{DataDir, Level, RedOp};
use crate::dataflow::{
    collect_array_accesses, consume_liveness, loop_dependence, loop_key, read_before_write,
    scalar_events, varying_syms, DepResult, Liveness, LoopKey, ScalarEvent, ScalarEventKind,
};
use crate::diag::{Diag, Span};
use crate::hir::{AnalyzedProgram, AnalyzedRegion, HLoop, HStmt, Sym};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Machine-readable payload of a lint finding (the diagnostic carries the
/// human-readable rendering; tests and the sweep assert on this).
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    MissingReduction {
        var: String,
        op: RedOp,
        /// Schedule of the loop the clause should be written on.
        clause_loop_levels: Vec<Level>,
        /// Full detected span (paper §3.2.1), outermost level first.
        span_levels: Vec<Level>,
    },
    SpanMismatch {
        var: String,
        /// Parallelism levels between the consume point and the clause
        /// loop that the clause does not cover.
        uncovered: Vec<Level>,
    },
    ReductionReadInside {
        var: String,
    },
    DeadReduction {
        var: String,
    },
    MixedDepthUpdates {
        var: String,
    },
    LoopCarried {
        array: String,
        /// Iteration distance; `None` = every iteration hits the same
        /// element.
        distance: Option<i64>,
    },
    Unanalyzable {
        array: String,
    },
    CopyinNeverRead {
        array: String,
    },
    CopyoutNeverWritten {
        array: String,
    },
    PrivateReadBeforeWrite {
        var: String,
    },
    DuplicateClauseVar {
        var: String,
    },
    ShadowedDataClause {
        array: String,
    },
    DeadDataClause {
        array: String,
    },
}

impl FindingKind {
    /// The stable diagnostic code of this finding.
    pub fn code(&self) -> &'static str {
        match self {
            FindingKind::MissingReduction { .. } => "L100",
            FindingKind::SpanMismatch { .. } => "L101",
            FindingKind::ReductionReadInside { .. } => "L102",
            FindingKind::DeadReduction { .. } => "L103",
            FindingKind::MixedDepthUpdates { .. } => "L104",
            FindingKind::LoopCarried { .. } => "L200",
            FindingKind::Unanalyzable { .. } => "L201",
            FindingKind::CopyinNeverRead { .. } => "L300",
            FindingKind::CopyoutNeverWritten { .. } => "L301",
            FindingKind::PrivateReadBeforeWrite { .. } => "L304",
            FindingKind::DuplicateClauseVar { .. } => "L400",
            FindingKind::ShadowedDataClause { .. } => "L401",
            FindingKind::DeadDataClause { .. } => "L402",
        }
    }
}

/// One lint finding: a structured payload plus its rendered diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    pub diag: Diag,
}

impl Finding {
    /// The stable diagnostic code of this finding.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

/// Parse, analyze and lint `src`. A parse/sema error aborts linting.
pub fn lint_source(src: &str) -> Result<(AnalyzedProgram, Vec<Finding>), Diag> {
    let p = crate::compile(src)?;
    let findings = lint_program(&p);
    Ok((p, findings))
}

/// Run every lint over an analyzed program. Findings are ranked errors
/// first, then by source position.
pub fn lint_program(p: &AnalyzedProgram) -> Vec<Finding> {
    let mut out = Vec::new();
    for (ri, r) in p.regions.iter().enumerate() {
        let cx = RegionCx::new(p, r);
        cx.missing_reduction(&mut out);
        cx.reduction_clause_lints(&mut out);
        cx.loop_carried(&mut out);
        cx.data_clause_lints(ri, &mut out);
        cx.private_lints(&mut out);
        cx.duplicate_lints(&mut out);
    }
    out.sort_by_key(|f| (f.diag.severity, f.diag.span.start, f.diag.span.end));
    out
}

/// A loop together with its enclosing-loop chain (outermost first,
/// excluding the loop itself).
struct LoopInfo<'a> {
    l: &'a HLoop,
    chain: Vec<&'a HLoop>,
}

fn collect_loops<'a>(stmts: &'a [HStmt], chain: &mut Vec<&'a HLoop>, out: &mut Vec<LoopInfo<'a>>) {
    for s in stmts {
        match s {
            HStmt::Loop(l) => {
                out.push(LoopInfo {
                    l,
                    chain: chain.clone(),
                });
                chain.push(l);
                collect_loops(&l.body, chain, out);
                chain.pop();
            }
            HStmt::If { then, els, .. } => {
                collect_loops(then, chain, out);
                collect_loops(els, chain, out);
            }
            _ => {}
        }
    }
}

fn common_prefix_len(a: &[&HLoop], b: &[&HLoop]) -> usize {
    a.iter()
        .zip(b.iter())
        .take_while(|(x, y)| loop_key(x) == loop_key(y))
        .count()
}

fn levels_of(chain: &[&HLoop]) -> Vec<Level> {
    let set: BTreeSet<Level> = chain.iter().flat_map(|l| l.sched.iter().copied()).collect();
    set.into_iter().collect()
}

fn fmt_levels(levels: &[Level]) -> String {
    levels
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Where a scalar's accumulated value is next consumed.
enum ConsumePoint {
    /// Read at the given span, under the given loop depth.
    Read(Span),
    /// Copied back to the host after the region.
    RegionExit,
}

struct RegionCx<'a> {
    p: &'a AnalyzedProgram,
    r: &'a AnalyzedRegion,
    events: Vec<ScalarEvent<'a>>,
    loops: Vec<LoopInfo<'a>>,
    liveness: Liveness,
    hosts_written: HashSet<Sym>,
}

impl<'a> RegionCx<'a> {
    fn new(p: &'a AnalyzedProgram, r: &'a AnalyzedRegion) -> Self {
        let events = scalar_events(&r.body);
        let mut loops = Vec::new();
        collect_loops(&r.body, &mut Vec::new(), &mut loops);
        let hosts_written: HashSet<Sym> = r.hosts_written.iter().map(|h| Sym::Host(*h)).collect();
        let liveness = consume_liveness(&r.body, &hosts_written);
        RegionCx {
            p,
            r,
            events,
            loops,
            liveness,
            hosts_written,
        }
    }

    fn sym_name(&self, sym: Sym) -> &str {
        match sym {
            Sym::Host(h) => &self.p.hosts[h].name,
            Sym::Local(l) => &self.r.locals[l].name,
        }
    }

    fn array_name(&self, a: usize) -> &str {
        &self.p.arrays[a].name
    }

    /// Find the shallowest consume point of `sym`'s updates: the place its
    /// accumulated value is next used (paper §3.2.1's placement question).
    /// Returns the consume-chain depth plus the witnessing point, or
    /// `None` when the value is never consumed. Sets `*intra_loop` when a
    /// read observes the running value inside the updates' innermost loop
    /// (a scan, not a reduction).
    fn consume_point(
        &self,
        updates: &[&ScalarEvent<'a>],
        reads: &[&ScalarEvent<'a>],
        sym: Sym,
        intra_loop: &mut bool,
    ) -> Option<(usize, ConsumePoint)> {
        let mut best: Option<(usize, ConsumePoint)> = None;
        for u in updates {
            for rd in reads {
                let eff = common_prefix_len(&rd.chain, &u.chain);
                if eff == u.chain.len() {
                    *intra_loop = true;
                } else if (rd.order > u.order || eff > 0)
                    && best.as_ref().is_none_or(|(d, _)| eff < *d)
                {
                    best = Some((eff, ConsumePoint::Read(rd.span)));
                }
            }
        }
        if self.hosts_written.contains(&sym) {
            best = Some((0, ConsumePoint::RegionExit));
        }
        best
    }

    // ---- L100 -----------------------------------------------------------

    fn missing_reduction(&self, out: &mut Vec<Finding>) {
        let mut syms: Vec<Sym> = Vec::new();
        for ev in &self.events {
            if matches!(ev.kind, ScalarEventKind::Update(_)) && !syms.contains(&ev.sym) {
                syms.push(ev.sym);
            }
        }
        for sym in syms {
            // A clause already covers this symbol somewhere: partial
            // coverage is L101's job.
            if self
                .events
                .iter()
                .any(|e| e.sym == sym && matches!(e.kind, ScalarEventKind::ClauseUpdate(_)))
            {
                continue;
            }
            let updates: Vec<&ScalarEvent<'a>> = self
                .events
                .iter()
                .filter(|e| e.sym == sym && matches!(e.kind, ScalarEventKind::Update(_)))
                .collect();
            let reads: Vec<&ScalarEvent<'a>> = self
                .events
                .iter()
                .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Read)
                .collect();
            let writes: Vec<&ScalarEvent<'a>> = self
                .events
                .iter()
                .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Write)
                .collect();
            let mut intra_loop = false;
            let Some((depth, point)) = self.consume_point(&updates, &reads, sym, &mut intra_loop)
            else {
                continue; // value never consumed: dead accumulation
            };
            if intra_loop {
                continue; // running value observed per iteration: a scan
            }
            // Group updates by the loop the clause belongs on: the loop
            // just inside the consume point, along each update's chain.
            let mut groups: BTreeMap<LoopKey, Vec<&ScalarEvent<'a>>> = BTreeMap::new();
            for u in &updates {
                if u.chain.len() > depth {
                    groups.entry(loop_key(u.chain[depth])).or_default().push(u);
                }
            }
            for us in groups.values() {
                self.report_missing_reduction(sym, depth, &point, us, &writes, out);
            }
        }
    }

    fn report_missing_reduction(
        &self,
        sym: Sym,
        depth: usize,
        point: &ConsumePoint,
        updates: &[&ScalarEvent<'a>],
        writes: &[&ScalarEvent<'a>],
        out: &mut Vec<Finding>,
    ) {
        let candidate = updates[0].chain[depth];
        let ScalarEventKind::Update(op) = updates[0].kind else {
            return;
        };
        // All updates must agree on the operator to suggest one clause.
        if updates
            .iter()
            .any(|u| u.kind != ScalarEventKind::Update(op))
        {
            return;
        }
        // A plain write inside the candidate loop re-initializes the
        // accumulator every iteration: no cross-iteration accumulation.
        let cand_chain = &updates[0].chain[..depth + 1];
        if writes.iter().any(|w| {
            w.chain.len() >= cand_chain.len()
                && common_prefix_len(&w.chain, cand_chain) == cand_chain.len()
        }) {
            return;
        }
        // Detected span (§3.2.1): every parallelism level from the
        // candidate loop down to each update site.
        let mut span_levels: BTreeSet<Level> = BTreeSet::new();
        for u in updates {
            span_levels.extend(levels_of(&u.chain[depth..]));
        }
        let span_levels: Vec<Level> = span_levels.into_iter().collect();
        if span_levels.is_empty() {
            return; // purely sequential accumulation is fine
        }
        // The accumulated value must actually survive the candidate loop.
        if !self.hosts_written.contains(&sym)
            && !self
                .liveness
                .live_after_loop
                .get(&loop_key(candidate))
                .is_some_and(|s| s.contains(&sym))
        {
            return;
        }
        let var = self.sym_name(sym).to_string();
        let clause = format!("reduction({}:{})", op.clause_token(), var);
        let cand_sched = candidate.sched.clone();
        let loop_desc = if cand_sched.is_empty() {
            "loop".to_string()
        } else {
            format!("`{}` loop", fmt_levels(&cand_sched))
        };
        let mut diag = Diag::new(
            format!(
                "`{var}` is accumulated across iterations of a parallel loop \
                 without a `reduction` clause"
            ),
            updates[0].span,
        )
        .with_code("L100")
        .with_note(format!(
            "concurrent iterations race on the read-modify-write of `{var}`"
        ));
        diag = match point {
            ConsumePoint::Read(span) => diag.with_note_at(
                format!("the accumulated value of `{var}` is next used here"),
                *span,
            ),
            ConsumePoint::RegionExit => diag.with_note(format!(
                "the accumulated value of `{var}` is copied back to the host after the region"
            )),
        };
        diag = diag
            .with_note(format!(
                "detected reduction span: {} (every parallelism level between \
                 the next use and the update)",
                fmt_levels(&span_levels)
            ))
            .with_fixit(
                format!("add this clause to the {loop_desc}"),
                clause,
                candidate.span,
            );
        out.push(Finding {
            kind: FindingKind::MissingReduction {
                var,
                op,
                clause_loop_levels: cand_sched,
                span_levels,
            },
            diag,
        });
    }

    // ---- L101 / L102 / L103 / L104 --------------------------------------

    fn reduction_clause_lints(&self, out: &mut Vec<Finding>) {
        for info in &self.loops {
            for red in &info.l.reductions {
                let var = self.sym_name(red.sym).to_string();
                if !red.has_update {
                    out.push(Finding {
                        kind: FindingKind::DeadReduction { var: var.clone() },
                        diag: Diag::warning(
                            format!(
                                "`reduction` clause on `{var}`, but `{var}` is never \
                                 updated under this loop"
                            ),
                            red.span,
                        )
                        .with_code("L103")
                        .with_note("the clause has no effect; remove it or add the update"),
                    });
                    continue;
                }
                if red.mixed_updates {
                    out.push(Finding {
                        kind: FindingKind::MixedDepthUpdates { var: var.clone() },
                        diag: Diag::new(
                            format!(
                                "reduction variable `{var}` is updated at different \
                                 parallelism depths"
                            ),
                            red.span,
                        )
                        .with_code("L104")
                        .with_note(
                            "a single per-thread accumulator over-counts the shallower \
                             update site; hoist the updates to one depth",
                        ),
                    });
                }
                self.span_mismatch(info, red, &var, out);
                self.read_inside_clause_loop(info, red, &var, out);
            }
        }
    }

    fn span_mismatch(
        &self,
        info: &LoopInfo<'a>,
        red: &crate::hir::Reduction,
        var: &str,
        out: &mut Vec<Finding>,
    ) {
        let sym = red.sym;
        let updates: Vec<&ScalarEvent<'a>> = self
            .events
            .iter()
            .filter(|e| {
                e.sym == sym
                    && matches!(e.kind, ScalarEventKind::ClauseUpdate(_))
                    && e.chain.iter().any(|l| loop_key(l) == loop_key(info.l))
            })
            .collect();
        if updates.is_empty() {
            return;
        }
        let reads: Vec<&ScalarEvent<'a>> = self
            .events
            .iter()
            .filter(|e| e.sym == sym && e.kind == ScalarEventKind::Read)
            .collect();
        let mut intra_loop = false;
        let Some((depth, _)) = self.consume_point(&updates, &reads, sym, &mut intra_loop) else {
            return;
        };
        let clause_depth = info.chain.len();
        if depth >= clause_depth {
            return; // clause sits at (or above) the consume point
        }
        // Parallelism levels between the consume point and the clause
        // loop: combined outside the clause's coverage.
        let uncovered = levels_of(&info.chain[depth..]);
        if uncovered.is_empty() {
            return; // only sequential loops in between: no race
        }
        let required = info.chain[depth];
        let clause = format!("reduction({}:{})", red.op.clause_token(), var);
        out.push(Finding {
            kind: FindingKind::SpanMismatch {
                var: var.to_string(),
                uncovered: uncovered.clone(),
            },
            diag: Diag::new(
                format!(
                    "`reduction` clause on `{var}` does not cover every parallelism \
                     level that combines it"
                ),
                red.span,
            )
            .with_code("L101")
            .with_note(format!(
                "the value of `{var}` is also combined across the `{}` level(s), \
                 outside this clause's loop",
                fmt_levels(&uncovered)
            ))
            .with_fixit(
                format!(
                    "move the clause to the outer `{}` loop (the compiler widens the \
                     span down to the updates, \u{00a7}3.2.1)",
                    fmt_levels(&required.sched)
                ),
                clause,
                required.span,
            ),
        });
    }

    fn read_inside_clause_loop(
        &self,
        info: &LoopInfo<'a>,
        red: &crate::hir::Reduction,
        var: &str,
        out: &mut Vec<Finding>,
    ) {
        let key = loop_key(info.l);
        for rd in self.events.iter().filter(|e| {
            e.sym == red.sym
                && e.kind == ScalarEventKind::Read
                && e.chain.iter().any(|l| loop_key(l) == key)
        }) {
            out.push(Finding {
                kind: FindingKind::ReductionReadInside {
                    var: var.to_string(),
                },
                diag: Diag::warning(
                    format!("reduction variable `{var}` is read inside the reduction loop"),
                    rd.span,
                )
                .with_code("L102")
                .with_note(
                    "the value observed here is an unspecified partial accumulation; \
                     only the value after the loop is defined",
                )
                .with_note_at("the `reduction` clause is here", red.span),
            });
        }
    }

    // ---- L200 / L201 ----------------------------------------------------

    fn loop_carried(&self, out: &mut Vec<Finding>) {
        let mut seen: HashSet<(LoopKey, usize, &'static str)> = HashSet::new();
        for info in &self.loops {
            if info.l.sched.is_empty() {
                continue;
            }
            let mut accs = Vec::new();
            collect_array_accesses(&info.l.body, &mut accs);
            let varying = varying_syms(&info.l.body);
            for w in accs.iter().filter(|a| a.is_write) {
                for o in accs.iter().filter(|a| a.array == w.array) {
                    let dep = loop_dependence(w, o, info.l.var, &varying);
                    let (code, kind, diag) = match dep {
                        DepResult::Independent | DepResult::SameIteration => continue,
                        DepResult::Carried(k) => {
                            let array = self.array_name(w.array).to_string();
                            (
                                "L200",
                                FindingKind::LoopCarried {
                                    array: array.clone(),
                                    distance: Some(k),
                                },
                                Diag::new(
                                    format!(
                                        "loop-carried dependence on `{array}` in a \
                                         parallel loop (iteration distance {k})"
                                    ),
                                    w.span,
                                )
                                .with_code("L200")
                                .with_note_at(
                                    format!(
                                        "this access touches the element written {k} \
                                         iteration(s) away",
                                    ),
                                    o.span,
                                )
                                .with_note(
                                    "parallel iterations execute in arbitrary order; \
                                     mark the loop `seq` or restructure the recurrence",
                                ),
                            )
                        }
                        DepResult::SameElement => {
                            let array = self.array_name(w.array).to_string();
                            (
                                "L200",
                                FindingKind::LoopCarried {
                                    array: array.clone(),
                                    distance: None,
                                },
                                Diag::new(
                                    format!(
                                        "every iteration of this parallel loop accesses \
                                         the same element of `{array}`"
                                    ),
                                    w.span,
                                )
                                .with_code("L200")
                                .with_note(
                                    "concurrent iterations race on one element; if this \
                                     is a reduction, accumulate into a scalar",
                                ),
                            )
                        }
                        DepResult::Unanalyzable => {
                            let array = self.array_name(w.array).to_string();
                            (
                                "L201",
                                FindingKind::Unanalyzable {
                                    array: array.clone(),
                                },
                                Diag::warning(
                                    format!(
                                        "cannot analyze the subscripts of `{array}`; a \
                                         loop-carried dependence cannot be excluded"
                                    ),
                                    w.span,
                                )
                                .with_code("L201")
                                .with_note(
                                    "subscripts must be affine in the loop variable for \
                                     the dependence test; verify iterations are independent",
                                ),
                            )
                        }
                    };
                    if seen.insert((loop_key(info.l), w.array, code)) {
                        out.push(Finding { kind, diag });
                    }
                }
            }
        }
    }

    // ---- L300 / L301 / L401 / L402 --------------------------------------

    fn data_clause_lints(&self, ri: usize, out: &mut Vec<Finding>) {
        let mut accs = Vec::new();
        collect_array_accesses(&self.r.body, &mut accs);
        let read: HashSet<usize> = accs
            .iter()
            .filter(|a| !a.is_write)
            .map(|a| a.array)
            .collect();
        let written: HashSet<usize> = accs
            .iter()
            .filter(|a| a.is_write)
            .map(|a| a.array)
            .collect();
        for b in self.r.data.iter().filter(|b| !b.implied) {
            let array = self.array_name(b.array).to_string();
            let is_read = read.contains(&b.array);
            let is_written = written.contains(&b.array);
            if !is_read && !is_written {
                out.push(Finding {
                    kind: FindingKind::DeadDataClause {
                        array: array.clone(),
                    },
                    diag: Diag::warning(
                        format!(
                            "data clause names `{array}`, but the region never \
                             references it"
                        ),
                        self.r.span,
                    )
                    .with_code("L402")
                    .with_note("remove the clause to avoid a useless transfer"),
                });
                continue;
            }
            match b.dir {
                DataDir::CopyIn if !is_read => {
                    let mut d = Diag::warning(
                        format!("`copyin({array})` but the region never reads `{array}`"),
                        self.r.span,
                    )
                    .with_code("L300");
                    d = if is_written {
                        d.with_note(format!(
                            "the region only writes `{array}`; use `copyout({array})` \
                             (or `create({array})` if the host never reads it back)"
                        ))
                    } else {
                        d.with_note("the host-to-device transfer is wasted")
                    };
                    out.push(Finding {
                        kind: FindingKind::CopyinNeverRead { array },
                        diag: d,
                    });
                }
                DataDir::CopyOut if !is_written => {
                    let mut d = Diag::warning(
                        format!("`copyout({array})` but the region never writes `{array}`"),
                        self.r.span,
                    )
                    .with_code("L301")
                    .with_note(
                        "the device-to-host transfer copies back unmodified (or \
                         uninitialized) data",
                    );
                    if is_read {
                        d = d.with_note(format!(
                            "the region only reads `{array}`; use `copyin({array})`"
                        ));
                    }
                    out.push(Finding {
                        kind: FindingKind::CopyoutNeverWritten { array },
                        diag: d,
                    });
                }
                _ => {}
            }
        }
        // L401: explicit movement clause on an array already resident via
        // an enclosing structured `acc data` scope.
        for ds in &self.p.data_scopes {
            if !(ds.first_region <= ri && ri < ds.end_region) {
                continue;
            }
            for b in self.r.data.iter().filter(|b| !b.implied) {
                if b.dir == DataDir::Present {
                    continue;
                }
                if ds.bindings.iter().any(|(a, _)| *a == b.array) {
                    let array = self.array_name(b.array).to_string();
                    out.push(Finding {
                        kind: FindingKind::ShadowedDataClause {
                            array: array.clone(),
                        },
                        diag: Diag::warning(
                            format!(
                                "data clause on `{array}` is shadowed by an enclosing \
                                 `acc data` region"
                            ),
                            self.r.span,
                        )
                        .with_code("L401")
                        .with_note(format!(
                            "`{array}` is already resident; the clause moves no data \
                             (present-or-copy semantics) — write `present({array})` to \
                             state the intent"
                        )),
                    });
                }
            }
        }
    }

    // ---- L304 -----------------------------------------------------------

    fn private_lints(&self, out: &mut Vec<Finding>) {
        #[allow(clippy::type_complexity)]
        let scopes: Vec<(&[(Sym, Span)], &[HStmt])> =
            std::iter::once((self.r.privates.as_slice(), self.r.body.as_slice()))
                .chain(
                    self.loops
                        .iter()
                        .map(|i| (i.l.privates.as_slice(), i.l.body.as_slice())),
                )
                .collect();
        for (privates, body) in scopes {
            if privates.is_empty() {
                continue;
            }
            let tracked: HashSet<Sym> = privates
                .iter()
                .map(|(s, _)| *s)
                .filter(|s| match s {
                    Sym::Local(l) => !self.r.locals[*l].is_loop_var,
                    Sym::Host(_) => true,
                })
                .collect();
            if tracked.is_empty() {
                continue;
            }
            for (sym, span) in read_before_write(body, &tracked, &HashSet::new()) {
                let var = self.sym_name(sym).to_string();
                out.push(Finding {
                    kind: FindingKind::PrivateReadBeforeWrite { var: var.clone() },
                    diag: Diag::warning(
                        format!("private variable `{var}` may be read before it is assigned"),
                        span,
                    )
                    .with_code("L304")
                    .with_note(
                        "each thread's private copy starts uninitialized; assignments \
                         outside the construct do not initialize it",
                    ),
                });
            }
        }
    }

    // ---- L400 -----------------------------------------------------------

    fn duplicate_lints(&self, out: &mut Vec<Finding>) {
        // Duplicate `private` items (region construct and each loop).
        let lists = std::iter::once(self.r.privates.as_slice())
            .chain(self.loops.iter().map(|i| i.l.privates.as_slice()));
        for privates in lists {
            let mut seen: HashSet<Sym> = HashSet::new();
            for (sym, span) in privates {
                if !seen.insert(*sym) {
                    let var = self.sym_name(*sym).to_string();
                    out.push(Finding {
                        kind: FindingKind::DuplicateClauseVar { var: var.clone() },
                        diag: Diag::warning(
                            format!("`{var}` appears more than once in `private` clauses"),
                            *span,
                        )
                        .with_code("L400")
                        .with_note("the duplicate entry has no effect"),
                    });
                }
            }
        }
        // Duplicate reduction variables on one loop directive.
        for info in &self.loops {
            let mut seen: HashSet<Sym> = HashSet::new();
            for red in &info.l.reductions {
                if !seen.insert(red.sym) {
                    let var = self.sym_name(red.sym).to_string();
                    out.push(Finding {
                        kind: FindingKind::DuplicateClauseVar { var: var.clone() },
                        diag: Diag::warning(
                            format!(
                                "`{var}` appears in more than one `reduction` clause on \
                                 this loop"
                            ),
                            red.span,
                        )
                        .with_code("L400")
                        .with_note("only one reduction operator can apply per variable"),
                    });
                }
            }
        }
        // Duplicate arrays in the region's explicit data clauses.
        let mut seen: HashSet<usize> = HashSet::new();
        for b in self.r.data.iter().filter(|b| !b.implied) {
            if !seen.insert(b.array) {
                let array = self.array_name(b.array).to_string();
                out.push(Finding {
                    kind: FindingKind::DuplicateClauseVar { var: array.clone() },
                    diag: Diag::warning(
                        format!("`{array}` appears in more than one data clause"),
                        self.r.span,
                    )
                    .with_code("L400")
                    .with_note("the first clause wins; remove the duplicate"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let (_, f) = lint_source(src).expect("compile");
        f
    }

    fn codes(src: &str) -> Vec<&'static str> {
        findings(src).iter().map(|f| f.code()).collect()
    }

    #[test]
    fn missing_reduction_simple() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang vector\nfor (int i = 0; i < N; i++) { s = s + a[i]; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        match &f[0].kind {
            FindingKind::MissingReduction {
                var,
                op,
                span_levels,
                ..
            } => {
                assert_eq!(var, "s");
                assert_eq!(*op, RedOp::Add);
                assert_eq!(span_levels, &[Level::Gang, Level::Vector]);
            }
            k => panic!("wrong kind {k:?}"),
        }
        let fix = f[0].diag.fixit().expect("fixit");
        assert_eq!(fix.insert, "reduction(+:s)");
    }

    #[test]
    fn missing_reduction_nested_span() {
        // Update in the vector loop, consumed at region exit: the span
        // covers both levels; the clause belongs on the gang loop.
        let src = "int N; int M; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             #pragma acc loop vector\nfor (int j = 0; j < M; j++) { s += a[i * M + j]; }\n}\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        match &f[0].kind {
            FindingKind::MissingReduction {
                clause_loop_levels,
                span_levels,
                ..
            } => {
                assert_eq!(clause_loop_levels, &[Level::Gang]);
                assert_eq!(span_levels, &[Level::Gang, Level::Vector]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn missing_reduction_consumed_per_gang_iteration() {
        // Accumulator re-initialized and consumed inside the gang loop:
        // only the vector level reduces.
        let src = "int N; int M;\ndouble a[N]; double out[N];\n\
             #pragma acc parallel copyin(a) copyout(out)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             double t = 0.0;\n\
             #pragma acc loop vector\nfor (int j = 0; j < M; j++) { t += a[i * M + j]; }\n\
             out[i] = t;\n}\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        match &f[0].kind {
            FindingKind::MissingReduction {
                var,
                clause_loop_levels,
                span_levels,
                ..
            } => {
                assert_eq!(var, "t");
                assert_eq!(clause_loop_levels, &[Level::Vector]);
                assert_eq!(span_levels, &[Level::Vector]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn sequential_accumulation_is_clean() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop seq\nfor (int i = 0; i < N; i++) { s += a[i]; }\n}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn scan_pattern_is_not_reported() {
        // Running value consumed every iteration: a scan, not a reduction.
        let src = "int N; double s;\ndouble a[N]; double b[N];\ns = 0;\n\
             #pragma acc parallel copyin(a) copyout(b)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { s += a[i]; b[i] = s; }\n}";
        let c = codes(src);
        assert!(!c.contains(&"L100"), "{c:?}");
    }

    #[test]
    fn clean_reduction_has_no_findings() {
        let src = "int N; double s;\ndouble a[N];\ns = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang vector reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; }\n}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn span_mismatch_reported() {
        // Clause on the vector loop, but the value is combined across the
        // gang level too (consumed after the gang loop). Sema rejects this
        // shape for host scalars outright, so the lint covers the
        // region-local case.
        let src = "int N; int M;\ndouble a[N]; double out[N];\n\
             #pragma acc parallel copyin(a) copyout(out)\n{\n\
             double s = 0.0;\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {\n\
             #pragma acc loop vector reduction(+:s)\n\
             for (int j = 0; j < M; j++) { s += a[i * M + j]; }\n}\n\
             out[0] = s;\n}";
        let f = findings(src);
        let sm: Vec<_> = f.iter().filter(|f| f.code() == "L101").collect();
        assert_eq!(sm.len(), 1, "{f:?}");
        match &sm[0].kind {
            FindingKind::SpanMismatch { var, uncovered } => {
                assert_eq!(var, "s");
                assert_eq!(uncovered, &[Level::Gang]);
            }
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn dead_reduction_clause() {
        let src = "int N; double s;\ndouble a[N]; double b[N];\ns = 0;\n\
             #pragma acc parallel copyin(a) copyout(b)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { b[i] = a[i]; }\n}";
        assert_eq!(codes(src), vec!["L103"]);
    }

    #[test]
    fn loop_carried_dependence() {
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 1; i < N; i++) { a[i] = a[i - 1] + 1.0; }\n}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            f[0].kind,
            FindingKind::LoopCarried {
                array: "a".into(),
                distance: Some(1)
            }
        );
    }

    #[test]
    fn distance_zero_is_clean() {
        let src = "int N;\ndouble a[N];\n\
             #pragma acc parallel copy(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[i] = a[i] * 2.0; }\n}";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn data_clause_lints_fire() {
        let src = "int N;\ndouble a[N]; double b[N]; double c[N];\n\
             #pragma acc parallel copyin(a) copyin(b) copyout(c)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { b[i] = a[i] + c[i]; }\n}";
        let c = codes(src);
        // b: copyin but only written; c: copyout but only read.
        assert!(c.contains(&"L300"), "{c:?}");
        assert!(c.contains(&"L301"), "{c:?}");
    }

    #[test]
    fn dead_data_clause() {
        let src = "int N;\ndouble a[N]; double b[N]; double c[N];\n\
             #pragma acc parallel copyin(a) copyin(c) copyout(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { b[i] = a[i]; }\n}";
        assert_eq!(codes(src), vec!["L402"]);
    }

    #[test]
    fn private_read_before_write() {
        let src = "int N;\ndouble a[N]; double b[N];\n\
             #pragma acc parallel copyin(a) copyout(b)\n{\n\
             double t = 1.0;\n\
             #pragma acc loop gang private(t)\n\
             for (int i = 0; i < N; i++) { b[i] = t * a[i]; t = a[i]; }\n}";
        let c = codes(src);
        assert!(c.contains(&"L304"), "{c:?}");
    }

    #[test]
    fn shadowed_data_clause() {
        let src = "int N;\ndouble a[N];\n\
             #pragma acc data copy(a)\n{\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 0; i < N; i++) { a[i] = a[i] + 1.0; }\n}\n}";
        let c = codes(src);
        assert!(c.contains(&"L401"), "{c:?}");
    }

    #[test]
    fn findings_rank_errors_first() {
        let src = "int N; double s;\ndouble a[N]; double b[N]; double dead[N];\ns = 0;\n\
             #pragma acc parallel copyin(a) copyin(dead) copy(b)\n{\n\
             #pragma acc loop gang\n\
             for (int i = 1; i < N; i++) { s += a[i]; b[i] = b[i - 1]; }\n}";
        let f = findings(src);
        let codes: Vec<_> = f.iter().map(|x| x.code()).collect();
        assert!(codes.contains(&"L100"), "{codes:?}");
        assert!(codes.contains(&"L200"), "{codes:?}");
        assert!(codes.contains(&"L402"), "{codes:?}");
        // Errors (L100/L200) must come before the warning (L402).
        let pos_err = codes.iter().position(|c| *c == "L200").unwrap();
        let pos_warn = codes.iter().position(|c| *c == "L402").unwrap();
        assert!(pos_err < pos_warn);
    }
}
