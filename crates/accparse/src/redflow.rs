//! `redflow` — reduction-aware dependence classification and
//! cascaded-fusion legality (DESIGN.md §17).
//!
//! The dependence layer ([`crate::dataflow::loop_dependence`]) proves
//! *where* iterations of a parallel loop conflict; it cannot say whether
//! a conflict is harmful. This pass adds the missing judgment for the one
//! benign conflict class the paper cares about: **reduction idioms**. An
//! access pair that races on `a[e]` is harmless when every touch of `a`
//! in the loop is an update `a[e] ⊕= v` with a single associative,
//! commutative operator `⊕` — the updates commute, so any interleaving
//! yields the same result and the dependence can be *relaxed* (Polly's
//! reduction-aware scheduling applies the same rule to polyhedral
//! dependences).
//!
//! Two verdict surfaces are exported:
//!
//! * **Array-reduction classification** ([`classify_array_reduction`]) —
//!   a small lattice over one loop body and one array:
//!
//!   ```text
//!              NotReduction            (no update-shaped store)
//!                   |
//!               Proven{op}             (uniform op, no strays — relax)
//!              /    |     \
//!         Mixed  Escape  Overwrite     (illegal: L211, never relax)
//!   ```
//!
//!   The relaxation rule is deliberately conservative: `Proven` requires
//!   every store to be update-shaped with the *same* operator, and no
//!   read or plain write of the array anywhere else in the loop. Anything
//!   unproven keeps its L200/L201 finding.
//!
//! * **Fusion-legality analysis** ([`fusion_plan`]) — region-level
//!   def/use chains over cascaded parallel regions. Two adjacent regions
//!   are fusable (one back-to-back device launch, no host round-trip)
//!   when the producer's outputs are fully consumed by the consumer, no
//!   interleaved host mutation depends on (or feeds) the pair, the launch
//!   shapes agree, and no write-write or anti-dependence links them. The
//!   plan is machine-readable (`--fusion-plan=json`, uhaccd `/analyze`)
//!   and byte-stable, pinned by goldens.

use crate::ast::{Level, RedOp};
use crate::dataflow::{
    bin_red_op, children, collect_array_accesses, expr_eq, expr_syms, scalar_events, strip_casts,
    ScalarEventKind,
};
use crate::diag::{json_escape, Span};
use crate::hir::{AnalyzedProgram, AnalyzedRegion, HExpr, HExprKind, HStmt, MathFunc, Sym};
use std::collections::BTreeSet;

// ---- array reduction classification -------------------------------------

/// One `a[e] ⊕= v` update site found in a loop body.
#[derive(Debug, Clone, Copy)]
pub struct ArrayUpdateSite {
    pub op: RedOp,
    pub span: Span,
}

/// Raw facts about how one array is touched inside one loop body.
#[derive(Debug, Default)]
pub struct ArrayRedInfo {
    /// Update-shaped stores `a[e] ⊕= v` (self-load with matching
    /// subscripts, operand free of `a`).
    pub updates: Vec<ArrayUpdateSite>,
    /// Stores that are not update-shaped.
    pub plain_writes: Vec<Span>,
    /// Loads of the array outside an update's self-read position
    /// (including loads in subscripts and in other statements).
    pub stray_reads: Vec<Span>,
}

/// Verdict of the array-reduction lattice for one (loop body, array).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrayRedVerdict {
    /// No update-shaped store: an ordinary dependence, not a reduction.
    NotReduction,
    /// Every touch of the array is an `op`-update: the carried dependence
    /// commutes and may be relaxed (L210).
    Proven {
        op: RedOp,
        /// Span of the first update site (diagnostic anchor).
        update: Span,
        /// Number of update sites the proof covers.
        sites: usize,
    },
    /// Update sites disagree on the operator — combining them is
    /// order-sensitive (L211).
    Mixed {
        first_op: RedOp,
        second_op: RedOp,
        first: Span,
        second: Span,
    },
    /// The running value escapes: the array is read outside an update's
    /// self-read position mid-loop (L211).
    Escape { update: Span, read: Span },
    /// A plain (non-update) store overwrites the accumulator (L211).
    Overwrite { update: Span, write: Span },
}

/// Does `e` load `array` anywhere?
fn expr_loads_array(e: &HExpr, array: usize) -> bool {
    if matches!(&e.kind, HExprKind::Load { array: a, .. } if *a == array) {
        return true;
    }
    children(e).into_iter().any(|c| expr_loads_array(c, array))
}

/// Collect spans of every load of `array` in `e`.
fn expr_array_reads(e: &HExpr, array: usize, out: &mut Vec<Span>) {
    if matches!(&e.kind, HExprKind::Load { array: a, .. } if *a == array) {
        out.push(e.span);
    }
    for c in children(e) {
        expr_array_reads(c, array, out);
    }
}

/// Recognize a store as an array reduction update: `value` is
/// `a[indices] ⊕ v` (either operand order) or `fmax/fmin/max/min(a[indices], v)`
/// where the self-load's subscripts structurally equal the store's and the
/// other operand `v` never loads `a`. Returns the operator and `v`.
pub fn store_update_shape<'a>(
    array: usize,
    indices: &[HExpr],
    value: &'a HExpr,
) -> Option<(RedOp, &'a HExpr)> {
    let v = strip_casts(value);
    let is_self = |e: &HExpr| match &strip_casts(e).kind {
        HExprKind::Load {
            array: a,
            indices: ix,
        } => {
            *a == array
                && ix.len() == indices.len()
                && ix.iter().zip(indices).all(|(p, q)| expr_eq(p, q))
        }
        _ => false,
    };
    match &v.kind {
        HExprKind::Bin { op, lhs, rhs, .. } => {
            let rop = bin_red_op(*op)?;
            for (own, other) in [(lhs, rhs), (rhs, lhs)] {
                if is_self(own) && !expr_loads_array(other, array) {
                    return Some((rop, other));
                }
            }
            None
        }
        HExprKind::Call { func, args } if args.len() == 2 => {
            let rop = match func {
                MathFunc::FMax | MathFunc::IMax => RedOp::Max,
                MathFunc::FMin | MathFunc::IMin => RedOp::Min,
                _ => return None,
            };
            for (own, other) in [(&args[0], &args[1]), (&args[1], &args[0])] {
                if is_self(own) && !expr_loads_array(other, array) {
                    return Some((rop, other));
                }
            }
            None
        }
        _ => None,
    }
}

fn array_info_walk(stmts: &[HStmt], array: usize, info: &mut ArrayRedInfo) {
    for s in stmts {
        match s {
            HStmt::AssignLocal { value, .. } | HStmt::AssignHost { value, .. } => {
                expr_array_reads(value, array, &mut info.stray_reads);
            }
            HStmt::ReduceUpdate { value, .. } => {
                expr_array_reads(value, array, &mut info.stray_reads);
            }
            HStmt::Store {
                array: a,
                indices,
                value,
            } => {
                // Loads of the target array inside any subscript are
                // always stray: the reduction proof only licenses the
                // self-read in value position.
                for ix in indices {
                    expr_array_reads(ix, array, &mut info.stray_reads);
                }
                if *a == array {
                    if let Some((op, _)) = store_update_shape(array, indices, value) {
                        info.updates.push(ArrayUpdateSite {
                            op,
                            span: value.span,
                        });
                        // The self-load is licensed; the shape check
                        // already proved the other operand is `a`-free.
                    } else {
                        info.plain_writes
                            .push(indices.first().map(|e| e.span).unwrap_or(value.span));
                        expr_array_reads(value, array, &mut info.stray_reads);
                    }
                } else {
                    expr_array_reads(value, array, &mut info.stray_reads);
                }
            }
            HStmt::If { cond, then, els } => {
                expr_array_reads(cond, array, &mut info.stray_reads);
                array_info_walk(then, array, info);
                array_info_walk(els, array, info);
            }
            HStmt::Loop(l) => {
                expr_array_reads(&l.lower, array, &mut info.stray_reads);
                expr_array_reads(&l.bound, array, &mut info.stray_reads);
                expr_array_reads(&l.step, array, &mut info.stray_reads);
                array_info_walk(&l.body, array, info);
            }
        }
    }
}

/// Gather every update site, plain write and stray read of `array` in
/// `body`, descending through nested control flow and loops (a
/// conditional update still counts — the proof is path-insensitive).
pub fn array_reduction_info(body: &[HStmt], array: usize) -> ArrayRedInfo {
    let mut info = ArrayRedInfo::default();
    array_info_walk(body, array, &mut info);
    info
}

/// Run the array-reduction lattice over one (loop body, array).
pub fn classify_array_reduction(body: &[HStmt], array: usize) -> ArrayRedVerdict {
    let info = array_reduction_info(body, array);
    let Some(first) = info.updates.first() else {
        return ArrayRedVerdict::NotReduction;
    };
    if let Some(second) = info.updates.iter().find(|u| u.op != first.op) {
        return ArrayRedVerdict::Mixed {
            first_op: first.op,
            second_op: second.op,
            first: first.span,
            second: second.span,
        };
    }
    if let Some(read) = info.stray_reads.first() {
        return ArrayRedVerdict::Escape {
            update: first.span,
            read: *read,
        };
    }
    if let Some(write) = info.plain_writes.first() {
        return ArrayRedVerdict::Overwrite {
            update: first.span,
            write: *write,
        };
    }
    ArrayRedVerdict::Proven {
        op: first.op,
        update: first.span,
        sites: info.updates.len(),
    }
}

/// The identity element of a reduction operator, as diagnostic text.
pub fn identity_text(op: RedOp, is_float: bool) -> &'static str {
    match (op, is_float) {
        (RedOp::Add, _) => "0",
        (RedOp::Mul, _) => "1",
        (RedOp::Max, true) => "-inf",
        (RedOp::Max, false) => "INT_MIN",
        (RedOp::Min, true) => "+inf",
        (RedOp::Min, false) => "INT_MAX",
        (RedOp::BitAnd, _) => "~0",
        (RedOp::BitOr, _) | (RedOp::BitXor, _) | (RedOp::LogOr, _) => "0",
        (RedOp::LogAnd, _) => "1",
    }
}

/// Describe what privatizing the accumulator across `levels` costs —
/// shown on L210 so the relaxation's price is visible before the future
/// fusion-codegen pass commits to it.
pub fn privatization_cost(levels: &[Level]) -> String {
    if levels.is_empty() {
        return "none (sequential loop)".to_string();
    }
    let names: Vec<String> = levels.iter().map(|l| l.to_string()).collect();
    format!(
        "one private copy per {} lane, combined in a log-depth tree at loop exit",
        names.join("+")
    )
}

// ---- fusion-legality analysis -------------------------------------------

/// Launch-shape dimension of a region, normalized for plan output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeDim {
    /// Clause absent (runtime default).
    Absent,
    /// Present with a non-constant expression.
    Expr,
    /// Present with a constant value.
    Const(i64),
}

impl ShapeDim {
    fn of(e: &Option<HExpr>) -> ShapeDim {
        match e {
            None => ShapeDim::Absent,
            Some(e) => match e.const_int() {
                Some(k) => ShapeDim::Const(k),
                None => ShapeDim::Expr,
            },
        }
    }

    fn json(&self) -> String {
        match self {
            ShapeDim::Absent => "null".to_string(),
            ShapeDim::Expr => "\"expr\"".to_string(),
            ShapeDim::Const(k) => k.to_string(),
        }
    }
}

/// One region's def/use summary in the fusion plan.
#[derive(Debug, Clone)]
pub struct PlanRegion {
    pub index: usize,
    /// `"reduce"` when the region carries a reduction (clause or proven
    /// array idiom), `"map"` otherwise.
    pub kind: &'static str,
    /// 1-based source line of the region.
    pub line: u32,
    /// Names (arrays and host scalars) the region writes, sorted.
    pub writes: Vec<String>,
    /// Names the region reads, sorted.
    pub reads: Vec<String>,
    pub gangs: ShapeDim,
    pub workers: ShapeDim,
    pub vector: ShapeDim,
}

/// Fusion verdict for one adjacent region pair.
#[derive(Debug, Clone)]
pub struct FusionPair {
    pub producer: usize,
    pub consumer: usize,
    pub fusable: bool,
    /// Producer outputs the consumer reads (the def/use links), sorted.
    pub links: Vec<String>,
    /// First failed legality condition, `None` when fusable.
    pub reject: Option<String>,
}

/// The full fusion plan for a program.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    pub regions: Vec<PlanRegion>,
    pub pairs: Vec<FusionPair>,
    /// Maximal runs of ≥2 consecutively fusable regions.
    pub chains: Vec<Vec<usize>>,
}

/// Version of the fusion-plan JSON schema. Bump on envelope changes.
pub const FUSION_PLAN_SCHEMA_VERSION: u32 = 1;

/// Internal per-region dataflow facts (index sets, not names).
struct RegionFacts {
    writes_arrays: BTreeSet<usize>,
    reads_arrays: BTreeSet<usize>,
    writes_hosts: BTreeSet<usize>,
    reads_hosts: BTreeSet<usize>,
    span: Span,
}

fn region_facts(r: &AnalyzedRegion) -> RegionFacts {
    let mut accs = Vec::new();
    collect_array_accesses(&r.body, &mut accs);
    let writes_arrays: BTreeSet<usize> = accs
        .iter()
        .filter(|a| a.is_write)
        .map(|a| a.array)
        .collect();
    let reads_arrays: BTreeSet<usize> = accs
        .iter()
        .filter(|a| !a.is_write)
        .map(|a| a.array)
        .collect();
    let writes_hosts: BTreeSet<usize> = r.hosts_written.iter().copied().collect();
    let mut reads_hosts: BTreeSet<usize> = BTreeSet::new();
    for ev in scalar_events(&r.body) {
        if let Sym::Host(h) = ev.sym {
            match ev.kind {
                ScalarEventKind::Read => {
                    reads_hosts.insert(h);
                }
                // An update (clause or plain) folds the scalar's incoming
                // value into the result: a read for dataflow purposes.
                ScalarEventKind::Update(_) | ScalarEventKind::ClauseUpdate(_) => {
                    reads_hosts.insert(h);
                }
                ScalarEventKind::Write => {}
            }
        }
    }
    RegionFacts {
        writes_arrays,
        reads_arrays,
        writes_hosts,
        reads_hosts,
        span: r.span,
    }
}

/// Is this region a reduction region (clause reduction anywhere, or a
/// proven array-reduction idiom in a parallel loop)?
fn region_kind(r: &AnalyzedRegion) -> &'static str {
    let mut reduce = false;
    crate::hir::visit_loops(&r.body, &mut |l| {
        if !l.reductions.is_empty() {
            reduce = true;
        }
        if !l.sched.is_empty() {
            let mut accs = Vec::new();
            collect_array_accesses(&l.body, &mut accs);
            let written: BTreeSet<usize> = accs
                .iter()
                .filter(|a| a.is_write)
                .map(|a| a.array)
                .collect();
            for a in written {
                if matches!(
                    classify_array_reduction(&l.body, a),
                    ArrayRedVerdict::Proven { .. }
                ) {
                    reduce = true;
                }
            }
        }
    });
    if reduce {
        "reduce"
    } else {
        "map"
    }
}

fn shape_compatible(p: &AnalyzedRegion, c: &AnalyzedRegion) -> bool {
    let dim_ok = |a: &Option<HExpr>, b: &Option<HExpr>| match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => expr_eq(x, y),
        _ => false,
    };
    dim_ok(&p.num_gangs, &c.num_gangs)
        && dim_ok(&p.num_workers, &c.num_workers)
        && dim_ok(&p.vector_length, &c.vector_length)
}

/// Build the fusion plan: per-region summaries, adjacent-pair legality
/// verdicts, and maximal fusable chains.
pub fn fusion_plan(p: &AnalyzedProgram) -> FusionPlan {
    let facts: Vec<RegionFacts> = p.regions.iter().map(region_facts).collect();
    let names = |arrays: &BTreeSet<usize>, hosts: &BTreeSet<usize>| -> Vec<String> {
        let mut out: BTreeSet<String> = arrays.iter().map(|a| p.arrays[*a].name.clone()).collect();
        out.extend(hosts.iter().map(|h| p.hosts[*h].name.clone()));
        out.into_iter().collect()
    };
    let regions: Vec<PlanRegion> = p
        .regions
        .iter()
        .zip(&facts)
        .enumerate()
        .map(|(i, (r, f))| PlanRegion {
            index: i,
            kind: region_kind(r),
            line: p.line_of(r.span.start),
            writes: names(&f.writes_arrays, &f.writes_hosts),
            reads: names(&f.reads_arrays, &f.reads_hosts),
            gangs: ShapeDim::of(&r.num_gangs),
            workers: ShapeDim::of(&r.num_workers),
            vector: ShapeDim::of(&r.vector_length),
        })
        .collect();

    let mut pairs = Vec::new();
    for i in 0..p.regions.len().saturating_sub(1) {
        pairs.push(judge_pair(p, &facts, i));
    }

    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    for pr in &pairs {
        if pr.fusable {
            if run.is_empty() {
                run.push(pr.producer);
            }
            run.push(pr.consumer);
        } else if run.len() >= 2 {
            chains.push(std::mem::take(&mut run));
        } else {
            run.clear();
        }
    }
    if run.len() >= 2 {
        chains.push(run);
    }
    FusionPlan {
        regions,
        pairs,
        chains,
    }
}

fn judge_pair(p: &AnalyzedProgram, facts: &[RegionFacts], i: usize) -> FusionPair {
    let (pf, cf) = (&facts[i], &facts[i + 1]);
    let (pr, cr) = (&p.regions[i], &p.regions[i + 1]);
    let mut link_names: BTreeSet<String> = pf
        .writes_arrays
        .intersection(&cf.reads_arrays)
        .map(|a| p.arrays[*a].name.clone())
        .collect();
    link_names.extend(
        pf.writes_hosts
            .intersection(&cf.reads_hosts)
            .map(|h| p.hosts[*h].name.clone()),
    );
    let links: Vec<String> = link_names.into_iter().collect();
    let reject = |reason: String| FusionPair {
        producer: i,
        consumer: i + 1,
        fusable: false,
        links: links.clone(),
        reject: Some(reason),
    };

    // 1. No interleaved host mutation that depends on the producer (it
    //    would have to run between the fused launches, even when it
    //    mediates the dataflow to the consumer) or re-targets a producer
    //    output (ordering would flip under hoisting). Independent assigns
    //    (`error = 0.0`) commute past both launches and do not block.
    for ha in &p.host_assigns {
        let between = pf.span.end <= ha.span.start && ha.span.end <= cf.span.start;
        if !between {
            continue;
        }
        let mut read: std::collections::HashSet<Sym> = std::collections::HashSet::new();
        expr_syms(&ha.value, &mut read);
        let depends = read
            .iter()
            .any(|s| matches!(s, Sym::Host(h) if pf.writes_hosts.contains(h)))
            || pf.writes_hosts.contains(&ha.host);
        if depends {
            return reject(format!(
                "interleaved host mutation of `{}` between the regions",
                p.hosts[ha.host].name
            ));
        }
    }
    // 2. A def/use link must exist: fusing unrelated launches saves a
    //    round-trip but is a scheduling concern, not a legality fact this
    //    pass certifies.
    if links.is_empty() {
        return reject("no producer-to-consumer dataflow".to_string());
    }
    // 3. Full consumption: every producer output must be read by the
    //    consumer, otherwise a later region (or the host) still expects
    //    the intermediate and the fused kernel cannot retire it.
    for a in &pf.writes_arrays {
        if !cf.reads_arrays.contains(a) {
            return reject(format!(
                "producer output `{}` is not consumed by the next region",
                p.arrays[*a].name
            ));
        }
    }
    for h in &pf.writes_hosts {
        if !cf.reads_hosts.contains(h) {
            return reject(format!(
                "producer output `{}` is not consumed by the next region",
                p.hosts[*h].name
            ));
        }
    }
    // 4. Launch shapes must agree: a fused chain is one launch geometry.
    if !shape_compatible(pr, cr) {
        return reject("launch shapes differ (num_gangs/num_workers/vector_length)".to_string());
    }
    // 5. No write-write conflicts: both regions storing to one array (or
    //    host scalar) is order-sensitive under fused execution.
    if let Some(a) = pf.writes_arrays.intersection(&cf.writes_arrays).next() {
        return reject(format!(
            "both regions write `{}` (write-write conflict)",
            p.arrays[*a].name
        ));
    }
    if let Some(h) = pf.writes_hosts.intersection(&cf.writes_hosts).next() {
        return reject(format!(
            "both regions write `{}` (write-write conflict)",
            p.hosts[*h].name
        ));
    }
    // 6. No anti-dependence: the consumer must not overwrite anything the
    //    producer still reads — fused element-wise execution could feed
    //    the producer an updated value.
    if let Some(a) = pf.reads_arrays.intersection(&cf.writes_arrays).next() {
        return reject(format!(
            "anti-dependence: consumer overwrites `{}` which the producer reads",
            p.arrays[*a].name
        ));
    }
    if let Some(h) = pf.reads_hosts.intersection(&cf.writes_hosts).next() {
        return reject(format!(
            "anti-dependence: consumer overwrites `{}` which the producer reads",
            p.hosts[*h].name
        ));
    }
    FusionPair {
        producer: i,
        consumer: i + 1,
        fusable: true,
        links,
        reject: None,
    }
}

// ---- plan rendering ------------------------------------------------------

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Serialize the plan as byte-stable JSON (hand-rolled, fixed field
/// order; same discipline as [`crate::diag::diags_to_json`]).
pub fn fusion_plan_json(plan: &FusionPlan) -> String {
    let regions: Vec<String> = plan
        .regions
        .iter()
        .map(|r| {
            format!(
                "{{\"index\":{},\"kind\":\"{}\",\"line\":{},\"writes\":{},\"reads\":{},\
                 \"shape\":{{\"gangs\":{},\"workers\":{},\"vector\":{}}}}}",
                r.index,
                r.kind,
                r.line,
                json_str_list(&r.writes),
                json_str_list(&r.reads),
                r.gangs.json(),
                r.workers.json(),
                r.vector.json()
            )
        })
        .collect();
    let pairs: Vec<String> = plan
        .pairs
        .iter()
        .map(|pr| {
            let reject = match &pr.reject {
                Some(r) => format!("\"{}\"", json_escape(r)),
                None => "null".to_string(),
            };
            format!(
                "{{\"producer\":{},\"consumer\":{},\"fusable\":{},\"links\":{},\"reject\":{reject}}}",
                pr.producer,
                pr.consumer,
                pr.fusable,
                json_str_list(&pr.links)
            )
        })
        .collect();
    let chains: Vec<String> = plan
        .chains
        .iter()
        .map(|c| {
            let ids: Vec<String> = c.iter().map(|i| i.to_string()).collect();
            format!("[{}]", ids.join(","))
        })
        .collect();
    format!(
        "{{\"schema_version\":{FUSION_PLAN_SCHEMA_VERSION},\"regions\":[{}],\"pairs\":[{}],\"chains\":[{}]}}",
        regions.join(","),
        pairs.join(","),
        chains.join(",")
    )
}

/// Render the plan for humans (the default `--fusion-plan` output).
pub fn fusion_plan_text(plan: &FusionPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fusion plan: {} region(s), {} fusable pair(s), {} chain(s)\n",
        plan.regions.len(),
        plan.pairs.iter().filter(|p| p.fusable).count(),
        plan.chains.len()
    ));
    for r in &plan.regions {
        out.push_str(&format!(
            "  region {} [{}] line {}: writes {}; reads {}\n",
            r.index,
            r.kind,
            r.line,
            if r.writes.is_empty() {
                "-".to_string()
            } else {
                r.writes.join(", ")
            },
            if r.reads.is_empty() {
                "-".to_string()
            } else {
                r.reads.join(", ")
            },
        ));
    }
    for pr in &plan.pairs {
        match &pr.reject {
            None => out.push_str(&format!(
                "  pair {} -> {}: FUSABLE via {}\n",
                pr.producer,
                pr.consumer,
                pr.links.join(", ")
            )),
            Some(why) => out.push_str(&format!(
                "  pair {} -> {}: blocked ({why})\n",
                pr.producer, pr.consumer
            )),
        }
    }
    for c in &plan.chains {
        let ids: Vec<String> = c.iter().map(|i| i.to_string()).collect();
        out.push_str(&format!("  chain: {}\n", ids.join(" -> ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> AnalyzedProgram {
        crate::compile(src).expect("compile")
    }

    fn loop_body(p: &AnalyzedProgram) -> &[HStmt] {
        match &p.regions[0].body[0] {
            HStmt::Loop(l) => &l.body,
            _ => panic!("no loop"),
        }
    }

    fn one_loop(update: &str) -> String {
        format!(
            "int N;\ndouble a[N]; double b[N]; double c[N];\nint bin[N]; int hist[N];\n\
             #pragma acc parallel copy(a) copy(hist) copyin(b) copyin(c) copyin(bin)\n{{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) {{ {update} }}\n}}"
        )
    }

    #[test]
    fn classify_proves_uniform_updates() {
        for (update, op) in [
            ("a[0] = a[0] + b[i];", RedOp::Add),
            ("a[0] += b[i];", RedOp::Add),
            ("a[0] = b[i] + a[0];", RedOp::Add),
            ("a[0] *= b[i];", RedOp::Mul),
            ("a[0] = fmax(a[0], b[i]);", RedOp::Max),
            ("a[0] = fmin(b[i], a[0]);", RedOp::Min),
            ("hist[bin[i]] += 1;", RedOp::Add),
        ] {
            let p = compile(&one_loop(update));
            let arr = if update.starts_with("hist") {
                p.array_index("hist").unwrap()
            } else {
                p.array_index("a").unwrap()
            };
            match classify_array_reduction(loop_body(&p), arr) {
                ArrayRedVerdict::Proven { op: got, sites, .. } => {
                    assert_eq!(got, op, "for `{update}`");
                    assert_eq!(sites, 1, "for `{update}`");
                }
                v => panic!("`{update}` classified {v:?}"),
            }
        }
    }

    #[test]
    fn classify_rejects_illegal_shapes() {
        let p = compile(&one_loop("a[0] += b[i]; a[0] *= c[i];"));
        let a = p.array_index("a").unwrap();
        assert!(matches!(
            classify_array_reduction(loop_body(&p), a),
            ArrayRedVerdict::Mixed {
                first_op: RedOp::Add,
                second_op: RedOp::Mul,
                ..
            }
        ));

        // Mid-loop read of the accumulator escapes the running value.
        let src = "int N;\ndouble a[N]; double b[N]; double out[N];\n\
             #pragma acc parallel copy(a) copyin(b) copyout(out)\n{\n\
             #pragma acc loop gang\nfor (int i = 0; i < N; i++) { a[0] += b[i]; out[i] = a[0]; }\n}";
        let p = compile(src);
        let a = p.array_index("a").unwrap();
        assert!(matches!(
            classify_array_reduction(loop_body(&p), a),
            ArrayRedVerdict::Escape { .. }
        ));

        let p = compile(&one_loop("a[0] += b[i]; a[0] = c[i];"));
        let a = p.array_index("a").unwrap();
        assert!(matches!(
            classify_array_reduction(loop_body(&p), a),
            ArrayRedVerdict::Overwrite { .. }
        ));

        // Subscript loading the accumulator array itself is a stray read.
        let p = compile(&one_loop("hist[hist[i]] += 1;"));
        let h = p.array_index("hist").unwrap();
        assert!(matches!(
            classify_array_reduction(loop_body(&p), h),
            ArrayRedVerdict::Escape { .. }
        ));

        // `a[i] -= b[i]`-style non-commutative shapes never prove.
        let p = compile(&one_loop("a[0] = a[0] - b[i];"));
        let a = p.array_index("a").unwrap();
        assert_eq!(
            classify_array_reduction(loop_body(&p), a),
            ArrayRedVerdict::NotReduction
        );
    }

    #[test]
    fn conditional_update_still_proves() {
        let p = compile(&one_loop("if (b[i] > 0.0) { a[0] += b[i]; }"));
        let a = p.array_index("a").unwrap();
        assert!(matches!(
            classify_array_reduction(loop_body(&p), a),
            ArrayRedVerdict::Proven { op: RedOp::Add, .. }
        ));
    }

    #[test]
    fn identity_table() {
        assert_eq!(identity_text(RedOp::Add, true), "0");
        assert_eq!(identity_text(RedOp::Max, true), "-inf");
        assert_eq!(identity_text(RedOp::Max, false), "INT_MIN");
        assert_eq!(identity_text(RedOp::Min, false), "INT_MAX");
        assert_eq!(identity_text(RedOp::BitAnd, false), "~0");
        assert_eq!(identity_text(RedOp::LogAnd, false), "1");
    }

    const CHAIN_SRC: &str = "int N; double s; double v;\ndouble a[N];\ns = 0; v = 0;\n\
         #pragma acc parallel copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:s)\n\
         for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
         #pragma acc parallel copyin(a)\n{\n\
         #pragma acc loop gang reduction(+:v)\n\
         for (int i = 0; i < N; i++) { v += (a[i] - s / N) * (a[i] - s / N); }\n}";

    #[test]
    fn fusion_plan_finds_legal_chain() {
        let p = compile(CHAIN_SRC);
        let plan = fusion_plan(&p);
        assert_eq!(plan.regions.len(), 2);
        assert_eq!(plan.regions[0].kind, "reduce");
        assert_eq!(plan.pairs.len(), 1);
        assert!(plan.pairs[0].fusable, "{:?}", plan.pairs[0]);
        assert_eq!(plan.pairs[0].links, vec!["s".to_string()]);
        assert_eq!(plan.chains, vec![vec![0, 1]]);
    }

    #[test]
    fn fusion_rejects_interleaved_host_mutation() {
        // `m = s / N` between the regions depends on the producer's
        // reduction output: the chain cannot fuse across it.
        let src = "int N; double s; double m; double v;\ndouble a[N];\ns = 0; v = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
             m = s / N;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:v)\n\
             for (int i = 0; i < N; i++) { v += (a[i] - m) * (a[i] - m); }\n}";
        let p = compile(src);
        let plan = fusion_plan(&p);
        assert!(!plan.pairs[0].fusable);
        assert!(
            plan.pairs[0]
                .reject
                .as_deref()
                .unwrap()
                .contains("interleaved host mutation"),
            "{:?}",
            plan.pairs[0]
        );
        assert!(plan.chains.is_empty());
    }

    #[test]
    fn fusion_rejects_shape_mismatch() {
        let src = "int N; double s; double v;\ndouble a[N];\ns = 0; v = 0;\n\
             #pragma acc parallel num_gangs(64) copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
             #pragma acc parallel num_gangs(128) copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:v)\n\
             for (int i = 0; i < N; i++) { v += a[i] * s; }\n}";
        let p = compile(src);
        let plan = fusion_plan(&p);
        assert!(!plan.pairs[0].fusable);
        assert!(plan.pairs[0]
            .reject
            .as_deref()
            .unwrap()
            .contains("launch shapes differ"));
        assert_eq!(plan.regions[0].gangs, ShapeDim::Const(64));
        assert_eq!(plan.regions[1].gangs, ShapeDim::Const(128));
    }

    #[test]
    fn fusion_rejects_unconsumed_output() {
        // The producer also writes `partial`, which the consumer ignores.
        let src = "int N; double s; double v;\ndouble a[N]; double partial[N];\ns = 0; v = 0;\n\
             #pragma acc parallel copyin(a) copyout(partial)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; partial[i] = a[i]; }\n}\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:v)\n\
             for (int i = 0; i < N; i++) { v += a[i] * s; }\n}";
        let p = compile(src);
        let plan = fusion_plan(&p);
        assert!(!plan.pairs[0].fusable);
        assert!(plan.pairs[0]
            .reject
            .as_deref()
            .unwrap()
            .contains("`partial` is not consumed"));
    }

    #[test]
    fn plan_json_is_byte_stable() {
        let p = compile(CHAIN_SRC);
        let a = fusion_plan_json(&fusion_plan(&p));
        let b = fusion_plan_json(&fusion_plan(&p));
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema_version\":1,\"regions\":["), "{a}");
        assert!(a.contains("\"chains\":[[0,1]]"), "{a}");
    }
}
