//! Abstract syntax tree for the mini-C + OpenACC dialect.

use crate::diag::Span;
use std::fmt;

/// C scalar types supported in kernels (the paper's testsuite data types
/// plus `long`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CType {
    Int,
    Long,
    Float,
    Double,
}

impl CType {
    /// Parse a C type name.
    pub fn from_name(s: &str) -> Option<CType> {
        match s {
            "int" => Some(CType::Int),
            "long" => Some(CType::Long),
            "float" => Some(CType::Float),
            "double" => Some(CType::Double),
            _ => None,
        }
    }

    /// Size in bytes.
    pub fn size(self) -> usize {
        match self {
            CType::Int | CType::Float => 4,
            CType::Long | CType::Double => 8,
        }
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }

    /// C usual-arithmetic-conversions result type of two operands.
    pub fn promote(a: CType, b: CType) -> CType {
        use CType::*;
        match (a, b) {
            (Double, _) | (_, Double) => Double,
            (Float, _) | (_, Float) => Float,
            (Long, _) | (_, Long) => Long,
            _ => Int,
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CType::Int => "int",
            CType::Long => "long",
            CType::Float => "float",
            CType::Double => "double",
        };
        f.write_str(s)
    }
}

/// Binary operators in the surface language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOpKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOpKind {
    Neg,
    Not,
    BitNot,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    Ident(String),
    /// `base[i][j]...` — multi-dimensional subscript.
    Index {
        base: String,
        indices: Vec<Expr>,
    },
    Un {
        op: UnOpKind,
        operand: Box<Expr>,
    },
    Bin {
        op: BinOpKind,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`
    Cond {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `f(args...)` — intrinsic math call.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `(type)expr`
    Cast {
        ty: CType,
        operand: Box<Expr>,
    },
}

impl Expr {
    /// Construct an expression with a span.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Assignment operators (`=`, `+=`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// An lvalue: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Var(String),
    Elem { base: String, indices: Vec<Expr> },
}

impl LValue {
    /// The root variable name.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Elem { base, .. } => base,
        }
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

/// Statement variants.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // ForLoop dominates; stmts are built once
pub enum StmtKind {
    /// `type name = init;` or `type name[d0][d1];`
    Decl {
        ty: CType,
        name: String,
        dims: Vec<Expr>,
        init: Option<Expr>,
    },
    /// `lhs <op>= rhs;`
    Assign {
        op: AssignOp,
        lhs: LValue,
        rhs: Expr,
    },
    /// `name++;` / `name--;`
    IncDec { name: String, inc: bool },
    /// `if (cond) then [else els]`
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// A `for` loop, possibly carrying an `acc loop` directive.
    For(ForLoop),
    /// `{ ... }`
    Block(Vec<Stmt>),
}

/// A `for` loop with its optional loop directive.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Loop variable name (must be assigned in the init clause).
    pub var: String,
    /// Source span of the loop-variable name in the init clause.
    pub var_span: Span,
    /// Set if the init clause declares the variable (`for (int i = ...`).
    pub decl_ty: Option<CType>,
    /// Initial value expression.
    pub init: Expr,
    /// Condition: `var < bound` / `var <= bound` / `var > bound` / `var >= bound`.
    pub cmp: BinOpKind,
    /// Loop bound expression.
    pub bound: Expr,
    /// Step expression (from `i++`, `i += c`, `i--`, `i -= c`); negative for
    /// downward loops.
    pub step: Expr,
    /// The attached `#pragma acc loop` directive, if any.
    pub directive: Option<LoopDirective>,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// The reduction operators of the OpenACC spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    Add,
    Mul,
    Max,
    Min,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

impl RedOp {
    /// Parse the operator token used in a `reduction(op:var)` clause.
    pub fn from_clause_token(s: &str) -> Option<RedOp> {
        match s {
            "+" => Some(RedOp::Add),
            "*" => Some(RedOp::Mul),
            "max" => Some(RedOp::Max),
            "min" => Some(RedOp::Min),
            "&" => Some(RedOp::BitAnd),
            "|" => Some(RedOp::BitOr),
            "^" => Some(RedOp::BitXor),
            "&&" => Some(RedOp::LogAnd),
            "||" => Some(RedOp::LogOr),
            _ => None,
        }
    }

    /// The clause spelling of the operator.
    pub fn clause_token(self) -> &'static str {
        match self {
            RedOp::Add => "+",
            RedOp::Mul => "*",
            RedOp::Max => "max",
            RedOp::Min => "min",
            RedOp::BitAnd => "&",
            RedOp::BitOr => "|",
            RedOp::BitXor => "^",
            RedOp::LogAnd => "&&",
            RedOp::LogOr => "||",
        }
    }
}

impl fmt::Display for RedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.clause_token())
    }
}

/// One `reduction(op: a, b, c)` clause entry, flattened per variable.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionClause {
    pub op: RedOp,
    pub var: String,
    pub span: Span,
}

/// The parallelism levels of a `loop` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    Gang,
    Worker,
    Vector,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Gang => "gang",
            Level::Worker => "worker",
            Level::Vector => "vector",
        };
        f.write_str(s)
    }
}

/// A `#pragma acc loop ...` directive.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopDirective {
    /// Parallelism levels named on the directive, in source order.
    pub levels: Vec<Level>,
    /// `seq` forces sequential execution.
    pub seq: bool,
    /// `collapse(n)` — fuse the next `n` perfectly nested loops.
    pub collapse: Option<u32>,
    /// `reduction(op: vars)` clauses.
    pub reductions: Vec<ReductionClause>,
    /// `private(vars)` clauses.
    pub privates: Vec<NameItem>,
    pub span: Span,
}

/// A bare name inside a clause list (`private(x, y)`), with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct NameItem {
    pub name: String,
    pub span: Span,
}

/// Data-movement direction of a data clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataDir {
    CopyIn,
    CopyOut,
    Copy,
    Create,
    Present,
}

/// One item of a data clause: `name` or `name[start:len]` (the subrange is
/// parsed but whole-array movement is performed, as OpenUH does for
/// contiguous data).
#[derive(Debug, Clone, PartialEq)]
pub struct DataItem {
    pub dir: DataDir,
    pub name: String,
    pub span: Span,
}

/// A `#pragma acc parallel ...` (or `kernels`) construct.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelConstruct {
    /// True when spelled `kernels` (treated identically by this compiler).
    pub is_kernels: bool,
    pub num_gangs: Option<Expr>,
    pub num_workers: Option<Expr>,
    pub vector_length: Option<Expr>,
    pub data: Vec<DataItem>,
    /// Reductions on the `parallel` construct itself (OpenACC allows this;
    /// applied to the outermost gang loop).
    pub reductions: Vec<ReductionClause>,
    pub privates: Vec<NameItem>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// A structured `#pragma acc data` region: its clauses govern the device
/// residency of arrays across the parallel regions it encloses
/// (`regions[first_region..end_region]`).
#[derive(Debug, Clone, PartialEq)]
pub struct DataBlock {
    pub items: Vec<DataItem>,
    /// Index of the first enclosed parallel region.
    pub first_region: usize,
    /// One past the last enclosed parallel region.
    pub end_region: usize,
    pub span: Span,
}

/// A whole translation unit: host declarations followed by one or more
/// parallel constructs, optionally grouped under `data` constructs.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Host-side declarations (scalars bound by the host, arrays with dims).
    pub decls: Vec<Stmt>,
    /// Parallel regions, in order.
    pub regions: Vec<ParallelConstruct>,
    /// Structured data regions (possibly nested), in source order.
    pub data_blocks: Vec<DataBlock>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctype_parse_and_promote() {
        assert_eq!(CType::from_name("int"), Some(CType::Int));
        assert_eq!(CType::from_name("double"), Some(CType::Double));
        assert_eq!(CType::from_name("char"), None);
        assert_eq!(CType::promote(CType::Int, CType::Float), CType::Float);
        assert_eq!(CType::promote(CType::Long, CType::Int), CType::Long);
        assert_eq!(CType::promote(CType::Float, CType::Double), CType::Double);
        assert_eq!(CType::promote(CType::Int, CType::Int), CType::Int);
    }

    #[test]
    fn redop_roundtrip() {
        for op in [
            RedOp::Add,
            RedOp::Mul,
            RedOp::Max,
            RedOp::Min,
            RedOp::BitAnd,
            RedOp::BitOr,
            RedOp::BitXor,
            RedOp::LogAnd,
            RedOp::LogOr,
        ] {
            assert_eq!(RedOp::from_clause_token(op.clause_token()), Some(op));
        }
        assert_eq!(RedOp::from_clause_token("-"), None);
    }

    #[test]
    fn lvalue_base() {
        let v = LValue::Var("x".into());
        assert_eq!(v.base(), "x");
        let e = LValue::Elem {
            base: "a".into(),
            indices: vec![],
        };
        assert_eq!(e.base(), "a");
    }

    #[test]
    fn level_ordering_matches_nesting() {
        assert!(Level::Gang < Level::Worker);
        assert!(Level::Worker < Level::Vector);
    }
}
