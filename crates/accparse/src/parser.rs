//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::diag::{Diag, Span};
use crate::token::{lex, SpannedTok, Tok};

/// Parse a full translation unit.
pub fn parse_program(src: &str) -> Result<Program, Diag> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        data_blocks: Vec::new(),
        expr_depth: 0,
    };
    p.program()
}

/// Parse a single expression (used by tests and by host-side bound
/// evaluation).
pub fn parse_expr(src: &str) -> Result<Expr, Diag> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        data_blocks: Vec::new(),
        expr_depth: 0,
    };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Maximum expression nesting depth. Real programs stay far below this;
/// the guard turns pathological inputs (fuzzer-grade paren towers) into a
/// clean diagnostic instead of betting on stack headroom.
const MAX_EXPR_DEPTH: u32 = 128;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    data_blocks: Vec<DataBlock>,
    expr_depth: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> SpannedTok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Span, Diag> {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            Ok(self.bump().span)
        } else {
            Err(Diag::new(
                format!("expected `{p}`, found {}", describe(self.peek())),
                self.span(),
            ))
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diag> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            other => Err(Diag::new(
                format!("expected identifier, found {}", describe(&other)),
                self.span(),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<(), Diag> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(Diag::new(
                format!("unexpected trailing {}", describe(self.peek())),
                self.span(),
            ))
        }
    }

    fn at_type_keyword(&self) -> Option<CType> {
        match self.peek() {
            Tok::Ident(s) => CType::from_name(s),
            _ => None,
        }
    }

    // ---- program structure ----------------------------------------------

    fn program(&mut self) -> Result<Program, Diag> {
        let mut decls = Vec::new();
        let mut regions = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::PragmaStart => {
                    if self.at_data_pragma() {
                        self.data_block(&mut regions)?;
                        continue;
                    }
                    let construct = self.pragma_region()?;
                    regions.push(construct);
                }
                _ => {
                    if self.at_type_keyword().is_some() {
                        decls.push(self.decl_stmt()?);
                    } else if matches!(self.peek(), Tok::Ident(_)) {
                        // Host-side scalar assignment (e.g. `sum = 0;`).
                        decls.push(self.expr_stmt()?);
                    } else {
                        return Err(Diag::new(
                            format!(
                                "expected declaration or `#pragma acc parallel`, found {}",
                                describe(self.peek())
                            ),
                            self.span(),
                        ));
                    }
                }
            }
        }
        if regions.is_empty() {
            return Err(Diag::new(
                "no `#pragma acc parallel` region found",
                Span::at(0),
            ));
        }
        Ok(Program {
            decls,
            regions,
            data_blocks: std::mem::take(&mut self.data_blocks),
        })
    }

    /// Lookahead: is the pragma at the cursor `#pragma acc data`?
    fn at_data_pragma(&self) -> bool {
        matches!(&self.toks.get(self.pos + 1).map(|t| &t.tok), Some(Tok::Ident(a)) if a == "acc")
            && matches!(&self.toks.get(self.pos + 2).map(|t| &t.tok), Some(Tok::Ident(d)) if d == "data")
    }

    /// `#pragma acc data <data-clauses>` `{` regions... `}` — a structured
    /// data region (OpenACC 1.0) governing residency of the arrays across
    /// the enclosed parallel regions. Nesting is allowed.
    fn data_block(&mut self, regions: &mut Vec<ParallelConstruct>) -> Result<(), Diag> {
        let start = self.bump().span; // PragmaStart
        self.bump(); // acc
        self.bump(); // data
        let mut items = Vec::new();
        while !matches!(self.peek(), Tok::PragmaEnd | Tok::Eof) {
            let (name, span) = self.expect_ident()?;
            let dir = match name.as_str() {
                "copyin" => DataDir::CopyIn,
                "copyout" => DataDir::CopyOut,
                "copy" => DataDir::Copy,
                "create" => DataDir::Create,
                "present" => DataDir::Present,
                other => return Err(Diag::new(format!("unknown data clause `{other}`"), span)),
            };
            self.data_items(dir, &mut items)?;
        }
        self.bump(); // PragmaEnd
        self.expect_punct("{")?;
        let first_region = regions.len();
        while !self.eat_punct("}") {
            match self.peek() {
                Tok::Eof => return Err(Diag::new("unterminated `acc data` region", start)),
                Tok::PragmaStart if self.at_data_pragma() => {
                    self.data_block(regions)?;
                }
                Tok::PragmaStart => {
                    regions.push(self.pragma_region()?);
                }
                _ => {
                    return Err(Diag::new(
                        "only `#pragma acc` constructs may appear inside a data region",
                        self.span(),
                    ))
                }
            }
        }
        self.data_blocks.push(DataBlock {
            items,
            first_region,
            end_region: regions.len(),
            span: start,
        });
        Ok(())
    }

    /// Parse a top-level pragma: `acc parallel`/`acc kernels`, or the
    /// OpenMP 4.0 offload form `omp target teams distribute [parallel for]`
    /// (paper §6: the same methodology with two levels of parallelism —
    /// teams map to gangs, threads to vector lanes, worker is unused).
    fn pragma_region(&mut self) -> Result<ParallelConstruct, Diag> {
        let start = self.bump().span; // PragmaStart
        if self.eat_ident("omp") {
            return self.omp_region(start);
        }
        if !self.eat_ident("acc") {
            return Err(Diag::new(
                "expected `acc` or `omp` after `#pragma`",
                self.span(),
            ));
        }
        let is_kernels = if self.eat_ident("parallel") {
            false
        } else if self.eat_ident("kernels") {
            true
        } else {
            return Err(Diag::new(
                "expected `parallel` or `kernels` at region scope (a `loop` directive \
                 must be inside a parallel region)",
                self.span(),
            ));
        };
        let mut c = ParallelConstruct {
            is_kernels,
            num_gangs: None,
            num_workers: None,
            vector_length: None,
            data: Vec::new(),
            reductions: Vec::new(),
            privates: Vec::new(),
            body: Vec::new(),
            span: start,
        };
        // `parallel loop` combined form: remember and re-attach below.
        let mut combined_loop: Option<LoopDirective> = None;
        if self.eat_ident("loop") {
            combined_loop = Some(LoopDirective {
                span: start,
                ..Default::default()
            });
        }
        while !matches!(self.peek(), Tok::PragmaEnd | Tok::Eof) {
            self.parallel_clause(&mut c, &mut combined_loop)?;
        }
        self.bump(); // PragmaEnd
        let body_stmt = self.stmt()?;
        c.body = match (combined_loop, body_stmt) {
            (
                Some(dir),
                Stmt {
                    kind: StmtKind::For(mut f),
                    span,
                },
            ) => {
                // merge: clauses named on the combined directive belong to the loop
                f.directive = Some(dir);
                vec![Stmt {
                    kind: StmtKind::For(f),
                    span,
                }]
            }
            (Some(_), s) => {
                return Err(Diag::new(
                    "`#pragma acc parallel loop` must be followed by a for loop",
                    s.span,
                ))
            }
            (
                None,
                Stmt {
                    kind: StmtKind::Block(stmts),
                    ..
                },
            ) => stmts,
            (None, s) => vec![s],
        };
        Ok(c)
    }

    fn parallel_clause(
        &mut self,
        c: &mut ParallelConstruct,
        combined: &mut Option<LoopDirective>,
    ) -> Result<(), Diag> {
        let (name, span) = self.expect_ident()?;
        match name.as_str() {
            "num_gangs" => c.num_gangs = Some(self.paren_expr()?),
            "num_workers" => c.num_workers = Some(self.paren_expr()?),
            "vector_length" => c.vector_length = Some(self.paren_expr()?),
            "copyin" => self.data_items(DataDir::CopyIn, &mut c.data)?,
            "copyout" => self.data_items(DataDir::CopyOut, &mut c.data)?,
            "copy" => self.data_items(DataDir::Copy, &mut c.data)?,
            "create" => self.data_items(DataDir::Create, &mut c.data)?,
            "present" => self.data_items(DataDir::Present, &mut c.data)?,
            "private" => {
                let names = self.name_list()?;
                c.privates.extend(names);
            }
            "reduction" => {
                let rs = self.reduction_clause(span)?;
                match combined {
                    // On `parallel loop`, the reduction belongs to the loop.
                    Some(dir) => dir.reductions.extend(rs),
                    None => c.reductions.extend(rs),
                }
            }
            // Combined-directive loop clauses.
            "gang" | "worker" | "vector" | "seq" | "collapse" => match combined {
                Some(dir) => self.loop_word(dir, &name, span)?,
                None => {
                    return Err(Diag::new(
                        format!("clause `{name}` requires a `loop` directive"),
                        span,
                    ))
                }
            },
            "async" | "wait" | "default" | "if" | "firstprivate" | "deviceptr" => {
                // Recognized but unsupported clauses: consume optional args.
                if self.eat_punct("(") {
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump().tok {
                            Tok::Punct("(") => depth += 1,
                            Tok::Punct(")") => depth -= 1,
                            Tok::Eof | Tok::PragmaEnd => {
                                return Err(Diag::new("unterminated clause args", span))
                            }
                            _ => {}
                        }
                    }
                }
            }
            other => {
                return Err(Diag::new(
                    format!("unknown parallel clause `{other}`"),
                    span,
                ));
            }
        }
        Ok(())
    }

    fn loop_word(&mut self, dir: &mut LoopDirective, word: &str, span: Span) -> Result<(), Diag> {
        match word {
            "gang" => dir.levels.push(Level::Gang),
            "worker" => dir.levels.push(Level::Worker),
            "vector" => dir.levels.push(Level::Vector),
            "seq" => dir.seq = true,
            "collapse" => {
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                match e.kind {
                    ExprKind::IntLit(n) if n >= 1 => dir.collapse = Some(n as u32),
                    _ => {
                        return Err(Diag::new(
                            "collapse argument must be a positive integer literal",
                            span,
                        ))
                    }
                }
            }
            "independent" | "auto" => {} // accepted, no effect
            other => {
                return Err(Diag::new(format!("unknown loop clause `{other}`"), span));
            }
        }
        Ok(())
    }

    /// OpenMP offload region: `omp target teams distribute [parallel for]
    /// [clauses]`. Desugared onto the OpenACC AST: teams -> gang, the
    /// optional `parallel for` -> vector on the same loop (two-level
    /// mapping, the worker level is ignored as §6 prescribes).
    fn omp_region(&mut self, start: Span) -> Result<ParallelConstruct, Diag> {
        for w in ["target", "teams", "distribute"] {
            if !self.eat_ident(w) {
                return Err(Diag::new(
                    format!(
                        "expected `{w}` (supported form: `omp target teams \
                             distribute [parallel for]`)"
                    ),
                    self.span(),
                ));
            }
        }
        let mut levels = vec![Level::Gang];
        if self.eat_ident("parallel") {
            if !self.eat_ident("for") {
                return Err(Diag::new("expected `for` after `parallel`", self.span()));
            }
            levels.push(Level::Vector);
        }
        let mut c = ParallelConstruct {
            is_kernels: false,
            num_gangs: None,
            num_workers: None,
            vector_length: None,
            data: Vec::new(),
            reductions: Vec::new(),
            privates: Vec::new(),
            body: Vec::new(),
            span: start,
        };
        let mut dir = LoopDirective {
            levels,
            span: start,
            ..Default::default()
        };
        while !matches!(self.peek(), Tok::PragmaEnd | Tok::Eof) {
            let (name, span) = self.expect_ident()?;
            match name.as_str() {
                "num_teams" => c.num_gangs = Some(self.paren_expr()?),
                "thread_limit" => c.vector_length = Some(self.paren_expr()?),
                "map" => {
                    self.expect_punct("(")?;
                    // map([to|from|tofrom:] list)
                    let dirn = if self.eat_ident("to") {
                        self.expect_punct(":")?;
                        DataDir::CopyIn
                    } else if self.eat_ident("from") {
                        self.expect_punct(":")?;
                        DataDir::CopyOut
                    } else if self.eat_ident("tofrom") {
                        self.expect_punct(":")?;
                        DataDir::Copy
                    } else {
                        DataDir::Copy
                    };
                    loop {
                        let (n, sp) = self.expect_ident()?;
                        while self.eat_punct("[") {
                            let _ = self.expr()?;
                            if self.eat_punct(":") {
                                let _ = self.expr()?;
                            }
                            self.expect_punct("]")?;
                        }
                        c.data.push(DataItem {
                            dir: dirn,
                            name: n,
                            span: sp,
                        });
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                "reduction" => {
                    let rs = self.reduction_clause(span)?;
                    dir.reductions.extend(rs);
                }
                "private" => {
                    let names = self.name_list()?;
                    c.privates.extend(names);
                }
                "schedule" | "collapse" | "if" | "device" => {
                    if name == "collapse" {
                        self.expect_punct("(")?;
                        let e = self.expr()?;
                        self.expect_punct(")")?;
                        match e.kind {
                            ExprKind::IntLit(v) if v >= 1 => dir.collapse = Some(v as u32),
                            _ => {
                                return Err(Diag::new(
                                    "collapse argument must be a positive integer literal",
                                    span,
                                ))
                            }
                        }
                    } else if self.eat_punct("(") {
                        let mut depth = 1;
                        while depth > 0 {
                            match self.bump().tok {
                                Tok::Punct("(") => depth += 1,
                                Tok::Punct(")") => depth -= 1,
                                Tok::Eof | Tok::PragmaEnd => {
                                    return Err(Diag::new("unterminated clause args", span))
                                }
                                _ => {}
                            }
                        }
                    }
                }
                other => {
                    return Err(Diag::new(format!("unknown omp clause `{other}`"), span));
                }
            }
        }
        self.bump(); // PragmaEnd
        let body_stmt = self.stmt()?;
        match body_stmt {
            Stmt {
                kind: StmtKind::For(mut f),
                span,
            } => {
                f.directive = Some(dir);
                c.body = vec![Stmt {
                    kind: StmtKind::For(f),
                    span,
                }];
                Ok(c)
            }
            s => Err(Diag::new(
                "`omp target teams distribute` must be followed by a for loop",
                s.span,
            )),
        }
    }

    fn loop_directive(&mut self) -> Result<LoopDirective, Diag> {
        let start = self.bump().span; // PragmaStart
        if self.eat_ident("omp") {
            // `#pragma omp parallel for [reduction(...)]` inside a teams
            // region: the inner thread level -> vector.
            if !(self.eat_ident("parallel") && self.eat_ident("for")) {
                return Err(Diag::new(
                    "expected `parallel for` (the supported inner OpenMP directive)",
                    self.span(),
                ));
            }
            let mut dir = LoopDirective {
                levels: vec![Level::Vector],
                span: start,
                ..Default::default()
            };
            while !matches!(self.peek(), Tok::PragmaEnd | Tok::Eof) {
                let (name, span) = self.expect_ident()?;
                match name.as_str() {
                    "reduction" => {
                        let rs = self.reduction_clause(span)?;
                        dir.reductions.extend(rs);
                    }
                    "private" => {
                        let names = self.name_list()?;
                        dir.privates.extend(names);
                    }
                    "schedule" => {
                        if self.eat_punct("(") {
                            let mut depth = 1;
                            while depth > 0 {
                                match self.bump().tok {
                                    Tok::Punct("(") => depth += 1,
                                    Tok::Punct(")") => depth -= 1,
                                    Tok::Eof | Tok::PragmaEnd => {
                                        return Err(Diag::new("unterminated clause args", span))
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    other => return Err(Diag::new(format!("unknown omp clause `{other}`"), span)),
                }
            }
            self.bump(); // PragmaEnd
            return Ok(dir);
        }
        if !self.eat_ident("acc") {
            return Err(Diag::new(
                "expected `acc` or `omp` after `#pragma`",
                self.span(),
            ));
        }
        if !self.eat_ident("loop") {
            return Err(Diag::new(
                "only `loop` directives may appear inside a parallel region",
                self.span(),
            ));
        }
        let mut dir = LoopDirective {
            span: start,
            ..Default::default()
        };
        while !matches!(self.peek(), Tok::PragmaEnd | Tok::Eof) {
            let (name, span) = self.expect_ident()?;
            match name.as_str() {
                "reduction" => {
                    let rs = self.reduction_clause(span)?;
                    dir.reductions.extend(rs);
                }
                "private" => {
                    let names = self.name_list()?;
                    dir.privates.extend(names);
                }
                other => self.loop_word(&mut dir, other, span)?,
            }
        }
        self.bump(); // PragmaEnd
        Ok(dir)
    }

    fn paren_expr(&mut self) -> Result<Expr, Diag> {
        self.expect_punct("(")?;
        let e = self.expr()?;
        self.expect_punct(")")?;
        Ok(e)
    }

    fn name_list(&mut self) -> Result<Vec<NameItem>, Diag> {
        self.expect_punct("(")?;
        let mut names = Vec::new();
        loop {
            let (name, span) = self.expect_ident()?;
            names.push(NameItem { name, span });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(names)
    }

    fn data_items(&mut self, dir: DataDir, out: &mut Vec<DataItem>) -> Result<(), Diag> {
        self.expect_punct("(")?;
        loop {
            let (name, span) = self.expect_ident()?;
            // optional subranges: [lo:len] or [lo:len][...]...
            while self.eat_punct("[") {
                // contents: expr [: expr]
                let _ = self.expr()?;
                if self.eat_punct(":") {
                    let _ = self.expr()?;
                }
                self.expect_punct("]")?;
            }
            out.push(DataItem { dir, name, span });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(())
    }

    fn reduction_clause(&mut self, span: Span) -> Result<Vec<ReductionClause>, Diag> {
        self.expect_punct("(")?;
        // operator token: punct or ident (max/min)
        let op_span = self.span();
        let op = match self.bump().tok {
            Tok::Punct(p) => RedOp::from_clause_token(p),
            Tok::Ident(s) => RedOp::from_clause_token(&s),
            _ => None,
        }
        .ok_or_else(|| {
            Diag::new("invalid reduction operator", op_span)
                .with_note_at("in this `reduction` clause", span)
        })?;
        self.expect_punct(":")?;
        let mut rs = Vec::new();
        loop {
            let (var, vspan) = self.expect_ident()?;
            rs.push(ReductionClause {
                op,
                var,
                span: vspan,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(rs)
    }

    // ---- statements ------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, Diag> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Punct("{") => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat_punct("}") {
                    if matches!(self.peek(), Tok::Eof) {
                        return Err(Diag::new("unterminated block", span));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt {
                    kind: StmtKind::Block(stmts),
                    span,
                })
            }
            Tok::PragmaStart => {
                let dir = self.loop_directive()?;
                let next = self.stmt()?;
                match next.kind {
                    StmtKind::For(mut f) => {
                        f.directive = Some(dir);
                        Ok(Stmt {
                            kind: StmtKind::For(f),
                            span,
                        })
                    }
                    _ => Err(Diag::new(
                        "`#pragma acc loop` must be followed by a for loop",
                        next.span,
                    )),
                }
            }
            Tok::Ident(s) if s == "if" => self.if_stmt(),
            Tok::Ident(s) if s == "for" => self.for_stmt(None),
            Tok::Ident(s) if CType::from_name(&s).is_some() => self.decl_stmt(),
            _ => self.expr_stmt(),
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, Diag> {
        let span = self.span();
        let (tyname, _) = self.expect_ident()?;
        let ty = CType::from_name(&tyname).expect("checked by caller");
        let (name, _) = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            dims.push(self.expr()?);
            self.expect_punct("]")?;
        }
        let init = if self.eat_punct("=") {
            Some(self.expr()?)
        } else {
            None
        };
        if init.is_some() && !dims.is_empty() {
            return Err(Diag::new("array initializers are not supported", span));
        }
        self.expect_punct(";")?;
        Ok(Stmt {
            kind: StmtKind::Decl {
                ty,
                name,
                dims,
                init,
            },
            span,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diag> {
        let span = self.span();
        self.bump(); // if
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then = self.stmt_as_block()?;
        let els = if self.eat_ident("else") {
            self.stmt_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt {
            kind: StmtKind::If { cond, then, els },
            span,
        })
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, Diag> {
        let s = self.stmt()?;
        Ok(match s.kind {
            StmtKind::Block(v) => v,
            _ => vec![s],
        })
    }

    fn for_stmt(&mut self, directive: Option<LoopDirective>) -> Result<Stmt, Diag> {
        let span = self.span();
        self.bump(); // for
        self.expect_punct("(")?;
        // init: [type] var = expr
        let decl_ty = self.at_type_keyword();
        if decl_ty.is_some() {
            self.bump();
        }
        let (var, var_span) = self.expect_ident()?;
        self.expect_punct("=")?;
        let init = self.expr()?;
        self.expect_punct(";")?;
        // cond: var <cmp> bound
        let (cvar, cspan) = self.expect_ident()?;
        if cvar != var {
            return Err(Diag::new(
                format!("loop condition must test the loop variable `{var}`"),
                cspan,
            ));
        }
        let cmp = match self.bump().tok {
            Tok::Punct("<") => BinOpKind::Lt,
            Tok::Punct("<=") => BinOpKind::Le,
            Tok::Punct(">") => BinOpKind::Gt,
            Tok::Punct(">=") => BinOpKind::Ge,
            t => {
                return Err(Diag::new(
                    format!("unsupported loop comparison {}", describe(&t)),
                    cspan,
                ))
            }
        };
        let bound = self.expr()?;
        self.expect_punct(";")?;
        // incr: var++ | var-- | ++var | --var | var += e | var -= e
        let step = self.for_incr(&var)?;
        self.expect_punct(")")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt {
            kind: StmtKind::For(ForLoop {
                var,
                var_span,
                decl_ty,
                init,
                cmp,
                bound,
                step,
                directive,
                body,
            }),
            span,
        })
    }

    fn for_incr(&mut self, var: &str) -> Result<Expr, Diag> {
        let span = self.span();
        let one = Expr::new(ExprKind::IntLit(1), span);
        let neg_one = Expr::new(ExprKind::IntLit(-1), span);
        // prefix forms
        if self.eat_punct("++") {
            let (v, s) = self.expect_ident()?;
            if v != var {
                return Err(Diag::new("increment must update the loop variable", s));
            }
            return Ok(one);
        }
        if self.eat_punct("--") {
            let (v, s) = self.expect_ident()?;
            if v != var {
                return Err(Diag::new("increment must update the loop variable", s));
            }
            return Ok(neg_one);
        }
        let (v, s) = self.expect_ident()?;
        if v != var {
            return Err(Diag::new("increment must update the loop variable", s));
        }
        if self.eat_punct("++") {
            Ok(one)
        } else if self.eat_punct("--") {
            Ok(neg_one)
        } else if self.eat_punct("+=") {
            self.expr()
        } else if self.eat_punct("-=") {
            let e = self.expr()?;
            let sp = e.span;
            Ok(Expr::new(
                ExprKind::Un {
                    op: UnOpKind::Neg,
                    operand: Box::new(e),
                },
                sp,
            ))
        } else if self.eat_punct("=") {
            // var = var + c  |  var = var - c
            let e = self.expr()?;
            match &e.kind {
                ExprKind::Bin {
                    op: BinOpKind::Add,
                    lhs,
                    rhs,
                } => match (&lhs.kind, &rhs.kind) {
                    (ExprKind::Ident(n), _) if n == var => Ok((**rhs).clone()),
                    (_, ExprKind::Ident(n)) if n == var => Ok((**lhs).clone()),
                    _ => Err(Diag::new("unsupported loop increment", s)),
                },
                ExprKind::Bin {
                    op: BinOpKind::Sub,
                    lhs,
                    rhs,
                } => match &lhs.kind {
                    ExprKind::Ident(n) if n == var => {
                        let sp = rhs.span;
                        Ok(Expr::new(
                            ExprKind::Un {
                                op: UnOpKind::Neg,
                                operand: rhs.clone(),
                            },
                            sp,
                        ))
                    }
                    _ => Err(Diag::new("unsupported loop increment", s)),
                },
                _ => Err(Diag::new("unsupported loop increment", s)),
            }
        } else {
            Err(Diag::new("unsupported loop increment", s))
        }
    }

    fn expr_stmt(&mut self) -> Result<Stmt, Diag> {
        let span = self.span();
        // lvalue [op]= rhs ;   or   name++/-- ;
        let lv = self.lvalue()?;
        if let LValue::Var(name) = &lv {
            if self.eat_punct("++") {
                self.expect_punct(";")?;
                return Ok(Stmt {
                    kind: StmtKind::IncDec {
                        name: name.clone(),
                        inc: true,
                    },
                    span,
                });
            }
            if self.eat_punct("--") {
                self.expect_punct(";")?;
                return Ok(Stmt {
                    kind: StmtKind::IncDec {
                        name: name.clone(),
                        inc: false,
                    },
                    span,
                });
            }
        }
        let op = match self.bump().tok {
            Tok::Punct("=") => AssignOp::Assign,
            Tok::Punct("+=") => AssignOp::Add,
            Tok::Punct("-=") => AssignOp::Sub,
            Tok::Punct("*=") => AssignOp::Mul,
            Tok::Punct("/=") => AssignOp::Div,
            Tok::Punct("%=") => AssignOp::Rem,
            Tok::Punct("&=") => AssignOp::And,
            Tok::Punct("|=") => AssignOp::Or,
            Tok::Punct("^=") => AssignOp::Xor,
            Tok::Punct("<<=") => AssignOp::Shl,
            Tok::Punct(">>=") => AssignOp::Shr,
            t => {
                return Err(Diag::new(
                    format!("expected assignment operator, found {}", describe(&t)),
                    span,
                ))
            }
        };
        let rhs = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt {
            kind: StmtKind::Assign { op, lhs: lv, rhs },
            span,
        })
    }

    fn lvalue(&mut self) -> Result<LValue, Diag> {
        let (name, _) = self.expect_ident()?;
        if matches!(self.peek(), Tok::Punct("[")) {
            let mut indices = Vec::new();
            while self.eat_punct("[") {
                indices.push(self.expr()?);
                self.expect_punct("]")?;
            }
            Ok(LValue::Elem {
                base: name,
                indices,
            })
        } else {
            Ok(LValue::Var(name))
        }
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr, Diag> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            return Err(Diag::new("expression nesting too deep", self.span()));
        }
        self.expr_depth += 1;
        let r = self.ternary();
        self.expr_depth -= 1;
        r
    }

    fn ternary(&mut self) -> Result<Expr, Diag> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.ternary()?;
            let span = cond.span.merge(els.span);
            Ok(Expr::new(
                ExprKind::Cond {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, Diag> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("*") => (BinOpKind::Mul, 10),
                Tok::Punct("/") => (BinOpKind::Div, 10),
                Tok::Punct("%") => (BinOpKind::Rem, 10),
                Tok::Punct("+") => (BinOpKind::Add, 9),
                Tok::Punct("-") => (BinOpKind::Sub, 9),
                Tok::Punct("<<") => (BinOpKind::Shl, 8),
                Tok::Punct(">>") => (BinOpKind::Shr, 8),
                Tok::Punct("<") => (BinOpKind::Lt, 7),
                Tok::Punct("<=") => (BinOpKind::Le, 7),
                Tok::Punct(">") => (BinOpKind::Gt, 7),
                Tok::Punct(">=") => (BinOpKind::Ge, 7),
                Tok::Punct("==") => (BinOpKind::Eq, 6),
                Tok::Punct("!=") => (BinOpKind::Ne, 6),
                Tok::Punct("&") => (BinOpKind::BitAnd, 5),
                Tok::Punct("^") => (BinOpKind::BitXor, 4),
                Tok::Punct("|") => (BinOpKind::BitOr, 3),
                Tok::Punct("&&") => (BinOpKind::LogAnd, 2),
                Tok::Punct("||") => (BinOpKind::LogOr, 1),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Bin {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diag> {
        let span = self.span();
        if self.eat_punct("-") {
            let e = self.unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(
                ExprKind::Un {
                    op: UnOpKind::Neg,
                    operand: Box::new(e),
                },
                sp,
            ));
        }
        if self.eat_punct("!") {
            let e = self.unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(
                ExprKind::Un {
                    op: UnOpKind::Not,
                    operand: Box::new(e),
                },
                sp,
            ));
        }
        if self.eat_punct("~") {
            let e = self.unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(
                ExprKind::Un {
                    op: UnOpKind::BitNot,
                    operand: Box::new(e),
                },
                sp,
            ));
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diag> {
        let span = self.span();
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            Tok::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            Tok::Punct("(") => {
                self.bump();
                // cast? `(type) expr`
                if let Some(ty) = self.at_type_keyword() {
                    if matches!(self.peek2(), Tok::Punct(")")) {
                        self.bump(); // type
                        self.bump(); // )
                        let e = self.unary()?;
                        let sp = span.merge(e.span);
                        return Ok(Expr::new(
                            ExprKind::Cast {
                                ty,
                                operand: Box::new(e),
                            },
                            sp,
                        ));
                    }
                }
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    return Ok(Expr::new(ExprKind::Call { name, args }, span));
                }
                if matches!(self.peek(), Tok::Punct("[")) {
                    let mut indices = Vec::new();
                    while self.eat_punct("[") {
                        indices.push(self.expr()?);
                        self.expect_punct("]")?;
                    }
                    let sp = span.merge(indices.last().map(|e| e.span).unwrap_or(span));
                    return Ok(Expr::new(
                        ExprKind::Index {
                            base: name,
                            indices,
                        },
                        sp,
                    ));
                }
                Ok(Expr::new(ExprKind::Ident(name), span))
            }
            t => Err(Diag::new(
                format!("expected expression, found {}", describe(&t)),
                span,
            )),
        }
    }
}

fn describe(t: &Tok) -> String {
    match t {
        Tok::Ident(s) => format!("identifier `{s}`"),
        Tok::IntLit(v) => format!("integer `{v}`"),
        Tok::FloatLit(v) => format!("float `{v}`"),
        Tok::Punct(p) => format!("`{p}`"),
        Tok::PragmaStart => "`#pragma`".to_string(),
        Tok::PragmaEnd => "end of directive".to_string(),
        Tok::Eof => "end of input".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Bin {
                op: BinOpKind::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Bin {
                        op: BinOpKind::Mul,
                        ..
                    }
                ));
            }
            _ => panic!("wrong tree"),
        }
        let e = parse_expr("a < b && c < d").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Bin {
                op: BinOpKind::LogAnd,
                ..
            }
        ));
    }

    #[test]
    fn parses_casts_calls_subscripts() {
        let e = parse_expr("(float)x").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Cast {
                ty: CType::Float,
                ..
            }
        ));
        let e = parse_expr("fmax(a, b)").unwrap();
        assert!(
            matches!(e.kind, ExprKind::Call { ref name, ref args } if name=="fmax" && args.len()==2)
        );
        let e = parse_expr("a[i][j+1]").unwrap();
        assert!(
            matches!(e.kind, ExprKind::Index { ref base, ref indices } if base=="a" && indices.len()==2)
        );
        let e = parse_expr("x > 0 ? x : -x").unwrap();
        assert!(matches!(e.kind, ExprKind::Cond { .. }));
    }

    #[test]
    fn parses_simple_region() {
        let src = r#"
            int N;
            float a[N];
            float sum;
            #pragma acc parallel copyin(a) num_gangs(4) vector_length(32)
            {
                #pragma acc loop gang vector reduction(+:sum)
                for (int i = 0; i < N; i++) {
                    sum += a[i];
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 3);
        assert_eq!(p.regions.len(), 1);
        let r = &p.regions[0];
        assert!(r.num_gangs.is_some());
        assert!(r.vector_length.is_some());
        assert_eq!(r.data.len(), 1);
        assert_eq!(r.body.len(), 1);
        match &r.body[0].kind {
            StmtKind::For(f) => {
                let d = f.directive.as_ref().unwrap();
                assert_eq!(d.levels, vec![Level::Gang, Level::Vector]);
                assert_eq!(d.reductions.len(), 1);
                assert_eq!(d.reductions[0].op, RedOp::Add);
                assert_eq!(d.reductions[0].var, "sum");
                assert_eq!(f.var, "i");
                assert_eq!(f.cmp, BinOpKind::Lt);
            }
            _ => panic!("expected for loop"),
        }
    }

    #[test]
    fn parses_triple_nest_with_pragmas() {
        let src = r#"
            int NK; int NJ; int NI;
            float input[NK][NJ][NI];
            float temp[NK][NJ][NI];
            #pragma acc parallel copyin(input) copyout(temp)
            {
                #pragma acc loop gang
                for (int k = 0; k < NK; k++) {
                    int j_sum = k;
                    #pragma acc loop worker reduction(+:j_sum)
                    for (int j = 0; j < NJ; j++) {
                        #pragma acc loop vector
                        for (int i = 0; i < NI; i++) {
                            temp[k][j][i] = input[k][j][i];
                        }
                        j_sum += temp[k][j][0];
                    }
                    temp[k][0][0] = j_sum;
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = &p.regions[0];
        match &r.body[0].kind {
            StmtKind::For(k) => {
                assert_eq!(k.directive.as_ref().unwrap().levels, vec![Level::Gang]);
                // find nested worker loop
                let mut found_worker = false;
                for s in &k.body {
                    if let StmtKind::For(j) = &s.kind {
                        let d = j.directive.as_ref().unwrap();
                        assert_eq!(d.levels, vec![Level::Worker]);
                        assert_eq!(d.reductions[0].var, "j_sum");
                        found_worker = true;
                    }
                }
                assert!(found_worker);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_combined_parallel_loop() {
        let src = r#"
            int n;
            float x[n]; float y[n];
            int m;
            #pragma acc parallel loop gang vector reduction(+:m) copyin(x, y)
            for (int i = 0; i < n; i++) {
                if (x[i]*x[i] + y[i]*y[i] < 1.0) {
                    m += 1;
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = &p.regions[0];
        match &r.body[0].kind {
            StmtKind::For(f) => {
                let d = f.directive.as_ref().unwrap();
                assert_eq!(d.levels, vec![Level::Gang, Level::Vector]);
                assert_eq!(d.reductions[0].var, "m");
            }
            _ => panic!(),
        }
        assert_eq!(r.data.len(), 2);
    }

    #[test]
    fn parses_for_increment_forms() {
        for incr in ["i++", "++i", "i += 1", "i = i + 1", "i = 1 + i"] {
            let src = format!("int n; int s;\n#pragma acc parallel\n{{\n#pragma acc loop gang reduction(+:s)\nfor (int i = 0; i < n; {incr}) {{ s += 1; }} }}");
            let p = parse_program(&src).unwrap();
            match &p.regions[0].body[0].kind {
                StmtKind::For(f) => assert!(matches!(f.step.kind, ExprKind::IntLit(1))),
                _ => panic!(),
            }
        }
        // downward loop
        let src = "int n; int s;\n#pragma acc parallel\n{\n#pragma acc loop gang reduction(+:s)\nfor (int i = n; i > 0; i--) { s += 1; } }";
        let p = parse_program(src).unwrap();
        match &p.regions[0].body[0].kind {
            StmtKind::For(f) => {
                assert_eq!(f.cmp, BinOpKind::Gt);
                assert!(matches!(f.step.kind, ExprKind::IntLit(-1)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_subrange_data_clauses() {
        let src = "int n; float a[n];\n#pragma acc parallel copyin(a[0:n])\n{\n#pragma acc loop gang\nfor (int i = 0; i < n; i++) { a[i] = 0.0; } }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.regions[0].data[0].name, "a");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_program("float x;").is_err(), "no region");
        assert!(
            parse_program("#pragma acc loop gang\nfor(;;){}").is_err(),
            "loop at top level"
        );
        assert!(
            parse_program("int n;\n#pragma acc parallel bogus_clause(3)\n{ }").is_err(),
            "unknown clause"
        );
        assert!(
            parse_program(
                "int n; int s;\n#pragma acc parallel\n{\n#pragma acc loop gang reduction(-:s)\nfor (int i=0;i<n;i++) {s += 1;} }"
            )
            .is_err(),
            "invalid reduction operator"
        );
        // non-canonical loop: condition on wrong variable
        assert!(parse_program(
            "int n;\n#pragma acc parallel\n{\n#pragma acc loop gang\nfor (int i = 0; n < 10; i++) { } }"
        )
        .is_err());
    }

    #[test]
    fn parses_if_else_and_incdec() {
        let src = r#"
            int n; int c;
            #pragma acc parallel
            {
                #pragma acc loop gang reduction(+:c)
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) { c++; } else { c--; }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.regions[0].body[0].kind {
            StmtKind::For(f) => match &f.body[0].kind {
                StmtKind::If { then, els, .. } => {
                    assert!(matches!(then[0].kind, StmtKind::IncDec { inc: true, .. }));
                    assert!(matches!(els[0].kind, StmtKind::IncDec { inc: false, .. }));
                }
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn kernels_construct_accepted() {
        let src = "int n; float a[n];\n#pragma acc kernels copyin(a)\n{\n#pragma acc loop gang\nfor (int i = 0; i < n; i++) { a[i] = 1.0; } }";
        let p = parse_program(src).unwrap();
        assert!(p.regions[0].is_kernels);
    }
}
