//! Lexer for the mini-C + `#pragma acc` input dialect.
//!
//! The lexer is line-aware only for pragmas: a `#pragma` introduces a
//! directive that extends to the end of the (possibly `\`-continued) line
//! and is emitted as a [`Tok::PragmaStart`] token followed by the pragma's
//! word/punctuation tokens and a [`Tok::PragmaEnd`].

use crate::diag::{Diag, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Punctuation / operator.
    Punct(&'static str),
    /// Start of a `#pragma` directive; payload is the first word (e.g. "acc").
    PragmaStart,
    /// End of a `#pragma` directive (end of line).
    PragmaEnd,
    /// End of input.
    Eof,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// All multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&",
    "|", "^", "~", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Tokenize `src` into a vector of spanned tokens ending with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, Diag> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();
    let mut in_pragma = false;

    while i < n {
        let c = bytes[i];
        // Pragma end at newline.
        if in_pragma && c == b'\n' {
            // Line continuation?
            toks.push(SpannedTok {
                tok: Tok::PragmaEnd,
                span: Span::at(i),
            });
            in_pragma = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= n {
                    return Err(Diag::new("unterminated block comment", Span::at(start)));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Pragma line continuation inside a pragma: `\` at end of line.
        if in_pragma && c == b'\\' {
            let mut j = i + 1;
            while j < n && (bytes[j] == b' ' || bytes[j] == b'\r' || bytes[j] == b'\t') {
                j += 1;
            }
            if j < n && bytes[j] == b'\n' {
                i = j + 1;
                continue;
            }
        }
        // Pragma start.
        if c == b'#' {
            let start = i;
            i += 1;
            while i < n && bytes[i].is_ascii_whitespace() && bytes[i] != b'\n' {
                i += 1;
            }
            let ws = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &src[ws..i];
            if word != "pragma" {
                return Err(Diag::new(
                    format!("unsupported preprocessor directive `#{word}`"),
                    Span::at(start),
                ));
            }
            toks.push(SpannedTok {
                tok: Tok::PragmaStart,
                span: Span::new(start, i),
            });
            in_pragma = true;
            continue;
        }
        // Identifier.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(SpannedTok {
                tok: Tok::Ident(src[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Number.
        if c.is_ascii_digit() || (c == b'.' && i + 1 < n && bytes[i + 1].is_ascii_digit()) {
            let start = i;
            let mut is_float = false;
            while i < n && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < n && bytes[i] == b'.' {
                is_float = true;
                i += 1;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < n && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < n && bytes[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            // Suffixes: f/F (float), l/L/u/U (integer) — consumed, type noted.
            let mut float_suffix = false;
            while i < n && matches!(bytes[i], b'f' | b'F' | b'l' | b'L' | b'u' | b'U') {
                if bytes[i] == b'f' || bytes[i] == b'F' {
                    float_suffix = true;
                }
                i += 1;
            }
            let text: String = src[start..i]
                .chars()
                .filter(|c| !"fFlLuU".contains(*c))
                .collect();
            let span = Span::new(start, i);
            if is_float || float_suffix {
                let v: f64 = text
                    .parse()
                    .map_err(|_| Diag::new(format!("bad float literal `{text}`"), span))?;
                toks.push(SpannedTok {
                    tok: Tok::FloatLit(v),
                    span,
                });
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|_| Diag::new(format!("bad integer literal `{text}`"), span))?;
                toks.push(SpannedTok {
                    tok: Tok::IntLit(v),
                    span,
                });
            }
            continue;
        }
        // Punctuation (maximal munch).
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                toks.push(SpannedTok {
                    tok: Tok::Punct(p),
                    span: Span::new(i, i + p.len()),
                });
                i += p.len();
            }
            None => {
                return Err(Diag::new(
                    format!(
                        "unexpected character `{}`",
                        &src[i..].chars().next().unwrap()
                    ),
                    Span::at(i),
                ));
            }
        }
    }
    if in_pragma {
        toks.push(SpannedTok {
            tok: Tok::PragmaEnd,
            span: Span::at(n),
        });
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::at(n),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_idents_numbers_puncts() {
        let t = kinds("int x = 42 + y2_;");
        assert_eq!(
            t,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::IntLit(42),
                Tok::Punct("+"),
                Tok::Ident("y2_".into()),
                Tok::Punct(";"),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(kinds("1.5")[0], Tok::FloatLit(1.5));
        assert_eq!(kinds("2e3")[0], Tok::FloatLit(2000.0));
        assert_eq!(kinds("1.0f")[0], Tok::FloatLit(1.0));
        assert_eq!(kinds(".25")[0], Tok::FloatLit(0.25));
        assert_eq!(kinds("3")[0], Tok::IntLit(3));
        assert_eq!(kinds("3L")[0], Tok::IntLit(3));
    }

    #[test]
    fn maximal_munch_operators() {
        let t = kinds("a<<=b<<c<=d");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Ident("c".into()),
                Tok::Punct("<="),
                Tok::Ident("d".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = kinds("a // comment\n b /* multi\nline */ c");
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn pragma_tokens_bracketed() {
        let t = kinds("#pragma acc loop gang\nx;");
        assert_eq!(t[0], Tok::PragmaStart);
        assert_eq!(t[1], Tok::Ident("acc".into()));
        assert_eq!(t[2], Tok::Ident("loop".into()));
        assert_eq!(t[3], Tok::Ident("gang".into()));
        assert_eq!(t[4], Tok::PragmaEnd);
        assert_eq!(t[5], Tok::Ident("x".into()));
    }

    #[test]
    fn pragma_line_continuation() {
        let t = kinds("#pragma acc parallel \\\n  copyin(a)\nx;");
        let end_pos = t.iter().position(|k| *k == Tok::PragmaEnd).unwrap();
        // copyin tokens are inside the pragma
        assert!(t[..end_pos].contains(&Tok::Ident("copyin".into())));
        assert_eq!(t[end_pos + 1], Tok::Ident("x".into()));
    }

    #[test]
    fn pragma_at_eof_closes() {
        let t = kinds("#pragma acc loop vector");
        assert_eq!(t[t.len() - 2], Tok::PragmaEnd);
    }

    #[test]
    fn errors_on_bad_directive_and_char() {
        assert!(lex("#include <x>").is_err());
        assert!(lex("a @ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
