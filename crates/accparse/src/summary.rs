//! # Region summaries — the source-side facts redcert validates against
//!
//! An IR-free, per-region digest of the analyzed program: the set of
//! reduction triples `(var, op, identity)`, the loop-nest iteration
//! spaces, and the element-wise outputs (arrays the region stores to,
//! with their data directions). The translation validator
//! (`uhacc-core::cert`) consumes these to label observables and render
//! reports; they are deliberately descriptive — the authoritative
//! reference semantics is the HIR itself.

use crate::ast::{CType, DataDir, Level, RedOp};
use crate::hir::{visit_loops, AnalyzedProgram, HExpr, HExprKind, HStmt, Sym};

/// One reduction clause as the paper's `(var, op, identity)` triple.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionTriple {
    pub var: String,
    pub op: RedOp,
    /// The operator's identity element, rendered for the element type
    /// (matches `uhacc-core`'s codegen identity).
    pub identity: String,
    pub ty: CType,
    pub clause_levels: Vec<Level>,
    pub span_levels: Vec<Level>,
}

impl ReductionTriple {
    /// `(s, +, 0)` — the rendering used in certification reports.
    pub fn render(&self) -> String {
        format!(
            "({}, {}, {})",
            self.var,
            self.op.clause_token(),
            self.identity
        )
    }
}

/// One loop of the region's nest with its iteration space, rendered.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpace {
    pub var: String,
    pub lower: String,
    pub bound: String,
    pub step: String,
    pub levels: Vec<Level>,
    /// 0 = outermost loop of the region.
    pub depth: usize,
}

/// An array the region stores to.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSummary {
    pub array: String,
    pub dir: Option<DataDir>,
}

/// The per-region source summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSummary {
    pub region: usize,
    pub reductions: Vec<ReductionTriple>,
    pub loops: Vec<LoopSpace>,
    pub outputs: Vec<OutputSummary>,
    pub hosts_written: Vec<String>,
}

/// Render the identity element of `op` at `ty` (the value codegen seeds
/// private accumulators with).
pub fn identity_text(op: RedOp, ty: CType) -> String {
    let float = ty.is_float();
    match op {
        RedOp::Add | RedOp::BitOr | RedOp::BitXor | RedOp::LogOr => {
            if float { "0.0" } else { "0" }.to_string()
        }
        RedOp::Mul | RedOp::LogAnd => if float { "1.0" } else { "1" }.to_string(),
        RedOp::BitAnd => "~0".to_string(),
        RedOp::Max => match ty {
            CType::Int => "INT_MIN".to_string(),
            CType::Long => "LONG_MIN".to_string(),
            CType::Float | CType::Double => "-inf".to_string(),
        },
        RedOp::Min => match ty {
            CType::Int => "INT_MAX".to_string(),
            CType::Long => "LONG_MAX".to_string(),
            CType::Float | CType::Double => "+inf".to_string(),
        },
    }
}

fn sym_name(prog: &AnalyzedProgram, region: usize, sym: Sym) -> String {
    match sym {
        Sym::Host(h) => prog
            .hosts
            .get(h)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("host{h}")),
        Sym::Local(l) => prog.regions[region]
            .locals
            .get(l)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("local{l}")),
    }
}

/// Render an HIR expression compactly (for iteration-space bounds).
pub fn expr_text(prog: &AnalyzedProgram, region: usize, e: &HExpr) -> String {
    match &e.kind {
        HExprKind::Int(v) => v.to_string(),
        HExprKind::Float(v) => format!("{v}"),
        HExprKind::Sym(s) => sym_name(prog, region, *s),
        HExprKind::Load { array, indices } => {
            let idx = indices
                .iter()
                .map(|i| expr_text(prog, region, i))
                .collect::<Vec<_>>()
                .join("][");
            format!("{}[{idx}]", prog.arrays[*array].name)
        }
        HExprKind::Un { op, operand } => {
            format!("{op:?}({})", expr_text(prog, region, operand)).to_lowercase()
        }
        HExprKind::Bin { op, lhs, rhs, .. } => format!(
            "({} {op:?} {})",
            expr_text(prog, region, lhs),
            expr_text(prog, region, rhs)
        ),
        HExprKind::Cond { cond, then, els } => format!(
            "({} ? {} : {})",
            expr_text(prog, region, cond),
            expr_text(prog, region, then),
            expr_text(prog, region, els)
        ),
        HExprKind::Call { func, args } => format!(
            "{func:?}({})",
            args.iter()
                .map(|a| expr_text(prog, region, a))
                .collect::<Vec<_>>()
                .join(", ")
        )
        .to_lowercase(),
        HExprKind::Cast { operand } => {
            format!("({:?}){}", e.ty, expr_text(prog, region, operand)).to_lowercase()
        }
    }
}

fn stores_in(stmts: &[HStmt], out: &mut Vec<usize>) {
    for s in stmts {
        match s {
            HStmt::Store { array, .. } => {
                if !out.contains(array) {
                    out.push(*array);
                }
            }
            HStmt::If { then, els, .. } => {
                stores_in(then, out);
                stores_in(els, out);
            }
            HStmt::Loop(l) => stores_in(&l.body, out),
            HStmt::AssignLocal { .. } | HStmt::AssignHost { .. } | HStmt::ReduceUpdate { .. } => {}
        }
    }
}

fn loop_depths(stmts: &[HStmt], depth: usize, out: &mut Vec<(usize, *const crate::hir::HLoop)>) {
    for s in stmts {
        match s {
            HStmt::Loop(l) => {
                out.push((depth, l as *const _));
                loop_depths(&l.body, depth + 1, out);
            }
            HStmt::If { then, els, .. } => {
                loop_depths(then, depth, out);
                loop_depths(els, depth, out);
            }
            _ => {}
        }
    }
}

/// Summarize one region of the analyzed program.
pub fn summarize_region(prog: &AnalyzedProgram, region: usize) -> RegionSummary {
    let r = &prog.regions[region];
    let mut depths: Vec<(usize, *const crate::hir::HLoop)> = Vec::new();
    loop_depths(&r.body, 0, &mut depths);
    let depth_of = |l: &crate::hir::HLoop| -> usize {
        depths
            .iter()
            .find(|(_, p)| std::ptr::eq(*p, l as *const _))
            .map(|(d, _)| *d)
            .unwrap_or(0)
    };

    let mut reductions = Vec::new();
    let mut loops = Vec::new();
    visit_loops(&r.body, &mut |l| {
        let var = r
            .locals
            .get(l.var)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("local{}", l.var));
        loops.push(LoopSpace {
            var,
            lower: expr_text(prog, region, &l.lower),
            bound: expr_text(prog, region, &l.bound),
            step: expr_text(prog, region, &l.step),
            levels: l.sched.clone(),
            depth: depth_of(l),
        });
        for red in &l.reductions {
            reductions.push(ReductionTriple {
                var: sym_name(prog, region, red.sym),
                op: red.op,
                identity: identity_text(red.op, red.ty),
                ty: red.ty,
                clause_levels: red.clause_levels.clone(),
                span_levels: red.span_levels.clone(),
            });
        }
    });

    let mut stored = Vec::new();
    stores_in(&r.body, &mut stored);
    let outputs = stored
        .into_iter()
        .map(|a| OutputSummary {
            array: prog.arrays[a].name.clone(),
            dir: r.data.iter().find(|d| d.array == a).map(|d| d.dir),
        })
        .collect();

    RegionSummary {
        region,
        reductions,
        loops,
        outputs,
        hosts_written: r
            .hosts_written
            .iter()
            .map(|&h| prog.hosts[h].name.clone())
            .collect(),
    }
}

/// Summaries for every region of the program.
pub fn summarize(prog: &AnalyzedProgram) -> Vec<RegionSummary> {
    (0..prog.regions.len())
        .map(|i| summarize_region(prog, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_reduction_triple_and_space() {
        let src = r#"
            int N; int s;
            int a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang vector reduction(+:s)
                for (int i = 0; i < N; i++) { s += a[i]; }
            }
        "#;
        let prog = crate::compile(src).unwrap();
        let sums = summarize(&prog);
        assert_eq!(sums.len(), 1);
        let s = &sums[0];
        assert_eq!(s.reductions.len(), 1);
        assert_eq!(s.reductions[0].render(), "(s, +, 0)");
        assert_eq!(s.loops.len(), 1);
        assert_eq!(s.loops[0].var, "i");
        assert_eq!(s.loops[0].lower, "0");
        assert_eq!(s.loops[0].bound, "N");
        assert_eq!(s.loops[0].depth, 0);
        assert!(s.outputs.is_empty());
        assert_eq!(s.hosts_written, vec!["s".to_string()]);
    }
}
