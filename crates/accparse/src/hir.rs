//! High-level IR: the typed, resolved form of a program produced by
//! [`crate::sema::analyze`] and consumed by the lowering compiler.
//!
//! Scalars are resolved to symbol ids, expressions carry their C result
//! type, loops are canonicalized to `(var, lower, bound, cmp, step)` form,
//! and every reduction clause carries its *detected span*: the set of
//! parallelism levels the reduction must cover (the paper's §3.2.1
//! auto-detection).

use crate::ast::{BinOpKind, CType, DataDir, Level, RedOp, UnOpKind};
use crate::diag::Span;

/// A resolved scalar symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// Host-bound scalar (`hosts[i]`): uniform kernel parameter; written
    /// back if it is a reduction target or assigned in the region.
    Host(usize),
    /// Region-local scalar (`locals[i]`): a per-thread register.
    Local(usize),
}

/// A host scalar declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct HostScalar {
    pub name: String,
    pub ty: CType,
}

/// An array declaration with runtime-evaluated dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    pub ty: CType,
    /// Dimension extents, host-evaluable expressions (may reference host
    /// scalars). Row-major layout, like C.
    pub dims: Vec<HExpr>,
}

/// A region-local scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalScalar {
    pub name: String,
    pub ty: CType,
    /// True if this local is a loop induction variable.
    pub is_loop_var: bool,
}

/// Math intrinsics callable in kernel code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFunc {
    FMax,
    FMin,
    FAbs,
    Sqrt,
    IMax,
    IMin,
    IAbs,
}

impl MathFunc {
    /// Resolve a C function name (including `f`-suffixed float variants).
    pub fn from_name(s: &str) -> Option<MathFunc> {
        match s {
            "fmax" | "fmaxf" => Some(MathFunc::FMax),
            "fmin" | "fminf" => Some(MathFunc::FMin),
            "fabs" | "fabsf" => Some(MathFunc::FAbs),
            "sqrt" | "sqrtf" => Some(MathFunc::Sqrt),
            "max" => Some(MathFunc::IMax),
            "min" => Some(MathFunc::IMin),
            "abs" | "labs" => Some(MathFunc::IAbs),
            _ => None,
        }
    }

    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            MathFunc::FMax | MathFunc::FMin | MathFunc::IMax | MathFunc::IMin => 2,
            MathFunc::FAbs | MathFunc::Sqrt | MathFunc::IAbs => 1,
        }
    }
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct HExpr {
    pub ty: CType,
    pub kind: HExprKind,
    pub span: Span,
}

/// Typed expression variants. Binary operands are *not* pre-converted;
/// codegen converts each side to `ty` (or to the comparison type for
/// comparison ops, which have `ty == Int` like C).
#[derive(Debug, Clone, PartialEq)]
pub enum HExprKind {
    Int(i64),
    Float(f64),
    /// Read a scalar symbol.
    Sym(Sym),
    /// Load `array[indices...]`.
    Load {
        array: usize,
        indices: Vec<HExpr>,
    },
    Un {
        op: UnOpKind,
        operand: Box<HExpr>,
    },
    /// Arithmetic / comparison / logical binary op. For comparisons and
    /// logical ops `ty` is `Int` (C truth values); `cmp_ty` records the
    /// promoted operand type used for the comparison itself.
    Bin {
        op: BinOpKind,
        cmp_ty: CType,
        lhs: Box<HExpr>,
        rhs: Box<HExpr>,
    },
    Cond {
        cond: Box<HExpr>,
        then: Box<HExpr>,
        els: Box<HExpr>,
    },
    Call {
        func: MathFunc,
        args: Vec<HExpr>,
    },
    Cast {
        operand: Box<HExpr>,
    },
}

impl HExpr {
    /// Fold a constant integer expression, if it is one. Overflow during
    /// folding yields `None` (the expression is treated as non-constant)
    /// rather than wrapping or panicking — downstream analyses must stay
    /// conservative on absurd literals, not crash on them.
    pub fn const_int(&self) -> Option<i64> {
        match &self.kind {
            HExprKind::Int(v) => Some(*v),
            HExprKind::Un {
                op: UnOpKind::Neg,
                operand,
            } => operand.const_int().and_then(i64::checked_neg),
            HExprKind::Cast { operand } if !self.ty.is_float() => operand.const_int(),
            HExprKind::Bin { op, lhs, rhs, .. } => {
                let (a, b) = (lhs.const_int()?, rhs.const_int()?);
                match op {
                    BinOpKind::Add => a.checked_add(b),
                    BinOpKind::Sub => a.checked_sub(b),
                    BinOpKind::Mul => a.checked_mul(b),
                    BinOpKind::Div if b != 0 => a.checked_div(b),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// A reduction attached to a loop, with its detected span.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    pub op: RedOp,
    /// The reduction target (host scalar or region local).
    pub sym: Sym,
    /// Element type of the reduction.
    pub ty: CType,
    /// The levels the user wrote on the clause (on this loop).
    pub clause_levels: Vec<Level>,
    /// The detected full span: every parallelism level between this loop
    /// and the innermost loop updating the variable (paper §3.2.1). Sorted
    /// outermost-first. Always non-empty for a parallel loop.
    pub span_levels: Vec<Level>,
    /// True when update sites occur at *different* parallelism depths
    /// (e.g. one update directly in the gang loop body and another inside
    /// the nested worker loop). A single per-thread private accumulator
    /// over-counts the shallow site, so codegen rejects this case.
    pub mixed_updates: bool,
    /// True when at least one update of the variable was found under the
    /// clause loop. A clause whose variable is never updated is dead (the
    /// lint layer warns on it); codegen still honors it.
    pub has_update: bool,
    pub span: Span,
}

/// A canonicalized loop.
#[derive(Debug, Clone, PartialEq)]
pub struct HLoop {
    /// Local id of the induction variable.
    pub var: usize,
    /// Inclusive start value.
    pub lower: HExpr,
    /// Bound expression from the condition.
    pub bound: HExpr,
    /// The comparison against `bound` (`Lt`, `Le`, `Gt`, `Ge`).
    pub cmp: BinOpKind,
    /// Signed step (constant or uniform expression).
    pub step: HExpr,
    /// Parallelism levels this loop is distributed over (empty = sequential).
    pub sched: Vec<Level>,
    /// Reductions whose clause sits on this loop.
    pub reductions: Vec<Reduction>,
    /// `private(...)` variables named on this loop's directive, with the
    /// clause-item span. Codegen treats region locals as per-thread
    /// already; the list is kept for the lint layer (read-before-write,
    /// duplicate-variable checks).
    pub privates: Vec<(Sym, Span)>,
    pub body: Vec<HStmt>,
    pub span: Span,
}

/// A typed, resolved statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Loop dominates; statements are built once
pub enum HStmt {
    /// `locals[local] = value` (covers declarations with initializers;
    /// compound assignments are normalized into plain assigns).
    AssignLocal {
        local: usize,
        value: HExpr,
    },
    /// `hosts[h] = value` — assignment to a host scalar inside the region
    /// (the final value is copied back to the host).
    AssignHost {
        host: usize,
        value: HExpr,
    },
    /// `array[indices...] = value`.
    Store {
        array: usize,
        indices: Vec<HExpr>,
        value: HExpr,
    },
    /// A recognized reduction update: `sym = sym <op> value` (or the
    /// equivalent `+=`/`fmax` form). Codegen accumulates into the
    /// reduction's private register.
    ReduceUpdate {
        sym: Sym,
        op: RedOp,
        value: HExpr,
        span: Span,
    },
    If {
        cond: HExpr,
        then: Vec<HStmt>,
        els: Vec<HStmt>,
    },
    Loop(HLoop),
}

/// A resolved data clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataBinding {
    pub array: usize,
    pub dir: DataDir,
    /// True when the binding was implied (array referenced but not named in
    /// any data clause: OpenACC `present_or_copy` default).
    pub implied: bool,
}

/// An analyzed parallel region.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedRegion {
    pub num_gangs: Option<HExpr>,
    pub num_workers: Option<HExpr>,
    pub vector_length: Option<HExpr>,
    pub data: Vec<DataBinding>,
    /// Region-local scalars (indexed by `Sym::Local`).
    pub locals: Vec<LocalScalar>,
    /// Host scalars referenced by the region (indices into
    /// `AnalyzedProgram::hosts`), in first-use order.
    pub hosts_used: Vec<usize>,
    /// Host scalars written by the region (reduction results and direct
    /// assignments) that must be copied back.
    pub hosts_written: Vec<usize>,
    /// `private(...)` variables named on the construct itself (per-gang
    /// privates in OpenACC terms), kept for the lint layer.
    pub privates: Vec<(Sym, Span)>,
    pub body: Vec<HStmt>,
    pub span: Span,
}

/// A host-side scalar assignment executed before the regions run.
#[derive(Debug, Clone, PartialEq)]
pub struct HostAssign {
    pub host: usize,
    pub value: HExpr,
    /// Source span of the assignment statement. The runtime hoists every
    /// host assignment before the first region, but the *source position*
    /// matters to the fusion-legality analysis ([`crate::redflow`]): a
    /// host mutation written between two regions interleaves with the
    /// chain as authored and disqualifies fusing across it.
    pub span: Span,
}

/// A resolved structured data region: residency of `bindings` spans the
/// execution of `regions[first_region..end_region]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataScope {
    /// (array index, direction) pairs.
    pub bindings: Vec<(usize, DataDir)>,
    pub first_region: usize,
    pub end_region: usize,
}

/// The analyzed program.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedProgram {
    pub hosts: Vec<HostScalar>,
    pub arrays: Vec<ArrayDecl>,
    /// Host assignments, in source order (before any region executes).
    pub host_assigns: Vec<HostAssign>,
    pub regions: Vec<AnalyzedRegion>,
    /// Structured `acc data` scopes, in source order.
    pub data_scopes: Vec<DataScope>,
    /// Byte offset of the start of each source line (line `k` is
    /// 1-based at `line_starts[k-1]`). Filled by [`crate::compile`];
    /// empty when the program was analyzed without its source text, in
    /// which case [`Self::line_of`] reports every span as unknown.
    pub line_starts: Vec<usize>,
}

impl AnalyzedProgram {
    /// Look up a host scalar by name.
    pub fn host_index(&self, name: &str) -> Option<usize> {
        self.hosts.iter().position(|h| h.name == name)
    }

    /// The 1-based source line containing byte offset `pos`, or 0 when
    /// no line table is available (the convention kernels' line tables
    /// use for "unknown").
    pub fn line_of(&self, pos: usize) -> u32 {
        if self.line_starts.is_empty() {
            return 0;
        }
        self.line_starts.partition_point(|&s| s <= pos) as u32
    }

    /// Look up an array by name.
    pub fn array_index(&self, name: &str) -> Option<usize> {
        self.arrays.iter().position(|a| a.name == name)
    }
}

/// Walk helper: visit every loop in a statement list (depth-first).
pub fn visit_loops<'a>(stmts: &'a [HStmt], f: &mut impl FnMut(&'a HLoop)) {
    for s in stmts {
        match s {
            HStmt::Loop(l) => {
                f(l);
                visit_loops(&l.body, f);
            }
            HStmt::If { then, els, .. } => {
                visit_loops(then, f);
                visit_loops(els, f);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> HExpr {
        HExpr {
            ty: CType::Int,
            kind: HExprKind::Int(v),
            span: Span::default(),
        }
    }

    #[test]
    fn const_int_folding() {
        assert_eq!(int(5).const_int(), Some(5));
        let neg = HExpr {
            ty: CType::Int,
            kind: HExprKind::Un {
                op: UnOpKind::Neg,
                operand: Box::new(int(3)),
            },
            span: Span::default(),
        };
        assert_eq!(neg.const_int(), Some(-3));
        let add = HExpr {
            ty: CType::Int,
            kind: HExprKind::Bin {
                op: BinOpKind::Add,
                cmp_ty: CType::Int,
                lhs: Box::new(int(2)),
                rhs: Box::new(int(3)),
            },
            span: Span::default(),
        };
        assert_eq!(add.const_int(), Some(5));
        let sym = HExpr {
            ty: CType::Int,
            kind: HExprKind::Sym(Sym::Host(0)),
            span: Span::default(),
        };
        assert_eq!(sym.const_int(), None);
    }

    #[test]
    fn mathfunc_resolution() {
        assert_eq!(MathFunc::from_name("fmax"), Some(MathFunc::FMax));
        assert_eq!(MathFunc::from_name("fabsf"), Some(MathFunc::FAbs));
        assert_eq!(MathFunc::from_name("sqrt"), Some(MathFunc::Sqrt));
        assert_eq!(MathFunc::from_name("nosuch"), None);
        assert_eq!(MathFunc::FMax.arity(), 2);
        assert_eq!(MathFunc::FAbs.arity(), 1);
    }
}
