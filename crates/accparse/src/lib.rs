//! # accparse — mini-C + `#pragma acc` front end
//!
//! The front end for the PMAM'14 reduction-paper reproduction. It parses a
//! small C dialect with OpenACC directives — enough to express every code
//! in the paper (the reduction testsuite, 2D heat equation, matrix multiply
//! and Monte Carlo PI) — and analyzes it into a typed HIR with
//! canonicalized loops and *detected reduction spans* (§3.2.1 of the
//! paper: the user writes a single `reduction` clause and the compiler
//! widens it across every parallelism level the variable is updated in).
//!
//! Pipeline: [`token::lex`] → [`parser::parse_program`] →
//! [`sema::analyze`] → [`hir::AnalyzedProgram`].
//!
//! ```
//! let src = r#"
//!     int N; int s;
//!     int a[N];
//!     #pragma acc parallel copyin(a)
//!     {
//!         #pragma acc loop gang vector reduction(+:s)
//!         for (int i = 0; i < N; i++) { s += a[i]; }
//!     }
//! "#;
//! let hir = accparse::compile(src).unwrap();
//! assert_eq!(hir.hosts.len(), 2);
//! assert_eq!(hir.regions.len(), 1);
//! ```

pub mod ast;
pub mod dataflow;
pub mod diag;
pub mod hir;
pub mod lint;
pub mod parser;
pub mod redflow;
pub mod sema;
pub mod summary;
pub mod token;

pub use ast::{CType, DataDir, Level, RedOp};
pub use diag::{Diag, Severity, Span};
pub use hir::AnalyzedProgram;
pub use lint::{lint_program, lint_source, Finding, FindingKind};
pub use summary::{summarize, summarize_region, RegionSummary};

/// Parse and analyze `src` in one step. The result carries a line table
/// ([`hir::AnalyzedProgram::line_starts`]) so downstream codegen can map
/// HIR spans back to 1-based source lines.
pub fn compile(src: &str) -> Result<hir::AnalyzedProgram, diag::Diag> {
    let ast = parser::parse_program(src)?;
    let mut prog = sema::analyze(&ast)?;
    prog.line_starts = line_starts(src);
    Ok(prog)
}

/// Byte offsets of line starts in `src` (always non-empty: line 1 starts
/// at offset 0).
pub fn line_starts(src: &str) -> Vec<usize> {
    std::iter::once(0)
        .chain(
            src.bytes()
                .enumerate()
                .filter_map(|(i, b)| (b == b'\n').then_some(i + 1)),
        )
        .collect()
}
