//! Semantic analysis: resolve names, type expressions, canonicalize loops,
//! recognize reduction updates and detect each reduction's parallelism span.
//!
//! The span detection implements the paper's §3.2.1 behaviour: the user
//! writes one `reduction` clause on the loop closest to the next use of the
//! variable; the compiler finds every update of the variable in deeper
//! loops and widens the reduction to cover all parallelism levels between
//! the clause loop and the innermost updating loop.

use crate::ast::{
    self, AssignOp, BinOpKind, CType, DataDir, Expr, ExprKind, LValue, Level, Program, RedOp, Stmt,
    StmtKind, UnOpKind,
};
use crate::diag::{Diag, Span};
use crate::hir::*;
use std::collections::{HashMap, HashSet};

/// Analyze a parsed program into typed HIR.
pub fn analyze(p: &Program) -> Result<AnalyzedProgram, Diag> {
    let mut hosts: Vec<HostScalar> = Vec::new();
    let mut arrays: Vec<ArrayDecl> = Vec::new();
    let mut host_assigns: Vec<HostAssign> = Vec::new();
    let mut names: HashMap<String, TopSym> = HashMap::new();

    #[derive(Clone, Copy)]
    enum TopSym {
        Host(usize),
        Array(usize),
    }

    // -- top-level declarations and host assignments ------------------------
    for d in &p.decls {
        match &d.kind {
            StmtKind::Decl {
                ty,
                name,
                dims,
                init,
            } => {
                if names.contains_key(name) {
                    return Err(Diag::new(format!("`{name}` redeclared"), d.span));
                }
                if dims.is_empty() {
                    let idx = hosts.len();
                    hosts.push(HostScalar {
                        name: name.clone(),
                        ty: *ty,
                    });
                    names.insert(name.clone(), TopSym::Host(idx));
                    if let Some(e) = init {
                        let value = host_expr(e, &hosts, |n| match names.get(n) {
                            Some(TopSym::Host(i)) => Some(*i),
                            _ => None,
                        })?;
                        host_assigns.push(HostAssign {
                            host: idx,
                            value,
                            span: d.span,
                        });
                    }
                } else {
                    let mut hdims = Vec::new();
                    for dim in dims {
                        hdims.push(host_expr(dim, &hosts, |n| match names.get(n) {
                            Some(TopSym::Host(i)) => Some(*i),
                            _ => None,
                        })?);
                    }
                    let idx = arrays.len();
                    arrays.push(ArrayDecl {
                        name: name.clone(),
                        ty: *ty,
                        dims: hdims,
                    });
                    names.insert(name.clone(), TopSym::Array(idx));
                }
            }
            StmtKind::Assign {
                op: AssignOp::Assign,
                lhs: LValue::Var(name),
                rhs,
            } => {
                let idx = match names.get(name) {
                    Some(TopSym::Host(i)) => *i,
                    _ => {
                        return Err(Diag::new(
                            format!("assignment to undeclared host scalar `{name}`"),
                            d.span,
                        ))
                    }
                };
                let value = host_expr(rhs, &hosts, |n| match names.get(n) {
                    Some(TopSym::Host(i)) => Some(*i),
                    _ => None,
                })?;
                host_assigns.push(HostAssign {
                    host: idx,
                    value,
                    span: d.span,
                });
            }
            _ => {
                return Err(Diag::new(
                    "only declarations and scalar assignments are allowed at host scope",
                    d.span,
                ))
            }
        }
    }

    let top_lookup = |name: &str| -> Option<Sym0> {
        match names.get(name) {
            Some(TopSym::Host(i)) => Some(Sym0::Host(*i)),
            Some(TopSym::Array(i)) => Some(Sym0::Array(*i)),
            None => None,
        }
    };

    // -- regions -------------------------------------------------------------
    let mut regions = Vec::new();
    for r in &p.regions {
        let mut rs = RegionSema {
            hosts: &hosts,
            arrays: &arrays,
            top: &top_lookup,
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            active_reds: Vec::new(),
            level_path: Vec::new(),
            hosts_used: Vec::new(),
            hosts_written: Vec::new(),
            arrays_used: Vec::new(),
        };
        regions.push(rs.region(r)?);
    }

    // Resolve structured data regions.
    let mut data_scopes = Vec::new();
    for db in &p.data_blocks {
        let mut bindings = Vec::new();
        for item in &db.items {
            match names.get(&item.name) {
                Some(TopSym::Array(i)) => bindings.push((*i, item.dir)),
                Some(TopSym::Host(_)) => {
                    return Err(Diag::new(
                        format!("`{}` is a scalar; data clauses take arrays", item.name),
                        item.span,
                    ))
                }
                None => {
                    return Err(Diag::new(
                        format!("unknown array `{}` in data region", item.name),
                        item.span,
                    ))
                }
            }
        }
        data_scopes.push(DataScope {
            bindings,
            first_region: db.first_region,
            end_region: db.end_region,
        });
    }

    Ok(AnalyzedProgram {
        hosts,
        arrays,
        host_assigns,
        regions,
        data_scopes,
        line_starts: Vec::new(),
    })
}

/// Top-level symbol class used during host-expression analysis.
#[derive(Clone, Copy)]
enum Sym0 {
    Host(usize),
    Array(usize),
}

/// Analyze an expression in *host* context: only literals and host scalars.
fn host_expr<F>(e: &Expr, hosts: &[HostScalar], lookup: F) -> Result<HExpr, Diag>
where
    F: Fn(&str) -> Option<usize> + Copy,
{
    let kind_ty: (HExprKind, CType) = match &e.kind {
        ExprKind::IntLit(v) => (HExprKind::Int(*v), CType::Int),
        ExprKind::FloatLit(v) => (HExprKind::Float(*v), CType::Double),
        ExprKind::Ident(n) => match lookup(n) {
            Some(i) => (HExprKind::Sym(Sym::Host(i)), hosts[i].ty),
            None => {
                return Err(Diag::new(
                    format!(
                        "`{n}` is not a host scalar (host expressions may only use \
                             literals and previously declared scalars)"
                    ),
                    e.span,
                ))
            }
        },
        ExprKind::Un { op, operand } => {
            let o = host_expr(operand, hosts, lookup)?;
            let ty = o.ty;
            (
                HExprKind::Un {
                    op: *op,
                    operand: Box::new(o),
                },
                ty,
            )
        }
        ExprKind::Bin { op, lhs, rhs } => {
            let l = host_expr(lhs, hosts, lookup)?;
            let r = host_expr(rhs, hosts, lookup)?;
            let ty = bin_result_type(*op, l.ty, r.ty, e.span)?;
            let cmp_ty = CType::promote(l.ty, r.ty);
            (
                HExprKind::Bin {
                    op: *op,
                    cmp_ty,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
                ty,
            )
        }
        ExprKind::Cast { ty, operand } => {
            let o = host_expr(operand, hosts, lookup)?;
            (
                HExprKind::Cast {
                    operand: Box::new(o),
                },
                *ty,
            )
        }
        _ => {
            return Err(Diag::new(
                "unsupported construct in host expression",
                e.span,
            ))
        }
    };
    Ok(HExpr {
        ty: kind_ty.1,
        kind: kind_ty.0,
        span: e.span,
    })
}

/// Result type of a binary operator given operand types (C rules), with
/// validity checks for int-only operators.
fn bin_result_type(op: BinOpKind, l: CType, r: CType, span: Span) -> Result<CType, Diag> {
    use BinOpKind::*;
    match op {
        Add | Sub | Mul | Div => Ok(CType::promote(l, r)),
        Rem | Shl | Shr | BitAnd | BitOr | BitXor => {
            if l.is_float() || r.is_float() {
                Err(Diag::new(
                    format!("operator `{op:?}` requires integer operands"),
                    span,
                ))
            } else {
                Ok(CType::promote(l, r))
            }
        }
        Lt | Le | Gt | Ge | Eq | Ne | LogAnd | LogOr => Ok(CType::Int),
    }
}

/// An active reduction clause while walking the body of its loop.
struct ActiveRed {
    sym: Sym,
    op: RedOp,
    /// Depth of `level_path` at the clause loop (levels before the clause
    /// loop's own levels were pushed).
    base_depth: usize,
    /// Accumulated span levels (set).
    span_levels: HashSet<Level>,
    /// Distinct crossed-level signatures of update sites (used to detect
    /// mixed-depth updates, which codegen must reject).
    update_sites: Vec<Vec<Level>>,
    found_update: bool,
}

struct RegionSema<'a, F: Fn(&str) -> Option<Sym0>> {
    hosts: &'a [HostScalar],
    arrays: &'a [ArrayDecl],
    top: &'a F,
    locals: Vec<LocalScalar>,
    scopes: Vec<HashMap<String, Sym>>,
    active_reds: Vec<ActiveRed>,
    /// The scheduled levels of the enclosing loops, outermost first, one
    /// entry per level (a `gang vector` loop contributes two entries).
    level_path: Vec<Level>,
    hosts_used: Vec<usize>,
    hosts_written: Vec<usize>,
    arrays_used: Vec<usize>,
}

impl<'a, F: Fn(&str) -> Option<Sym0>> RegionSema<'a, F> {
    fn region(&mut self, r: &ast::ParallelConstruct) -> Result<AnalyzedRegion, Diag> {
        let num_gangs = r
            .num_gangs
            .as_ref()
            .map(|e| self.host_only(e))
            .transpose()?;
        let num_workers = r
            .num_workers
            .as_ref()
            .map(|e| self.host_only(e))
            .transpose()?;
        let vector_length = r
            .vector_length
            .as_ref()
            .map(|e| self.host_only(e))
            .transpose()?;

        // Reductions written on the parallel construct apply to the
        // outermost gang loop; we implement them by pre-registering active
        // reductions at depth 0.
        for rc in &r.reductions {
            let sym = self.resolve_scalar(&rc.var, rc.span)?;
            self.mark_host_written(sym);
            self.active_reds.push(ActiveRed {
                sym,
                op: rc.op,
                base_depth: 0,
                span_levels: HashSet::new(),
                update_sites: Vec::new(),
                found_update: false,
            });
        }
        let n_construct_reds = r.reductions.len();
        let privates = self.resolve_privates(&r.privates)?;

        let body = self.stmts(&r.body)?;

        // Construct-level reductions: their spans were accumulated.
        let drained: Vec<ActiveRed> = self.active_reds.drain(..).collect();
        let construct_reds: Vec<Reduction> = drained
            .into_iter()
            .zip(&r.reductions)
            .map(|(ar, rc)| Reduction {
                op: ar.op,
                sym: ar.sym,
                ty: self.sym_type(ar.sym),
                clause_levels: Vec::new(),
                span_levels: sorted_levels(&ar.span_levels),
                mixed_updates: ar.update_sites.len() > 1,
                has_update: ar.found_update,
                span: rc.span,
            })
            .collect();
        debug_assert_eq!(construct_reds.len(), n_construct_reds);
        // Attach construct-level reductions to the outermost gang loop.
        let mut body = body;
        if !construct_reds.is_empty() {
            attach_to_outermost_parallel_loop(&mut body, construct_reds, r.span)?;
        }

        // Data bindings: explicit clauses + implied copies.
        let mut data: Vec<DataBinding> = Vec::new();
        let mut named: HashSet<usize> = HashSet::new();
        for item in &r.data {
            let idx = match (self.top)(&item.name) {
                Some(Sym0::Array(i)) => i,
                Some(Sym0::Host(_)) => {
                    return Err(Diag::new(
                        format!(
                            "`{}` is a scalar; scalars are passed as parameters, not data \
                             clauses",
                            item.name
                        ),
                        item.span,
                    ))
                }
                None => {
                    return Err(Diag::new(
                        format!("unknown array `{}` in data clause", item.name),
                        item.span,
                    ))
                }
            };
            if !named.insert(idx) {
                return Err(Diag::new(
                    format!("array `{}` appears in multiple data clauses", item.name),
                    item.span,
                ));
            }
            data.push(DataBinding {
                array: idx,
                dir: item.dir,
                implied: false,
            });
        }
        for &a in &self.arrays_used {
            if !named.contains(&a) {
                data.push(DataBinding {
                    array: a,
                    dir: DataDir::Copy,
                    implied: true,
                });
            }
        }

        Ok(AnalyzedRegion {
            num_gangs,
            num_workers,
            vector_length,
            data,
            locals: std::mem::take(&mut self.locals),
            hosts_used: std::mem::take(&mut self.hosts_used),
            hosts_written: std::mem::take(&mut self.hosts_written),
            privates,
            body,
            span: r.span,
        })
    }

    fn host_only(&mut self, e: &Expr) -> Result<HExpr, Diag> {
        host_expr(e, self.hosts, |n| match (self.top)(n) {
            Some(Sym0::Host(i)) => Some(i),
            _ => None,
        })
    }

    fn sym_type(&self, s: Sym) -> CType {
        match s {
            Sym::Host(i) => self.hosts[i].ty,
            Sym::Local(i) => self.locals[i].ty,
        }
    }

    fn resolve(&mut self, name: &str, span: Span) -> Result<ResolvedName, Diag> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Ok(ResolvedName::Scalar(*s));
            }
        }
        match (self.top)(name) {
            Some(Sym0::Host(i)) => {
                if !self.hosts_used.contains(&i) {
                    self.hosts_used.push(i);
                }
                Ok(ResolvedName::Scalar(Sym::Host(i)))
            }
            Some(Sym0::Array(i)) => {
                if !self.arrays_used.contains(&i) {
                    self.arrays_used.push(i);
                }
                Ok(ResolvedName::Array(i))
            }
            None => Err(Diag::new(format!("unknown identifier `{name}`"), span)),
        }
    }

    fn resolve_scalar(&mut self, name: &str, span: Span) -> Result<Sym, Diag> {
        match self.resolve(name, span)? {
            ResolvedName::Scalar(s) => Ok(s),
            ResolvedName::Array(_) => Err(Diag::new(
                format!("`{name}` is an array, expected a scalar"),
                span,
            )),
        }
    }

    fn mark_host_written(&mut self, s: Sym) {
        if let Sym::Host(i) = s {
            if !self.hosts_written.contains(&i) {
                self.hosts_written.push(i);
            }
            if !self.hosts_used.contains(&i) {
                self.hosts_used.push(i);
            }
        }
    }

    fn new_local(&mut self, name: &str, ty: CType, is_loop_var: bool) -> usize {
        let id = self.locals.len();
        self.locals.push(LocalScalar {
            name: name.to_string(),
            ty,
            is_loop_var,
        });
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), Sym::Local(id));
        id
    }

    // ---- statements --------------------------------------------------------

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<HStmt>, Diag> {
        let mut out = Vec::new();
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<HStmt>) -> Result<(), Diag> {
        match &s.kind {
            StmtKind::Decl {
                ty,
                name,
                dims,
                init,
            } => {
                if !dims.is_empty() {
                    return Err(Diag::new(
                        "array declarations inside a parallel region are not supported",
                        s.span,
                    ));
                }
                let init_h = init.as_ref().map(|e| self.expr(e)).transpose()?;
                let id = self.new_local(name, *ty, false);
                if let Some(v) = init_h {
                    out.push(HStmt::AssignLocal {
                        local: id,
                        value: self.coerce(v, *ty),
                    });
                }
            }
            StmtKind::Assign { op, lhs, rhs } => {
                self.assign(*op, lhs, rhs, s.span, out)?;
            }
            StmtKind::IncDec { name, inc } => {
                let one = Expr::new(ExprKind::IntLit(1), s.span);
                let op = if *inc { AssignOp::Add } else { AssignOp::Sub };
                self.assign(op, &LValue::Var(name.clone()), &one, s.span, out)?;
            }
            StmtKind::If { cond, then, els } => {
                let c = self.expr(cond)?;
                self.scopes.push(HashMap::new());
                let t = self.stmts(then)?;
                self.scopes.pop();
                self.scopes.push(HashMap::new());
                let e = self.stmts(els)?;
                self.scopes.pop();
                out.push(HStmt::If {
                    cond: c,
                    then: t,
                    els: e,
                });
            }
            StmtKind::For(f) => {
                let l = self.for_loop(f, s.span)?;
                out.push(HStmt::Loop(l));
            }
            StmtKind::Block(inner) => {
                self.scopes.push(HashMap::new());
                let mut stmts = self.stmts(inner)?;
                self.scopes.pop();
                out.append(&mut stmts);
            }
        }
        Ok(())
    }

    fn assign(
        &mut self,
        op: AssignOp,
        lhs: &LValue,
        rhs: &Expr,
        span: Span,
        out: &mut Vec<HStmt>,
    ) -> Result<(), Diag> {
        match lhs {
            LValue::Var(name) => {
                let sym = self.resolve_scalar(name, span)?;
                let ty = self.sym_type(sym);
                // Is this an update of an active reduction?
                if let Some(red_idx) = self.active_reds.iter().rposition(|ar| ar.sym == sym) {
                    let red_op = self.active_reds[red_idx].op;
                    let value = self.reduction_update_value(red_op, op, sym, rhs, span)?;
                    let value = self.coerce(value, ty);
                    // Record the span levels crossed at this update site.
                    let base = self.active_reds[red_idx].base_depth;
                    let crossed: Vec<Level> = self.level_path[base..].to_vec();
                    let ar = &mut self.active_reds[red_idx];
                    ar.found_update = true;
                    if !ar.update_sites.contains(&crossed) {
                        ar.update_sites.push(crossed.clone());
                    }
                    for l in crossed {
                        ar.span_levels.insert(l);
                    }
                    out.push(HStmt::ReduceUpdate {
                        sym,
                        op: red_op,
                        value,
                        span,
                    });
                    return Ok(());
                }
                // Plain assignment (normalize compound ops).
                let rhs_h = self.expr(rhs)?;
                let value = match assign_bin_op(op) {
                    None => rhs_h,
                    Some(bop) => {
                        let cur = HExpr {
                            ty,
                            kind: HExprKind::Sym(sym),
                            span,
                        };
                        let rty = bin_result_type(bop, ty, rhs_h.ty, span)?;
                        let cmp_ty = CType::promote(ty, rhs_h.ty);
                        HExpr {
                            ty: rty,
                            kind: HExprKind::Bin {
                                op: bop,
                                cmp_ty,
                                lhs: Box::new(cur),
                                rhs: Box::new(rhs_h),
                            },
                            span,
                        }
                    }
                };
                let value = self.coerce(value, ty);
                match sym {
                    Sym::Local(i) => out.push(HStmt::AssignLocal { local: i, value }),
                    Sym::Host(i) => {
                        self.mark_host_written(sym);
                        out.push(HStmt::AssignHost { host: i, value });
                    }
                }
            }
            LValue::Elem { base, indices } => {
                let arr = match self.resolve(base, span)? {
                    ResolvedName::Array(i) => i,
                    ResolvedName::Scalar(_) => {
                        return Err(Diag::new(
                            format!("`{base}` is a scalar, cannot subscript"),
                            span,
                        ))
                    }
                };
                let ety = self.arrays[arr].ty;
                let idx_h = self.indices(arr, indices, span)?;
                let rhs_h = self.expr(rhs)?;
                let value = match assign_bin_op(op) {
                    None => rhs_h,
                    Some(bop) => {
                        let cur = HExpr {
                            ty: ety,
                            kind: HExprKind::Load {
                                array: arr,
                                indices: idx_h.clone(),
                            },
                            span,
                        };
                        let rty = bin_result_type(bop, ety, rhs_h.ty, span)?;
                        let cmp_ty = CType::promote(ety, rhs_h.ty);
                        HExpr {
                            ty: rty,
                            kind: HExprKind::Bin {
                                op: bop,
                                cmp_ty,
                                lhs: Box::new(cur),
                                rhs: Box::new(rhs_h),
                            },
                            span,
                        }
                    }
                };
                let value = self.coerce(value, ety);
                out.push(HStmt::Store {
                    array: arr,
                    indices: idx_h,
                    value,
                });
            }
        }
        Ok(())
    }

    /// Validate that an assignment to a reduction variable matches the
    /// clause operator and extract the contributed value.
    fn reduction_update_value(
        &mut self,
        red_op: RedOp,
        aop: AssignOp,
        sym: Sym,
        rhs: &Expr,
        span: Span,
    ) -> Result<HExpr, Diag> {
        let mismatch = |found: &str| {
            Diag::new(
                format!(
                    "reduction variable is updated with `{found}` but the clause declares \
                     `{}`",
                    red_op.clause_token()
                ),
                span,
            )
        };
        // Compound-assignment forms.
        if let Some(op_str) = match aop {
            AssignOp::Add => Some("+"),
            AssignOp::Mul => Some("*"),
            AssignOp::And => Some("&"),
            AssignOp::Or => Some("|"),
            AssignOp::Xor => Some("^"),
            AssignOp::Sub | AssignOp::Div | AssignOp::Rem | AssignOp::Shl | AssignOp::Shr => {
                let s = match aop {
                    AssignOp::Sub => "-=",
                    AssignOp::Div => "/=",
                    AssignOp::Rem => "%=",
                    AssignOp::Shl => "<<=",
                    _ => ">>=",
                };
                return Err(mismatch(s));
            }
            AssignOp::Assign => None,
        } {
            let expect = RedOp::from_clause_token(op_str).expect("valid op");
            if expect != red_op {
                return Err(mismatch(op_str));
            }
            return self.expr(rhs);
        }
        // Plain `v = <expr>` form: the rhs must be `v <op> e`, `e <op> v`,
        // or `fmax/fmin/max/min(v, e)`.
        let is_self = |e: &Expr| -> bool {
            matches!(&e.kind, ExprKind::Ident(n)
                if self.scopes.iter().rev().find_map(|s| s.get(n)).copied()
                    .or_else(|| match (self.top)(n) { Some(Sym0::Host(i)) => Some(Sym::Host(i)), _ => None })
                    == Some(sym))
        };
        match &rhs.kind {
            ExprKind::Bin { op, lhs, rhs: r } => {
                let bop_as_red = match op {
                    BinOpKind::Add => Some(RedOp::Add),
                    BinOpKind::Mul => Some(RedOp::Mul),
                    BinOpKind::BitAnd => Some(RedOp::BitAnd),
                    BinOpKind::BitOr => Some(RedOp::BitOr),
                    BinOpKind::BitXor => Some(RedOp::BitXor),
                    BinOpKind::LogAnd => Some(RedOp::LogAnd),
                    BinOpKind::LogOr => Some(RedOp::LogOr),
                    _ => None,
                };
                match bop_as_red {
                    Some(r_op) if r_op == red_op => {
                        if is_self(lhs) {
                            self.expr(r)
                        } else if is_self(r) {
                            self.expr(lhs)
                        } else {
                            Err(Diag::new(
                                "reduction update must reference the reduction variable",
                                span,
                            ))
                        }
                    }
                    _ => Err(mismatch(&format!("{op:?}"))),
                }
            }
            ExprKind::Call { name, args } if args.len() == 2 => {
                let f_as_red = match MathFunc::from_name(name) {
                    Some(MathFunc::FMax | MathFunc::IMax) => Some(RedOp::Max),
                    Some(MathFunc::FMin | MathFunc::IMin) => Some(RedOp::Min),
                    _ => None,
                };
                match f_as_red {
                    Some(r_op) if r_op == red_op => {
                        if is_self(&args[0]) {
                            self.expr(&args[1])
                        } else if is_self(&args[1]) {
                            self.expr(&args[0])
                        } else {
                            Err(Diag::new(
                                "reduction update must reference the reduction variable",
                                span,
                            ))
                        }
                    }
                    _ => Err(mismatch(name)),
                }
            }
            _ => Err(Diag::new(
                "assignment to a reduction variable must be a reduction update \
                 (e.g. `v += e` or `v = fmax(v, e)`)",
                span,
            )),
        }
    }

    fn for_loop(&mut self, f: &ast::ForLoop, span: Span) -> Result<HLoop, Diag> {
        let dir = f.directive.clone().unwrap_or_default();
        if let Some(n) = dir.collapse {
            if n > 1 {
                return self.collapsed_loop(f, n, span);
            }
        }
        let mut sched: Vec<Level> = Vec::new();
        if !dir.seq {
            for l in &dir.levels {
                if sched.contains(l) {
                    return Err(Diag::new(
                        format!("duplicate `{l}` on loop directive"),
                        dir.span,
                    ));
                }
                sched.push(*l);
            }
        } else if !dir.levels.is_empty() {
            return Err(Diag::new(
                "`seq` conflicts with parallelism levels",
                dir.span,
            ));
        }
        let mut sched_sorted = sched.clone();
        sched_sorted.sort();
        if sched_sorted != sched {
            return Err(Diag::new(
                "parallelism levels must be ordered gang, worker, vector",
                dir.span,
            ));
        }
        // Nesting: each level here must be deeper than all enclosing levels.
        if let (Some(&outer_max), Some(&inner_min)) = (self.level_path.last(), sched.first()) {
            if inner_min <= outer_max {
                return Err(Diag::new(
                    format!("`{inner_min}` loop cannot be nested inside a `{outer_max}` loop"),
                    dir.span,
                ));
            }
        }

        // Analyze bounds in the *enclosing* scope.
        let lower = self.expr(&f.init)?;
        let bound = self.expr(&f.bound)?;
        let step = self.expr(&f.step)?;
        for part in [&lower, &bound, &step] {
            if part.ty.is_float() {
                return Err(Diag::new(
                    "loop bounds and step must be integers",
                    part.span,
                ));
            }
        }
        if !sched.is_empty() && step.const_int().is_none() {
            return Err(Diag::new(
                "a parallel loop requires a constant step",
                step.span,
            ));
        }
        if let Some(s) = step.const_int() {
            let upward = matches!(f.cmp, BinOpKind::Lt | BinOpKind::Le);
            if s == 0 || (upward && s < 0) || (!upward && s > 0) {
                return Err(Diag::new(
                    "loop step direction contradicts its condition",
                    step.span,
                ));
            }
        }

        self.scopes.push(HashMap::new());
        let var_ty = f.decl_ty.unwrap_or(CType::Int);
        if var_ty.is_float() {
            return Err(Diag::new(
                "loop variable must have integer type",
                f.var_span,
            ));
        }
        let var = self.new_local(&f.var, var_ty, true);

        // Register this loop's reduction clauses.
        let base_depth = self.level_path.len();
        self.level_path.extend(sched.iter().copied());
        let n_before = self.active_reds.len();
        for rc in &dir.reductions {
            let sym = self.resolve_scalar(&rc.var, rc.span)?;
            if self.active_reds.iter().any(|ar| ar.sym == sym) {
                return Err(Diag::new(
                    format!(
                        "`{}` already has a reduction clause on an enclosing loop",
                        rc.var
                    ),
                    rc.span,
                ));
            }
            // A host scalar reduced inside an enclosing parallel loop would
            // end with a different value in every gang/worker; its value
            // after the region would be unspecified. Require the clause on
            // the outermost parallel loop (the span auto-detection widens it
            // from there).
            if matches!(sym, Sym::Host(_)) && base_depth > 0 {
                return Err(Diag::new(
                    format!(
                        "reduction on `{}` is nested inside {} parallelism, so its \
                         value after the region would be unspecified; move the \
                         reduction clause to the outermost parallel loop (the \
                         compiler widens the span automatically)",
                        rc.var,
                        self.level_path[base_depth - 1]
                    ),
                    rc.span,
                ));
            }
            self.mark_host_written(sym);
            self.active_reds.push(ActiveRed {
                sym,
                op: rc.op,
                base_depth,
                span_levels: sched.iter().copied().collect(),
                update_sites: Vec::new(),
                found_update: false,
            });
        }
        let privates = self.resolve_privates(&dir.privates)?;

        let body = self.stmts(&f.body)?;

        // Pop this loop's reductions and finalize their spans.
        let mut reductions = Vec::new();
        let drained: Vec<ActiveRed> = self.active_reds.drain(n_before..).collect();
        for (ar, rc) in drained.into_iter().zip(&dir.reductions) {
            reductions.push(Reduction {
                op: ar.op,
                sym: ar.sym,
                ty: self.sym_type(ar.sym),
                clause_levels: sched.clone(),
                span_levels: sorted_levels(&ar.span_levels),
                mixed_updates: ar.update_sites.len() > 1,
                has_update: ar.found_update,
                span: rc.span,
            });
        }
        self.level_path.truncate(base_depth);
        self.scopes.pop();

        Ok(HLoop {
            var,
            lower,
            bound,
            cmp: f.cmp,
            step,
            sched,
            reductions,
            privates,
            body,
            span,
        })
    }

    /// Resolve the names of `private(...)` clause items. The variables must
    /// be visible at the directive; items are kept with their clause span
    /// for the lint layer.
    fn resolve_privates(&mut self, items: &[ast::NameItem]) -> Result<Vec<(Sym, Span)>, Diag> {
        let mut out = Vec::new();
        for item in items {
            let sym = self.resolve_scalar(&item.name, item.span)?;
            out.push((sym, item.span));
        }
        Ok(out)
    }

    /// Handle `collapse(n)` with `n > 1`: fuse a perfectly nested,
    /// rectangular loop nest into a single linearized loop distributed over
    /// the directive's levels. Inner loop variables are recovered with
    /// div/mod arithmetic, exactly as CUDA compilers lower `collapse`.
    fn collapsed_loop(&mut self, f: &ast::ForLoop, n: u32, span: Span) -> Result<HLoop, Diag> {
        let dir = f.directive.clone().unwrap_or_default();
        // Gather the n perfectly nested loops.
        let mut specs: Vec<ast::ForLoop> = vec![f.clone()];
        for d in 1..n {
            let body = &specs[d as usize - 1].body;
            // Exactly one statement, which must be a for loop.
            let inner = match body.as_slice() {
                [Stmt {
                    kind: StmtKind::For(inner),
                    ..
                }] => inner.clone(),
                _ => {
                    return Err(Diag::new(
                        format!(
                            "collapse({n}) requires {n} perfectly nested loops; level {d} \
                             is not a single nested for loop"
                        ),
                        dir.span,
                    ))
                }
            };
            if inner.directive.is_some() {
                return Err(Diag::new(
                    "loops inside a collapse nest must not carry their own directives",
                    dir.span,
                ));
            }
            specs.push(inner);
        }

        // Analyze each level's bounds in the enclosing scope: referencing an
        // outer collapsed loop variable fails name resolution, which is
        // exactly the rectangularity requirement.
        let mk_long = |kind: HExprKind| HExpr {
            ty: CType::Long,
            kind,
            span,
        };
        let int_lit = |v: i64| HExpr {
            ty: CType::Long,
            kind: HExprKind::Int(v),
            span,
        };
        let bin = |op: BinOpKind, l: HExpr, r: HExpr| HExpr {
            ty: CType::Long,
            kind: HExprKind::Bin {
                op,
                cmp_ty: CType::Long,
                lhs: Box::new(l),
                rhs: Box::new(r),
            },
            span,
        };
        let cast_long = |e: HExpr| {
            if e.ty == CType::Long {
                e
            } else {
                mk_long(HExprKind::Cast {
                    operand: Box::new(e),
                })
            }
        };

        struct LevelInfo {
            lower: HExpr,
            trip: HExpr,
            stepv: i64,
            var_ty: CType,
        }
        let mut levels: Vec<LevelInfo> = Vec::new();
        for (d, sp) in specs.iter().enumerate() {
            let lower = self.expr(&sp.init).map_err(|e| {
                Diag::new(
                    format!(
                        "in collapse level {d}: {} (collapsed bounds must not depend on \
                         outer collapsed loop variables)",
                        e.message
                    ),
                    e.span,
                )
            })?;
            let bound = self.expr(&sp.bound).map_err(|e| {
                Diag::new(
                    format!(
                        "in collapse level {d}: {} (collapsed bounds must not depend on \
                         outer collapsed loop variables)",
                        e.message
                    ),
                    e.span,
                )
            })?;
            let step = self.expr(&sp.step)?;
            if lower.ty.is_float() || bound.ty.is_float() {
                return Err(Diag::new("loop bounds must be integers", sp.init.span));
            }
            let stepv = step.const_int().ok_or_else(|| {
                Diag::new("collapsed loops require constant steps of +1 or -1", span)
            })?;
            if stepv != 1 && stepv != -1 {
                return Err(Diag::new(
                    "collapsed loops require constant steps of +1 or -1",
                    span,
                ));
            }
            let upward = matches!(sp.cmp, BinOpKind::Lt | BinOpKind::Le);
            if (upward && stepv < 0) || (!upward && stepv > 0) {
                return Err(Diag::new(
                    "loop step direction contradicts its condition",
                    span,
                ));
            }
            let incl = matches!(sp.cmp, BinOpKind::Le | BinOpKind::Ge);
            // trip = max(0, bound - lower [+1]) for upward, (lower - bound
            // [+1]) for downward. Negative trips are clamped by the fused
            // bound comparison (a negative factor makes the product <= 0,
            // and the fused loop runs `lin < total`).
            let (lo64, bo64) = (cast_long(lower.clone()), cast_long(bound));
            let diff = if upward {
                bin(BinOpKind::Sub, bo64, lo64)
            } else {
                bin(BinOpKind::Sub, lo64, bo64)
            };
            let trip = if incl {
                bin(BinOpKind::Add, diff, int_lit(1))
            } else {
                diff
            };
            levels.push(LevelInfo {
                lower,
                trip,
                stepv,
                var_ty: sp.decl_ty.unwrap_or(CType::Int),
            });
        }

        // total = product of trips.
        let mut total = levels[0].trip.clone();
        for l in &levels[1..] {
            total = bin(BinOpKind::Mul, total, l.trip.clone());
        }

        // Schedule validation (same rules as plain loops).
        let mut sched: Vec<Level> = Vec::new();
        for l in &dir.levels {
            if sched.contains(l) {
                return Err(Diag::new(
                    format!("duplicate `{l}` on loop directive"),
                    dir.span,
                ));
            }
            sched.push(*l);
        }
        let mut ss = sched.clone();
        ss.sort();
        if ss != sched {
            return Err(Diag::new(
                "parallelism levels must be ordered gang, worker, vector",
                dir.span,
            ));
        }
        if let (Some(&outer_max), Some(&inner_min)) = (self.level_path.last(), sched.first()) {
            if inner_min <= outer_max {
                return Err(Diag::new(
                    format!("`{inner_min}` loop cannot be nested inside a `{outer_max}` loop"),
                    dir.span,
                ));
            }
        }

        self.scopes.push(HashMap::new());
        let lin = self.new_local("__collapse_lin", CType::Long, true);

        // Recover each original loop variable:
        //   var_d = lower_d + stepv_d * ((lin / stride_d) % trip_d)
        // with stride_d the product of deeper trips.
        let mut recover: Vec<HStmt> = Vec::new();
        let mut var_ids: Vec<usize> = Vec::new();
        for (d, sp) in specs.iter().enumerate() {
            let var = self.new_local(&sp.var, levels[d].var_ty, true);
            var_ids.push(var);
        }
        for d in 0..specs.len() {
            let mut idx = mk_long(HExprKind::Sym(Sym::Local(lin)));
            // stride = product of trips deeper than d
            for deeper in &levels[d + 1..] {
                idx = bin(BinOpKind::Div, idx, deeper.trip.clone());
            }
            if d > 0 {
                idx = bin(BinOpKind::Rem, idx, levels[d].trip.clone());
            }
            let scaled = if levels[d].stepv == 1 {
                idx
            } else {
                bin(BinOpKind::Sub, int_lit(0), idx)
            };
            let value = bin(BinOpKind::Add, cast_long(levels[d].lower.clone()), scaled);
            let value = HExpr {
                ty: levels[d].var_ty,
                kind: HExprKind::Cast {
                    operand: Box::new(value),
                },
                span,
            };
            recover.push(HStmt::AssignLocal {
                local: var_ids[d],
                value,
            });
        }

        // Register reductions on the fused loop.
        let base_depth = self.level_path.len();
        self.level_path.extend(sched.iter().copied());
        let n_before = self.active_reds.len();
        for rc in &dir.reductions {
            let sym = self.resolve_scalar(&rc.var, rc.span)?;
            if self.active_reds.iter().any(|ar| ar.sym == sym) {
                return Err(Diag::new(
                    format!(
                        "`{}` already has a reduction clause on an enclosing loop",
                        rc.var
                    ),
                    rc.span,
                ));
            }
            // A host scalar reduced inside an enclosing parallel loop would
            // end with a different value in every gang/worker; its value
            // after the region would be unspecified. Require the clause on
            // the outermost parallel loop (the span auto-detection widens it
            // from there).
            if matches!(sym, Sym::Host(_)) && base_depth > 0 {
                return Err(Diag::new(
                    format!(
                        "reduction on `{}` is nested inside {} parallelism, so its \
                         value after the region would be unspecified; move the \
                         reduction clause to the outermost parallel loop (the \
                         compiler widens the span automatically)",
                        rc.var,
                        self.level_path[base_depth - 1]
                    ),
                    rc.span,
                ));
            }
            self.mark_host_written(sym);
            self.active_reds.push(ActiveRed {
                sym,
                op: rc.op,
                base_depth,
                span_levels: sched.iter().copied().collect(),
                update_sites: Vec::new(),
                found_update: false,
            });
        }
        let privates = self.resolve_privates(&dir.privates)?;

        let mut body = recover;
        body.extend(self.stmts(&specs[n as usize - 1].body)?);

        let mut reductions = Vec::new();
        let drained: Vec<ActiveRed> = self.active_reds.drain(n_before..).collect();
        for (ar, rc) in drained.into_iter().zip(&dir.reductions) {
            reductions.push(Reduction {
                op: ar.op,
                sym: ar.sym,
                ty: self.sym_type(ar.sym),
                clause_levels: sched.clone(),
                span_levels: sorted_levels(&ar.span_levels),
                mixed_updates: ar.update_sites.len() > 1,
                has_update: ar.found_update,
                span: rc.span,
            });
        }
        self.level_path.truncate(base_depth);
        self.scopes.pop();

        Ok(HLoop {
            var: lin,
            lower: int_lit(0),
            bound: total,
            cmp: BinOpKind::Lt,
            step: int_lit(1),
            sched,
            reductions,
            privates,
            body,
            span,
        })
    }

    // ---- expressions -------------------------------------------------------

    fn coerce(&self, e: HExpr, ty: CType) -> HExpr {
        if e.ty == ty {
            e
        } else {
            let span = e.span;
            HExpr {
                ty,
                kind: HExprKind::Cast {
                    operand: Box::new(e),
                },
                span,
            }
        }
    }

    fn indices(&mut self, arr: usize, indices: &[Expr], span: Span) -> Result<Vec<HExpr>, Diag> {
        let ndims = self.arrays[arr].dims.len();
        if indices.len() != ndims {
            return Err(Diag::new(
                format!(
                    "array `{}` has {ndims} dimension(s) but {} index(es) were given",
                    self.arrays[arr].name,
                    indices.len()
                ),
                span,
            ));
        }
        let mut out = Vec::new();
        for ix in indices {
            let h = self.expr(ix)?;
            if h.ty.is_float() {
                return Err(Diag::new("array index must be an integer", ix.span));
            }
            out.push(h);
        }
        Ok(out)
    }

    fn expr(&mut self, e: &Expr) -> Result<HExpr, Diag> {
        let (kind, ty): (HExprKind, CType) = match &e.kind {
            ExprKind::IntLit(v) => (HExprKind::Int(*v), CType::Int),
            ExprKind::FloatLit(v) => (HExprKind::Float(*v), CType::Double),
            ExprKind::Ident(n) => match self.resolve(n, e.span)? {
                ResolvedName::Scalar(s) => (HExprKind::Sym(s), self.sym_type(s)),
                ResolvedName::Array(_) => {
                    return Err(Diag::new(
                        format!("array `{n}` used without a subscript"),
                        e.span,
                    ))
                }
            },
            ExprKind::Index { base, indices } => {
                let arr = match self.resolve(base, e.span)? {
                    ResolvedName::Array(i) => i,
                    ResolvedName::Scalar(_) => {
                        return Err(Diag::new(
                            format!("`{base}` is a scalar, cannot subscript"),
                            e.span,
                        ))
                    }
                };
                let idx = self.indices(arr, indices, e.span)?;
                (
                    HExprKind::Load {
                        array: arr,
                        indices: idx,
                    },
                    self.arrays[arr].ty,
                )
            }
            ExprKind::Un { op, operand } => {
                let o = self.expr(operand)?;
                let ty = match op {
                    UnOpKind::Neg => o.ty,
                    UnOpKind::Not => CType::Int,
                    UnOpKind::BitNot => {
                        if o.ty.is_float() {
                            return Err(Diag::new("`~` requires an integer operand", e.span));
                        }
                        o.ty
                    }
                };
                (
                    HExprKind::Un {
                        op: *op,
                        operand: Box::new(o),
                    },
                    ty,
                )
            }
            ExprKind::Bin { op, lhs, rhs } => {
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                let ty = bin_result_type(*op, l.ty, r.ty, e.span)?;
                let cmp_ty = CType::promote(l.ty, r.ty);
                (
                    HExprKind::Bin {
                        op: *op,
                        cmp_ty,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    ty,
                )
            }
            ExprKind::Cond { cond, then, els } => {
                let c = self.expr(cond)?;
                let t = self.expr(then)?;
                let el = self.expr(els)?;
                let ty = CType::promote(t.ty, el.ty);
                (
                    HExprKind::Cond {
                        cond: Box::new(c),
                        then: Box::new(t),
                        els: Box::new(el),
                    },
                    ty,
                )
            }
            ExprKind::Call { name, args } => {
                let func = MathFunc::from_name(name).ok_or_else(|| {
                    Diag::new(
                        format!(
                            "unknown function `{name}` (only math intrinsics are callable \
                             in kernels)"
                        ),
                        e.span,
                    )
                })?;
                if args.len() != func.arity() {
                    return Err(Diag::new(
                        format!("`{name}` takes {} argument(s)", func.arity()),
                        e.span,
                    ));
                }
                let mut hargs = Vec::new();
                for a in args {
                    hargs.push(self.expr(a)?);
                }
                let ty = match func {
                    MathFunc::FMax | MathFunc::FMin => {
                        let t = CType::promote(hargs[0].ty, hargs[1].ty);
                        if t.is_float() {
                            t
                        } else {
                            CType::Double
                        }
                    }
                    MathFunc::FAbs | MathFunc::Sqrt => {
                        if hargs[0].ty == CType::Float {
                            CType::Float
                        } else {
                            CType::Double
                        }
                    }
                    MathFunc::IMax | MathFunc::IMin => {
                        let t = CType::promote(hargs[0].ty, hargs[1].ty);
                        if t.is_float() {
                            return Err(Diag::new(
                                format!("`{name}` requires integer arguments (use f{name})"),
                                e.span,
                            ));
                        }
                        t
                    }
                    MathFunc::IAbs => {
                        if hargs[0].ty.is_float() {
                            return Err(Diag::new(
                                "`abs` requires an integer argument (use fabs)",
                                e.span,
                            ));
                        }
                        hargs[0].ty
                    }
                };
                (HExprKind::Call { func, args: hargs }, ty)
            }
            ExprKind::Cast { ty, operand } => {
                let o = self.expr(operand)?;
                (
                    HExprKind::Cast {
                        operand: Box::new(o),
                    },
                    *ty,
                )
            }
        };
        Ok(HExpr {
            ty,
            kind,
            span: e.span,
        })
    }
}

enum ResolvedName {
    Scalar(Sym),
    Array(usize),
}

fn assign_bin_op(op: AssignOp) -> Option<BinOpKind> {
    match op {
        AssignOp::Assign => None,
        AssignOp::Add => Some(BinOpKind::Add),
        AssignOp::Sub => Some(BinOpKind::Sub),
        AssignOp::Mul => Some(BinOpKind::Mul),
        AssignOp::Div => Some(BinOpKind::Div),
        AssignOp::Rem => Some(BinOpKind::Rem),
        AssignOp::And => Some(BinOpKind::BitAnd),
        AssignOp::Or => Some(BinOpKind::BitOr),
        AssignOp::Xor => Some(BinOpKind::BitXor),
        AssignOp::Shl => Some(BinOpKind::Shl),
        AssignOp::Shr => Some(BinOpKind::Shr),
    }
}

fn sorted_levels(set: &HashSet<Level>) -> Vec<Level> {
    let mut v: Vec<Level> = set.iter().copied().collect();
    v.sort();
    v
}

/// Attach construct-level reductions to the outermost parallel loop of the
/// region body.
fn attach_to_outermost_parallel_loop(
    body: &mut [HStmt],
    reds: Vec<Reduction>,
    span: Span,
) -> Result<(), Diag> {
    for s in body.iter_mut() {
        if let HStmt::Loop(l) = s {
            if !l.sched.is_empty() {
                for mut r in reds {
                    r.clause_levels = l.sched.clone();
                    l.reductions.push(r);
                }
                return Ok(());
            }
        }
    }
    Err(Diag::new(
        "reduction on `parallel` construct requires a parallel loop in the region",
        span,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze_src(src: &str) -> Result<AnalyzedProgram, Diag> {
        analyze(&parse_program(src).unwrap())
    }

    const VECTOR_RED: &str = r#"
        int NK; int NJ; int NI;
        float input[NK][NJ][NI];
        float temp[NK][NJ][NI];
        #pragma acc parallel copyin(input) copyout(temp)
        {
            #pragma acc loop gang
            for (int k = 0; k < NK; k++) {
                #pragma acc loop worker
                for (int j = 0; j < NJ; j++) {
                    int i_sum = j;
                    #pragma acc loop vector reduction(+:i_sum)
                    for (int i = 0; i < NI; i++) {
                        i_sum += input[k][j][i];
                    }
                    temp[k][j][0] = i_sum;
                }
            }
        }
    "#;

    #[test]
    fn analyzes_vector_reduction() {
        let p = analyze_src(VECTOR_RED).unwrap();
        assert_eq!(p.hosts.len(), 3);
        assert_eq!(p.arrays.len(), 2);
        let r = &p.regions[0];
        // find the vector loop's reduction
        let mut found = false;
        visit_loops(&r.body, &mut |l| {
            if l.sched == vec![Level::Vector] {
                assert_eq!(l.reductions.len(), 1);
                let red = &l.reductions[0];
                assert_eq!(red.op, RedOp::Add);
                assert_eq!(red.span_levels, vec![Level::Vector]);
                assert_eq!(red.ty, CType::Int);
                found = true;
            }
        });
        assert!(found);
        // i_sum += ... became a ReduceUpdate
        let mut has_update = false;
        fn find_update(stmts: &[HStmt], has: &mut bool) {
            for s in stmts {
                match s {
                    HStmt::ReduceUpdate { .. } => *has = true,
                    HStmt::Loop(l) => find_update(&l.body, has),
                    HStmt::If { then, els, .. } => {
                        find_update(then, has);
                        find_update(els, has);
                    }
                    _ => {}
                }
            }
        }
        find_update(&r.body, &mut has_update);
        assert!(has_update);
    }

    #[test]
    fn rmp_span_autodetected_across_loops() {
        // Paper Fig. 9: clause on the worker loop, update inside the vector
        // loop -> span must be worker+vector.
        let src = r#"
            int NK; int NJ; int NI;
            float input[NK][NJ][NI];
            float temp[NK];
            #pragma acc parallel copyin(input) copyout(temp)
            {
                #pragma acc loop gang
                for (int k = 0; k < NK; k++) {
                    int j_sum = k;
                    #pragma acc loop worker reduction(+:j_sum)
                    for (int j = 0; j < NJ; j++) {
                        #pragma acc loop vector
                        for (int i = 0; i < NI; i++) {
                            j_sum += input[k][j][i];
                        }
                    }
                    temp[k] = j_sum;
                }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let mut spans = Vec::new();
        visit_loops(&p.regions[0].body, &mut |l| {
            for r in &l.reductions {
                spans.push(r.span_levels.clone());
            }
        });
        assert_eq!(spans, vec![vec![Level::Worker, Level::Vector]]);
    }

    #[test]
    fn same_loop_multi_level_span() {
        let src = r#"
            int N; int s;
            int a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang worker vector reduction(+:s)
                for (int i = 0; i < N; i++) {
                    s += a[i];
                }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let mut spans = Vec::new();
        visit_loops(&p.regions[0].body, &mut |l| {
            for r in &l.reductions {
                spans.push(r.span_levels.clone());
            }
        });
        assert_eq!(spans, vec![vec![Level::Gang, Level::Worker, Level::Vector]]);
        // s is a host scalar written back
        assert_eq!(p.regions[0].hosts_written, vec![p.host_index("s").unwrap()]);
    }

    /// §3.2.1 span auto-detection, pinned for all six placements of the
    /// Fig. 4/5/9 shapes in a gang/worker/vector loop nest: the clause
    /// sits on one loop and the update at the same or a deeper level; the
    /// detected span must cover exactly the levels in between.
    #[test]
    fn span_autodetection_all_six_placements() {
        // (clause loop, update site, expected span). Sites: "gang" =
        // directly in the gang body, "worker" = in the worker body after
        // the vector loop, "vector" = in the vector body.
        let cases: [(&str, &str, Vec<Level>); 6] = [
            ("gang", "gang", vec![Level::Gang]),
            ("worker", "worker", vec![Level::Worker]),
            ("vector", "vector", vec![Level::Vector]),
            ("gang", "worker", vec![Level::Gang, Level::Worker]),
            ("worker", "vector", vec![Level::Worker, Level::Vector]),
            (
                "gang",
                "vector",
                vec![Level::Gang, Level::Worker, Level::Vector],
            ),
        ];
        for (clause_loop, update_site, expected) in cases {
            // Host scalars must carry the clause on the outermost parallel
            // loop; deeper clauses use a per-gang local consumed into an
            // output array so sema accepts the placement.
            let host_sum = clause_loop == "gang";
            let decl = if host_sum { "float sum;\nsum = 0;" } else { "" };
            let local_decl = if host_sum { "" } else { "float sum = 0;" };
            let consume = if host_sum { "" } else { "out[k] = sum;" };
            let red = |l: &str| {
                if l == clause_loop {
                    " reduction(+:sum)"
                } else {
                    ""
                }
            };
            let upd = |site: &str| {
                if site == update_site {
                    "sum += input[k][j][i];"
                } else {
                    ""
                }
            };
            let src = format!(
                r#"
                int NK; int NJ; int NI;
                {decl}
                float input[NK][NJ][NI];
                float out[NK];
                #pragma acc parallel copyin(input) copyout(out)
                {{
                    #pragma acc loop gang{g}
                    for (int k = 0; k < NK; k++) {{
                        {local_decl}
                        #pragma acc loop worker{w}
                        for (int j = 0; j < NJ; j++) {{
                            #pragma acc loop vector{v}
                            for (int i = 0; i < NI; i++) {{
                                {uv}
                                out[k] = input[k][j][i];
                            }}
                            int j2 = j; int i2 = 0;
                            {uw}
                        }}
                        int j3 = 0; int i3 = 0;
                        {ug}
                        {consume}
                    }}
                }}
                "#,
                g = red("gang"),
                w = red("worker"),
                v = red("vector"),
                uv = upd("vector"),
                uw = upd("worker").replace("[j][i]", "[j2][i2]"),
                ug = upd("gang").replace("[j][i]", "[j3][i3]"),
            );
            let p = analyze_src(&src)
                .unwrap_or_else(|d| panic!("{clause_loop}/{update_site}: {}", d.render(&src)));
            let mut spans = Vec::new();
            visit_loops(&p.regions[0].body, &mut |l| {
                for r in &l.reductions {
                    spans.push(r.span_levels.clone());
                }
            });
            assert_eq!(
                spans,
                vec![expected.clone()],
                "clause on {clause_loop}, update in {update_site}"
            );
        }
    }

    #[test]
    fn max_reduction_via_fmax() {
        let src = r#"
            int N; double err;
            double a[N]; double b[N];
            #pragma acc parallel copyin(a, b)
            {
                #pragma acc loop gang vector reduction(max:err)
                for (int i = 0; i < N; i++) {
                    err = fmax(err, fabs(a[i] - b[i]));
                }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let mut ops = Vec::new();
        visit_loops(&p.regions[0].body, &mut |l| {
            for r in &l.reductions {
                ops.push(r.op);
            }
        });
        assert_eq!(ops, vec![RedOp::Max]);
    }

    #[test]
    fn mismatched_update_operator_rejected() {
        let src = r#"
            int N; int s;
            int a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang reduction(+:s)
                for (int i = 0; i < N; i++) {
                    s *= a[i];
                }
            }
        "#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message.contains("clause declares"), "{}", err.message);
    }

    #[test]
    fn subtraction_update_rejected() {
        let src = r#"
            int N; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang reduction(+:s)
                for (int i = 0; i < N; i++) { s -= 1; }
            }
        "#;
        assert!(analyze_src(src).is_err());
    }

    #[test]
    fn nesting_order_enforced() {
        let src = r#"
            int N;
            float a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop vector
                for (int i = 0; i < N; i++) {
                    #pragma acc loop gang
                    for (int j = 0; j < N; j++) {
                        a[j] = 0.0;
                    }
                }
            }
        "#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message.contains("nested"), "{}", err.message);
    }

    #[test]
    fn implied_copy_binding_created() {
        let src = r#"
            int N;
            float a[N];
            #pragma acc parallel
            {
                #pragma acc loop gang
                for (int i = 0; i < N; i++) { a[i] = 1.0; }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let d = &p.regions[0].data;
        assert_eq!(d.len(), 1);
        assert!(d[0].implied);
        assert_eq!(d[0].dir, DataDir::Copy);
    }

    #[test]
    fn type_errors_detected() {
        // float loop bound
        assert!(analyze_src(
            "int N; float s;\n#pragma acc parallel\n{\n#pragma acc loop gang reduction(+:s)\nfor (int i = 0; i < 1.5; i++) { s += 1.0; } }"
        )
        .is_err());
        // modulo on float
        assert!(analyze_src(
            "int N; float s; float a[N];\n#pragma acc parallel copyin(a)\n{\n#pragma acc loop gang reduction(+:s)\nfor (int i = 0; i < N; i++) { s += a[i] % 2.0; } }"
        )
        .is_err());
        // wrong index count
        assert!(analyze_src(
            "int N; float s; float a[N][N];\n#pragma acc parallel copyin(a)\n{\n#pragma acc loop gang reduction(+:s)\nfor (int i = 0; i < N; i++) { s += a[i]; } }"
        )
        .is_err());
        // unknown function
        assert!(analyze_src(
            "int N; float s;\n#pragma acc parallel\n{\n#pragma acc loop gang reduction(+:s)\nfor (int i = 0; i < N; i++) { s += rand(); } }"
        )
        .is_err());
    }

    #[test]
    fn host_assigns_ordered() {
        let src = r#"
            int N = 4;
            int s;
            s = 0;
            int a[N];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang reduction(+:s)
                for (int i = 0; i < N; i++) { s += a[i]; }
            }
        "#;
        let p = analyze_src(src).unwrap();
        assert_eq!(p.host_assigns.len(), 2);
        assert_eq!(p.host_assigns[0].host, p.host_index("N").unwrap());
        assert_eq!(p.host_assigns[1].host, p.host_index("s").unwrap());
    }

    #[test]
    fn duplicate_reduction_clause_rejected() {
        let src = r#"
            int N; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang reduction(+:s)
                for (int i = 0; i < N; i++) {
                    #pragma acc loop vector reduction(+:s)
                    for (int j = 0; j < N; j++) { s += 1; }
                }
            }
        "#;
        let err = analyze_src(src).unwrap_err();
        assert!(
            err.message.contains("already has a reduction"),
            "{}",
            err.message
        );
    }

    #[test]
    fn reduction_on_parallel_construct_attaches_to_gang_loop() {
        let src = r#"
            int N; int s;
            #pragma acc parallel reduction(+:s)
            {
                #pragma acc loop gang
                for (int i = 0; i < N; i++) { s += 1; }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let mut found = Vec::new();
        visit_loops(&p.regions[0].body, &mut |l| {
            for r in &l.reductions {
                found.push((r.op, r.span_levels.clone()));
            }
        });
        assert_eq!(found, vec![(RedOp::Add, vec![Level::Gang])]);
    }

    #[test]
    fn downward_loop_canonicalized() {
        let src = r#"
            int N; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang reduction(+:s)
                for (int i = N; i > 0; i--) { s += i; }
            }
        "#;
        let p = analyze_src(src).unwrap();
        visit_loops(&p.regions[0].body, &mut |l| {
            assert_eq!(l.cmp, BinOpKind::Gt);
            assert_eq!(l.step.const_int(), Some(-1));
        });
    }

    #[test]
    fn seq_loop_reduction_has_empty_extra_span() {
        // reduction clause on a seq loop inside a gang loop: purely
        // sequential accumulation per thread.
        let src = r#"
            int N; int M;
            float A[N][M];
            float out[N];
            #pragma acc parallel copyin(A) copyout(out)
            {
                #pragma acc loop gang
                for (int i = 0; i < N; i++) {
                    float c = 0.0;
                    #pragma acc loop seq reduction(+:c)
                    for (int k = 0; k < M; k++) {
                        c += A[i][k];
                    }
                    out[i] = c;
                }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let mut spans = Vec::new();
        visit_loops(&p.regions[0].body, &mut |l| {
            for r in &l.reductions {
                spans.push(r.span_levels.clone());
            }
        });
        assert_eq!(spans, vec![Vec::<Level>::new()]);
    }
}

#[cfg(test)]
mod collapse_tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze_src(src: &str) -> Result<AnalyzedProgram, Diag> {
        analyze(&parse_program(src).unwrap())
    }

    #[test]
    fn collapse_fuses_rectangular_nest() {
        let src = r#"
            int NI; int NJ; int s;
            int a[NI][NJ];
            #pragma acc parallel copyin(a)
            {
                #pragma acc loop gang vector collapse(2) reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    for (int j = 0; j < NJ; j++) {
                        s += a[i][j];
                    }
                }
            }
        "#;
        let p = analyze_src(src).unwrap();
        let mut found = 0;
        visit_loops(&p.regions[0].body, &mut |l| {
            found += 1;
            assert_eq!(l.sched, vec![Level::Gang, Level::Vector]);
            assert_eq!(l.cmp, BinOpKind::Lt);
            assert_eq!(l.lower.const_int(), Some(0));
        });
        // The nest fused into exactly one loop.
        assert_eq!(found, 1);
    }

    #[test]
    fn collapse_requires_perfect_nest() {
        let src = r#"
            int NI; int NJ; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang collapse(2) reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    s += 1;
                    for (int j = 0; j < NJ; j++) { s += 1; }
                }
            }
        "#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message.contains("perfectly nested"), "{}", err.message);
    }

    #[test]
    fn collapse_rejects_non_rectangular() {
        let src = r#"
            int NI; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang collapse(2) reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    for (int j = 0; j < i; j++) { s += 1; }
                }
            }
        "#;
        let err = analyze_src(src).unwrap_err();
        assert!(err.message.contains("collapse"), "{}", err.message);
    }

    #[test]
    fn collapse_rejects_inner_directives_and_big_steps() {
        let src = r#"
            int NI; int NJ; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang collapse(2) reduction(+:s)
                for (int i = 0; i < NI; i++) {
                    #pragma acc loop vector
                    for (int j = 0; j < NJ; j++) { s += 1; }
                }
            }
        "#;
        assert!(analyze_src(src).unwrap_err().message.contains("directives"));
        let src = r#"
            int NI; int NJ; int s;
            #pragma acc parallel
            {
                #pragma acc loop gang collapse(2) reduction(+:s)
                for (int i = 0; i < NI; i += 2) {
                    for (int j = 0; j < NJ; j++) { s += 1; }
                }
            }
        "#;
        assert!(analyze_src(src)
            .unwrap_err()
            .message
            .contains("steps of +1 or -1"));
    }
}
