//! # uhacc — reproduction of "Reduction Operations in Parallel Loops for GPGPUs"
//!
//! A full-system reproduction of Xu, Tian, Yan, Chandrasekaran, Chapman
//! (PMAM/PPoPP 2014): the OpenUH OpenACC reduction implementation, built
//! as a Rust workspace on top of a deterministic SIMT GPU simulator.
//!
//! The pieces (re-exported here):
//!
//! - [`gpsim`] — the simulated GPU: warps, divergence, shared-memory bank
//!   conflicts, global-memory coalescing, block barriers, Kepler-class
//!   cost model.
//! - [`accparse`] — the mini-C + `#pragma acc` front end with reduction
//!   span auto-detection (§3.2.1).
//! - [`uhacc_core`] — the compiler: loop mapping (Fig. 3) and every
//!   reduction parallelization strategy of §3.1–§3.3, each alternative a
//!   selectable [`uhacc_core::CompilerOptions`] knob.
//! - [`accrt`] — the runtime: data environment, launches, second-pass
//!   reduction kernels, result folds.
//! - [`acc_baselines`] — CPU reference oracle + CAPS-like / PGI-like
//!   compiler personalities.
//! - [`acc_testsuite`] — the paper's reduction testsuite (Table 2 /
//!   Fig. 11).
//! - [`acc_apps`] — 2D heat equation, matrix multiply, Monte Carlo PI
//!   (Fig. 12).
//! - [`uhobs`] — dependency-free observability: span tracing with a
//!   virtual-clock mode, fixed-bucket metrics, Chrome-trace and
//!   Prometheus-text export (threaded through the CLI, the runtime, and
//!   the `uhaccd` daemon).
//!
//! ## Quickstart
//!
//! ```
//! use uhacc::prelude::*;
//!
//! let src = r#"
//!     int N; double s;
//!     double a[N];
//!     s = 0.0;
//!     #pragma acc parallel loop gang vector reduction(+:s) copyin(a)
//!     for (int i = 0; i < N; i++) { s += a[i]; }
//! "#;
//! let mut runner = AccRunner::new(src).unwrap();
//! runner.bind_int("N", 1000).unwrap();
//! runner.bind_array("a", HostBuffer::from_f64(&vec![0.5; 1000])).unwrap();
//! runner.run().unwrap();
//! assert_eq!(runner.scalar("s").unwrap().as_f64(), 500.0);
//! ```

pub mod driver;

pub use acc_apps as apps;
pub use acc_baselines as baselines;
pub use acc_testsuite as testsuite;
pub use accparse as parse;
pub use accrt as rt;
pub use gpsim as sim;
pub use uhacc_core as core;
pub use uhobs as obs;

/// The most common imports for driving OpenACC programs on the simulator.
pub mod prelude {
    pub use accrt::{AccError, AccRunner, HostBuffer};
    pub use gpsim::{Device, Value};
    pub use uhacc_core::{CompilerOptions, LaunchDims};
}
