//! `uhacc-cc` — compiler-explorer-style driver: compile an OpenACC source
//! file and print the generated kernels, launch plan and diagnostics.
//!
//! ```console
//! $ uhacc-cc examples/sum.c --dims 192,8,128 --emit kernel
//! $ echo '...' | uhacc-cc - --compiler pgi
//! ```

use std::io::Read;
use uhacc::baselines::Compiler;
use uhacc::core::flags::{
    host_threads_from_env, parse_count, parse_count_u32, parse_report_format, ReportFormat,
};
use uhacc::core::{CompilerOptions, LaunchDims};
use uhacc::driver::{self, EmitFlags, RunRequest};
use uhacc::parse as accparse;

/// Output format for `--profile`.
#[derive(Clone, Copy, PartialEq)]
enum ProfileMode {
    Text,
    Json,
    Trace,
}

/// Output format for `--fusion-plan`.
#[derive(Clone, Copy, PartialEq)]
enum FusionMode {
    Text,
    Json,
}

struct Args {
    input: String,
    dims: LaunchDims,
    compiler: Compiler,
    emit: EmitFlags,
    sanitize: bool,
    lint: bool,
    werror: bool,
    json: bool,
    profile: Option<ProfileMode>,
    fusion_plan: Option<FusionMode>,
    certify: Option<ReportFormat>,
    run: bool,
    n: u64,
    host_threads: u32,
    exec_tier: gpsim::ExecTier,
    /// With `--run`/`--profile`: write the unified Chrome/Perfetto trace
    /// (request spans + device tracks on one timebase) to this file.
    trace_out: Option<String>,
    /// `--emit` was given explicitly (analysis modes otherwise suppress
    /// the kernel/plan dump).
    explicit_emit: bool,
    /// `--dims` was given explicitly (`--certify` otherwise uses the
    /// small certification geometry instead of the paper's).
    explicit_dims: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: uhacc-cc <file.c | -> [options]\n\
         \n\
         options:\n\
           --dims G,W,V        launch geometry (default 192,8,128 — the paper's)\n\
           --compiler NAME     openuh | pgi | caps (default openuh)\n\
           --emit WHAT         hir | kernel | plan | all (default kernel,plan)\n\
           --sanitize          run the hazard-sanitizer detection matrix\n\
                               (no input file needed) and exit\n\
           --verify            statically verify every generated kernel\n\
                               (synccheck / racecheck / boundscheck);\n\
                               exit 1 if any error-level finding\n\
           --lint              run the source-level dataflow lints (missing\n\
                               reductions, clause placement, loop-carried\n\
                               dependences, data-clause checks) instead of\n\
                               compiling; exit 1 if any error-level finding\n\
           --werror            with --lint: treat warnings as errors\n\
           --json              with --lint: print diagnostics as JSON\n\
           --fusion-plan[=FMT] run the redflow fusion-legality analysis over\n\
                               the program's parallel regions and print the\n\
                               plan (regions, producer→consumer verdicts,\n\
                               fusable chains) instead of compiling; FMT is\n\
                               text (default) or json (stable,\n\
                               machine-readable)\n\
           --certify[=FMT]     translation validation (redcert): symbolically\n\
                               execute every generated kernel plan and prove\n\
                               it computes the source region's reductions and\n\
                               stores over the exact iteration space (modulo\n\
                               reassociation for floating-point folds); FMT\n\
                               is text (default) or json (stable, the same\n\
                               body the uhaccd /certify endpoint returns);\n\
                               exit 1 if any region is refuted\n\
           --run               compile, auto-bind deterministic inputs, run\n\
                               on the simulator, and print scalar results +\n\
                               device statistics as stable JSON (the same\n\
                               body the uhaccd /run endpoint returns)\n\
           --profile[=FMT]     compile, auto-bind deterministic inputs, run\n\
                               on the simulator, and print a profile with\n\
                               per-source-line and per-pc cycle/stall\n\
                               attribution; FMT is text (default), json\n\
                               (stable machine-readable), or trace (a\n\
                               Chrome/Perfetto timeline)\n\
           --n N               with --run/--profile: problem size bound to\n\
                               every integer host scalar (default 65536)\n\
           --trace-out FILE    with --run/--profile: write the unified\n\
                               Chrome/Perfetto trace (execution spans plus,\n\
                               under --profile, the device stream/SM tracks\n\
                               on the same timebase) to FILE; stdout output\n\
                               is unchanged. UHOBS_VIRTUAL_CLOCK=1 makes the\n\
                               trace byte-stable\n\
           --host-threads N    simulator host worker threads for --sanitize,\n\
                               --run and --profile (0 = auto, 1 = sequential;\n\
                               results are bit-identical at any setting)\n\
           --exec-tier T       simulator execution tier for --sanitize, --run\n\
                               and --profile: auto (default), interpret, or\n\
                               compiled; results are bit-identical at any\n\
                               setting\n\
           -h, --help          this message\n\
         \n\
         --verify, --lint, --fusion-plan and --certify compose: one invocation\n\
         renders every requested report and exits with the worst code."
    );
    std::process::exit(2);
}

/// Reject a malformed option value: rendered diagnostic, exit code 2
/// (distinct from exit 1 = the input program failed).
fn flag_err(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    // A garbage UHACC_HOST_THREADS would otherwise be silently treated
    // as "auto" deep in the simulator; surface it here instead.
    if let Err(e) = host_threads_from_env() {
        flag_err(e);
    }
    let mut args = Args {
        input: String::new(),
        dims: LaunchDims::paper(),
        compiler: Compiler::OpenUH,
        emit: EmitFlags::default(),
        sanitize: false,
        lint: false,
        werror: false,
        json: false,
        profile: None,
        fusion_plan: None,
        certify: None,
        run: false,
        n: 65536,
        host_threads: 0,
        exec_tier: gpsim::ExecTier::Auto,
        trace_out: None,
        explicit_emit: false,
        explicit_dims: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut have_input = false;
    let need_val = |argv: &[String], i: usize, flag: &str| -> String {
        argv.get(i)
            .cloned()
            .unwrap_or_else(|| flag_err(format!("{flag} requires a value")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => usage(),
            "--dims" => {
                i += 1;
                let v = need_val(&argv, i, "--dims");
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    flag_err(format!(
                        "invalid value for --dims: expected G,W,V (three comma-separated \
                         non-negative integers), got `{v}`"
                    ));
                }
                let mut nums = [0u32; 3];
                for (k, p) in parts.iter().enumerate() {
                    nums[k] = parse_count_u32("--dims", p).unwrap_or_else(|e| flag_err(e));
                }
                args.dims = LaunchDims {
                    gangs: nums[0],
                    workers: nums[1],
                    vector: nums[2],
                };
                args.explicit_dims = true;
            }
            "--compiler" => {
                i += 1;
                args.compiler = match argv.get(i).map(|s| s.as_str()) {
                    Some("openuh") => Compiler::OpenUH,
                    Some("pgi") => Compiler::PgiLike,
                    Some("caps") => Compiler::CapsLike,
                    _ => usage(),
                };
            }
            "--emit" => {
                i += 1;
                args.explicit_emit = true;
                args.emit = EmitFlags {
                    hir: false,
                    kernel: false,
                    plan: false,
                    verify: args.emit.verify,
                };
                for w in argv.get(i).unwrap_or_else(|| usage()).split(',') {
                    match w {
                        "hir" => args.emit.hir = true,
                        "kernel" => args.emit.kernel = true,
                        "plan" => args.emit.plan = true,
                        "all" => {
                            args.emit.hir = true;
                            args.emit.kernel = true;
                            args.emit.plan = true;
                        }
                        _ => usage(),
                    }
                }
            }
            "--sanitize" => args.sanitize = true,
            "--verify" => args.emit.verify = true,
            "--run" => args.run = true,
            "--profile" => args.profile = Some(ProfileMode::Text),
            s if s.starts_with("--profile=") => {
                args.profile = Some(match &s["--profile=".len()..] {
                    "text" => ProfileMode::Text,
                    "json" => ProfileMode::Json,
                    "trace" => ProfileMode::Trace,
                    _ => usage(),
                });
            }
            "--certify" => args.certify = Some(ReportFormat::Text),
            s if s.starts_with("--certify=") => {
                args.certify = Some(
                    parse_report_format("--certify", &s["--certify=".len()..])
                        .unwrap_or_else(|e| flag_err(e)),
                );
            }
            "--fusion-plan" => args.fusion_plan = Some(FusionMode::Text),
            s if s.starts_with("--fusion-plan=") => {
                args.fusion_plan = Some(match &s["--fusion-plan=".len()..] {
                    "text" => FusionMode::Text,
                    "json" => FusionMode::Json,
                    _ => usage(),
                });
            }
            "--n" => {
                i += 1;
                let v = need_val(&argv, i, "--n");
                args.n = parse_count("--n", &v).unwrap_or_else(|e| flag_err(e));
            }
            "--trace-out" => {
                i += 1;
                args.trace_out = Some(need_val(&argv, i, "--trace-out"));
            }
            s if s.starts_with("--trace-out=") => {
                args.trace_out = Some(s["--trace-out=".len()..].to_string());
            }
            "--lint" => args.lint = true,
            "--werror" => args.werror = true,
            "--json" => args.json = true,
            "--host-threads" => {
                i += 1;
                let v = need_val(&argv, i, "--host-threads");
                args.host_threads =
                    parse_count_u32("--host-threads", &v).unwrap_or_else(|e| flag_err(e));
            }
            "--exec-tier" => {
                i += 1;
                let v = need_val(&argv, i, "--exec-tier");
                args.exec_tier = v.parse().unwrap_or_else(|e| flag_err(e));
            }
            f if !f.starts_with('-') || f == "-" => {
                if have_input {
                    usage();
                }
                args.input = f.to_string();
                have_input = true;
            }
            _ => usage(),
        }
        i += 1;
    }
    if !have_input && !args.sanitize {
        usage();
    }
    if (args.werror || args.json) && !args.lint {
        usage();
    }
    if args.trace_out.is_some() && !(args.run || args.profile.is_some()) {
        flag_err("--trace-out only makes sense with --run or --profile".into());
    }
    args
}

/// Run the source-level lints. Returns the exit code this report earns:
/// 0 = clean (or warnings without `--werror`), 1 = error-level findings
/// (or a parse/sema failure).
fn lint_code(src: &str, werror: bool, json: bool) -> i32 {
    use accparse::diag::{lint_report_json, render_all, Severity};
    let mut diags: Vec<accparse::Diag> = match accparse::lint_source(src) {
        Ok((_, findings)) => findings.into_iter().map(|f| f.diag).collect(),
        Err(d) => {
            if json {
                println!("{}", lint_report_json(&[d], src));
            } else {
                eprintln!("{}", d.render(src));
            }
            return 1;
        }
    };
    if werror {
        for d in &mut diags {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }
    if json {
        println!("{}", lint_report_json(&diags, src));
    } else if diags.is_empty() {
        println!("uhacc-cc: lint clean");
    } else {
        eprint!("{}", render_all(&diags, src));
    }
    let failed = diags.iter().any(|d| d.severity == Severity::Error);
    if failed {
        1
    } else {
        0
    }
}

fn run_request(args: &Args) -> RunRequest {
    RunRequest {
        opts: args.compiler.base_options(),
        dims: args.dims,
        n: args.n,
        host_threads: args.host_threads,
        exec_tier: args.exec_tier,
    }
}

/// Build the CLI's tracer on the environment-selected clock
/// (`UHOBS_VIRTUAL_CLOCK=1` gives a deterministic virtual timebase).
fn cli_tracer() -> std::sync::Arc<uhacc::obs::Tracer> {
    let clock = std::sync::Arc::new(uhacc::obs::Clock::from_env());
    std::sync::Arc::new(uhacc::obs::Tracer::new(clock, "uhacc-cc"))
}

/// Write the tracer's unified Chrome trace to `path`.
fn write_trace(path: &str, tracer: &uhacc::obs::Tracer) {
    if let Err(e) = std::fs::write(path, format!("{}\n", tracer.to_chrome_trace())) {
        eprintln!("error: cannot write `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("uhacc-cc: wrote {path}");
}

/// Execute a fresh session for `src`, optionally tracing it. The traced
/// and untraced paths produce byte-identical stdout; tracing only adds
/// the `--trace-out` file.
fn execute_cli(src: &str, args: &Args, profile: bool) -> uhacc::rt::AccRunner {
    use uhacc::rt::AccRunner;
    use uhacc::sim::Device;

    let req = run_request(args);
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let mut r = match AccRunner::with_options(src, req.opts.clone(), req.dims, Device::default()) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    r.set_source(src);
    let result = match &args.trace_out {
        Some(path) => {
            let tracer = cli_tracer();
            let trace_id = tracer.mint_trace_id();
            tracer.set_track_name(
                trace_id,
                &format!(
                    "uhacc-cc {}{}",
                    args.input,
                    if profile { " --profile" } else { " --run" }
                ),
            );
            let result = driver::execute_traced(&mut r, &req, profile, &tracer, trace_id, None);
            write_trace(path, &tracer);
            result
        }
        None => driver::execute(&mut r, &req, profile),
    };
    if let Err(e) = result {
        fail(&e);
    }
    r
}

/// Compile, auto-bind deterministic inputs, run every region on the
/// simulator, and print the requested profile export (see
/// [`uhacc::driver`] — the daemon's `/profile` endpoint shares this
/// path, so outputs agree byte for byte).
fn run_profile(src: &str, args: &Args, mode: ProfileMode) -> ! {
    let r = execute_cli(src, args, true);
    match mode {
        ProfileMode::Text => print!("{}", r.profile_report()),
        ProfileMode::Json => println!("{}", r.profile_json()),
        ProfileMode::Trace => println!("{}", r.profile_chrome_trace()),
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.sanitize {
        let mut cfg = uhacc::testsuite::SuiteConfig::quick();
        cfg.host_threads = args.host_threads;
        cfg.exec_tier = args.exec_tier;
        let rows = uhacc::testsuite::run_sanitize_matrix(&cfg);
        print!("{}", uhacc::testsuite::format_matrix(&rows));
        std::process::exit(if rows.iter().all(|r| r.ok()) { 0 } else { 1 });
    }
    let src = if args.input == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("error: cannot read stdin: {e}");
            std::process::exit(1);
        }
        s
    } else {
        match std::fs::read_to_string(&args.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", args.input);
                std::process::exit(1);
            }
        }
    };

    if args.run {
        let r = execute_cli(&src, &args, false);
        println!("{}", driver::results_json(&r));
        std::process::exit(0);
    }

    if let Some(mode) = args.profile {
        run_profile(&src, &args, mode);
    }

    let hir = match accparse::compile(&src) {
        Ok(h) => h,
        Err(d) => {
            // A broken source fails every requested mode the same way;
            // render the diagnostic once (as JSON when `--lint --json`
            // asked for machine-readable findings).
            if args.lint && args.json {
                println!("{}", accparse::diag::lint_report_json(&[d], &src));
            } else {
                eprintln!("{}", d.render(&src));
            }
            std::process::exit(1);
        }
    };

    // Analysis modes compose: every requested report renders, the worst
    // exit code wins.
    let mut worst = 0i32;

    if args.lint {
        worst = worst.max(lint_code(&src, args.werror, args.json));
    }

    if let Some(mode) = args.fusion_plan {
        match mode {
            FusionMode::Text => print!("{}", driver::analyze_text(&hir)),
            FusionMode::Json => println!("{}", driver::analyze_json(&hir)),
        }
    }

    if let Some(fmt) = args.certify {
        let req = RunRequest {
            opts: args.compiler.base_options(),
            dims: if args.explicit_dims {
                args.dims
            } else {
                driver::certify_dims()
            },
            n: args.n,
            host_threads: args.host_threads,
            exec_tier: args.exec_tier,
        };
        match driver::certify_reports(&src, &req, |r| {
            r.set_source(&src);
        }) {
            Ok(reports) => {
                match fmt {
                    ReportFormat::Text => print!("{}", driver::cert_reports_text(&reports)),
                    ReportFormat::Json => println!("{}", driver::cert_reports_json(&reports)),
                }
                if reports
                    .iter()
                    .any(|r| matches!(r.verdict, gpsim::CertVerdict::Refuted { .. }))
                {
                    worst = worst.max(1);
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                worst = worst.max(1);
            }
        }
    }

    let analysis = args.lint || args.fusion_plan.is_some() || args.certify.is_some();
    if !analysis || args.explicit_emit || args.emit.verify {
        // Under analysis modes, only an explicit `--emit` re-enables the
        // kernel/plan dump; `--verify` alone adds just its section.
        let emit = if analysis && !args.explicit_emit {
            EmitFlags {
                hir: false,
                kernel: false,
                plan: false,
                verify: args.emit.verify,
            }
        } else {
            args.emit
        };
        let opts: CompilerOptions = args.compiler.base_options();
        let compile = driver::direct_compiler(&hir, &opts);
        match driver::compile_text(&hir, args.dims, args.compiler.name(), emit, &compile) {
            Ok(out) => {
                print!("{}", out.text);
                if out.verify_errors > 0 {
                    eprintln!(
                        "uhacc-cc: {} static verification error(s)",
                        out.verify_errors
                    );
                    worst = worst.max(1);
                }
            }
            Err((region, d)) => {
                eprintln!("region {region}: {}", d.render(&src));
                worst = worst.max(1);
            }
        }
    }

    std::process::exit(worst);
}
