//! `uhacc-cc` — compiler-explorer-style driver: compile an OpenACC source
//! file and print the generated kernels, launch plan and diagnostics.
//!
//! ```console
//! $ uhacc-cc examples/sum.c --dims 192,8,128 --emit kernel
//! $ echo '...' | uhacc-cc - --compiler pgi
//! ```

use std::io::Read;
use uhacc::baselines::Compiler;
use uhacc::core::{compile_region, CompilerOptions, LaunchDims};
use uhacc::parse as accparse;
use uhacc::sim::{verify_kernel, LaunchConfig, VerifyConfig};

/// Output format for `--profile`.
#[derive(Clone, Copy, PartialEq)]
enum ProfileMode {
    Text,
    Json,
    Trace,
}

struct Args {
    input: String,
    dims: LaunchDims,
    compiler: Compiler,
    emit_hir: bool,
    emit_kernel: bool,
    emit_plan: bool,
    sanitize: bool,
    verify: bool,
    lint: bool,
    werror: bool,
    json: bool,
    profile: Option<ProfileMode>,
    n: u64,
    host_threads: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: uhacc-cc <file.c | -> [options]\n\
         \n\
         options:\n\
           --dims G,W,V        launch geometry (default 192,8,128 — the paper's)\n\
           --compiler NAME     openuh | pgi | caps (default openuh)\n\
           --emit WHAT         hir | kernel | plan | all (default kernel,plan)\n\
           --sanitize          run the hazard-sanitizer detection matrix\n\
                               (no input file needed) and exit\n\
           --verify            statically verify every generated kernel\n\
                               (synccheck / racecheck / boundscheck);\n\
                               exit 1 if any error-level finding\n\
           --lint              run the source-level dataflow lints (missing\n\
                               reductions, clause placement, loop-carried\n\
                               dependences, data-clause checks) instead of\n\
                               compiling; exit 1 if any error-level finding\n\
           --werror            with --lint: treat warnings as errors\n\
           --json              with --lint: print diagnostics as JSON\n\
           --profile[=FMT]     compile, auto-bind deterministic inputs, run\n\
                               on the simulator, and print a profile with\n\
                               per-source-line and per-pc cycle/stall\n\
                               attribution; FMT is text (default), json\n\
                               (stable machine-readable), or trace (a\n\
                               Chrome/Perfetto timeline)\n\
           --n N               with --profile: problem size bound to every\n\
                               integer host scalar (default 65536)\n\
           --host-threads N    simulator host worker threads for --sanitize\n\
                               and --profile (0 = auto, 1 = sequential;\n\
                               results are bit-identical at any setting)\n\
           -h, --help          this message"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        dims: LaunchDims::paper(),
        compiler: Compiler::OpenUH,
        emit_hir: false,
        emit_kernel: true,
        emit_plan: true,
        sanitize: false,
        verify: false,
        lint: false,
        werror: false,
        json: false,
        profile: None,
        n: 65536,
        host_threads: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut have_input = false;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => usage(),
            "--dims" => {
                i += 1;
                let parts: Vec<u32> = argv
                    .get(i)
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .filter_map(|p| p.parse().ok())
                    .collect();
                if parts.len() != 3 {
                    usage();
                }
                args.dims = LaunchDims {
                    gangs: parts[0],
                    workers: parts[1],
                    vector: parts[2],
                };
            }
            "--compiler" => {
                i += 1;
                args.compiler = match argv.get(i).map(|s| s.as_str()) {
                    Some("openuh") => Compiler::OpenUH,
                    Some("pgi") => Compiler::PgiLike,
                    Some("caps") => Compiler::CapsLike,
                    _ => usage(),
                };
            }
            "--emit" => {
                i += 1;
                args.emit_hir = false;
                args.emit_kernel = false;
                args.emit_plan = false;
                for w in argv.get(i).unwrap_or_else(|| usage()).split(',') {
                    match w {
                        "hir" => args.emit_hir = true,
                        "kernel" => args.emit_kernel = true,
                        "plan" => args.emit_plan = true,
                        "all" => {
                            args.emit_hir = true;
                            args.emit_kernel = true;
                            args.emit_plan = true;
                        }
                        _ => usage(),
                    }
                }
            }
            "--sanitize" => args.sanitize = true,
            "--verify" => args.verify = true,
            "--profile" => args.profile = Some(ProfileMode::Text),
            s if s.starts_with("--profile=") => {
                args.profile = Some(match &s["--profile=".len()..] {
                    "text" => ProfileMode::Text,
                    "json" => ProfileMode::Json,
                    "trace" => ProfileMode::Trace,
                    _ => usage(),
                });
            }
            "--n" => {
                i += 1;
                args.n = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--lint" => args.lint = true,
            "--werror" => args.werror = true,
            "--json" => args.json = true,
            "--host-threads" => {
                i += 1;
                args.host_threads = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            f if !f.starts_with('-') || f == "-" => {
                if have_input {
                    usage();
                }
                args.input = f.to_string();
                have_input = true;
            }
            _ => usage(),
        }
        i += 1;
    }
    if !have_input && !args.sanitize {
        usage();
    }
    if (args.werror || args.json) && !args.lint {
        usage();
    }
    args
}

/// Run the source-level lints and exit. Exit codes: 0 = clean (or
/// warnings without `--werror`), 1 = error-level findings (or a
/// parse/sema failure).
fn run_lint(src: &str, werror: bool, json: bool) -> ! {
    use accparse::diag::{diags_to_json, render_all, Severity};
    let mut diags: Vec<accparse::Diag> = match accparse::lint_source(src) {
        Ok((_, findings)) => findings.into_iter().map(|f| f.diag).collect(),
        Err(d) => {
            if json {
                println!("{}", diags_to_json(&[d], src));
            } else {
                eprintln!("{}", d.render(src));
            }
            std::process::exit(1);
        }
    };
    if werror {
        for d in &mut diags {
            if d.severity == Severity::Warning {
                d.severity = Severity::Error;
            }
        }
    }
    if json {
        println!("{}", diags_to_json(&diags, src));
    } else if diags.is_empty() {
        println!("uhacc-cc: lint clean");
    } else {
        eprint!("{}", render_all(&diags, src));
    }
    let failed = diags.iter().any(|d| d.severity == Severity::Error);
    std::process::exit(if failed { 1 } else { 0 });
}

/// Compile, auto-bind deterministic inputs, run every region on the
/// simulator, and print the requested profile export. Every integer host
/// scalar is bound to `--n`, floats to 0, and arrays to a fixed pattern,
/// so the profile is reproducible run to run.
fn run_profile(src: &str, args: &Args, mode: ProfileMode) -> ! {
    use uhacc::parse::ast::CType;
    use uhacc::rt::{eval_host_extent, AccRunner, HostBuffer};
    use uhacc::sim::{Device, Value};

    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let opts: CompilerOptions = args.compiler.base_options();
    let mut r = match AccRunner::with_options(src, opts, args.dims, Device::default()) {
        Ok(r) => r,
        Err(e) => fail(&e),
    };
    r.set_host_threads(args.host_threads);
    r.profile(true);
    let hosts: Vec<(String, CType)> = r
        .program()
        .hosts
        .iter()
        .map(|h| (h.name.clone(), h.ty))
        .collect();
    for (name, ty) in &hosts {
        let res = match ty {
            CType::Int | CType::Long => r.bind_int(name, args.n as i64),
            CType::Float | CType::Double => r.bind_float(name, 0.0),
        };
        if let Err(e) = res {
            fail(&e);
        }
    }
    if let Err(e) = r.run_host_assigns() {
        fail(&e);
    }
    let scalars: Vec<Value> = hosts.iter().map(|(n, _)| r.scalar(n).unwrap()).collect();
    let arrays = r.program().arrays.clone();
    for a in &arrays {
        let mut elems = 1u64;
        for d in &a.dims {
            match eval_host_extent(d, &scalars, &format!("dimension of `{}`", a.name)) {
                Ok(v) => elems *= v,
                Err(e) => fail(&e),
            }
        }
        let mut buf = HostBuffer::new(a.ty, elems as usize);
        for i in 0..elems as usize {
            let k = (i as i64 * 7 + 3) % 101 - 50;
            let v = match a.ty {
                CType::Int | CType::Long => Value::I64(k),
                CType::Float | CType::Double => Value::F64(k as f64 / 101.0),
            };
            buf.set(i, v);
        }
        if let Err(e) = r.bind_array(&a.name, buf) {
            fail(&e);
        }
    }
    if let Err(e) = r.run() {
        fail(&e);
    }
    match mode {
        ProfileMode::Text => print!("{}", r.profile_report()),
        ProfileMode::Json => println!("{}", r.profile_json()),
        ProfileMode::Trace => println!("{}", r.profile_chrome_trace()),
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.sanitize {
        let mut cfg = uhacc::testsuite::SuiteConfig::quick();
        cfg.host_threads = args.host_threads;
        let rows = uhacc::testsuite::run_sanitize_matrix(&cfg);
        print!("{}", uhacc::testsuite::format_matrix(&rows));
        std::process::exit(if rows.iter().all(|r| r.ok()) { 0 } else { 1 });
    }
    let src = if args.input == "-" {
        let mut s = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut s) {
            eprintln!("error: cannot read stdin: {e}");
            std::process::exit(1);
        }
        s
    } else {
        match std::fs::read_to_string(&args.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{}`: {e}", args.input);
                std::process::exit(1);
            }
        }
    };

    if args.lint {
        run_lint(&src, args.werror, args.json);
    }

    if let Some(mode) = args.profile {
        run_profile(&src, &args, mode);
    }

    let hir = match accparse::compile(&src) {
        Ok(h) => h,
        Err(d) => {
            eprintln!("{}", d.render(&src));
            std::process::exit(1);
        }
    };

    println!(
        "// uhacc-cc: {} region(s), compiler = {}, dims = {}x{}x{}",
        hir.regions.len(),
        args.compiler.name(),
        args.dims.gangs,
        args.dims.workers,
        args.dims.vector
    );
    if args.emit_hir {
        println!("\n// ---- HIR ----");
        println!(
            "// hosts : {:?}",
            hir.hosts.iter().map(|h| &h.name).collect::<Vec<_>>()
        );
        println!(
            "// arrays: {:?}",
            hir.arrays.iter().map(|a| &a.name).collect::<Vec<_>>()
        );
        for (i, r) in hir.regions.iter().enumerate() {
            println!(
                "// region {i}: {} locals, {} data bindings",
                r.locals.len(),
                r.data.len()
            );
            accparse::hir::visit_loops(&r.body, &mut |l| {
                println!(
                    "//   loop local#{} sched {:?} reductions {:?}",
                    l.var,
                    l.sched,
                    l.reductions
                        .iter()
                        .map(|rd| format!("{}:{:?}", rd.op.clause_token(), rd.span_levels))
                        .collect::<Vec<_>>()
                );
            });
        }
    }

    let opts: CompilerOptions = args.compiler.base_options();
    let mut verify_errors = 0u64;
    for region in 0..hir.regions.len() {
        match compile_region(&hir, region, args.dims, &opts) {
            Ok(c) => {
                if args.emit_plan {
                    println!("\n// ---- region {region} plan ----");
                    println!("// params   : {:?}", c.params);
                    println!("// buffers  : {:?}", c.buffers);
                    println!("// finalize : {} pass(es)", c.finalize.len());
                    println!("// results  : {} host fold(s)", c.results.len());
                    println!("// mailbox  : {:?}", c.mailbox);
                    println!(
                        "// shared   : {} bytes/block, {} registers/thread, {} instructions",
                        c.main.shared_bytes,
                        c.main.num_regs,
                        c.main.insts.len()
                    );
                }
                if args.emit_kernel {
                    println!("\n{}", c.main.disasm());
                    for f in &c.finalize {
                        println!("{}", f.kernel.disasm());
                    }
                }
                if args.verify {
                    let vc = VerifyConfig::default();
                    let main_cfg =
                        LaunchConfig::gwv(args.dims.gangs, args.dims.workers, args.dims.vector);
                    println!("\n// ---- region {region} static verification ----");
                    let mut reports = vec![verify_kernel(&c.main, main_cfg, &vc)];
                    for f in &c.finalize {
                        reports.push(verify_kernel(
                            &f.kernel,
                            LaunchConfig::d1(1, f.threads),
                            &vc,
                        ));
                    }
                    for r in &reports {
                        print!("{r}");
                        verify_errors += r.errors();
                    }
                }
            }
            Err(d) => {
                eprintln!("region {region}: {}", d.render(&src));
                std::process::exit(1);
            }
        }
    }
    if verify_errors > 0 {
        eprintln!("uhacc-cc: {verify_errors} static verification error(s)");
        std::process::exit(1);
    }
}
