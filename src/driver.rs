//! Shared single-shot drivers: the *one* definition of what compiling,
//! running, verifying, and profiling a source produces as text.
//!
//! Both surfaces — the `uhacc-cc` CLI and the `uhaccd` service endpoints
//! — call these functions, so a daemon response is byte-identical to the
//! corresponding single-shot CLI invocation by construction, not by
//! parallel reimplementation. Keep every `format!` here; if an endpoint
//! ever needs a different shape, add a new function rather than forking
//! the string-building inline.

use accparse::diag::Diag;
use accparse::hir::AnalyzedProgram;
use accrt::{AccError, AccRunner};
use gpsim::{verify_kernel, Device, LaunchConfig, VerifyConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use uhacc_core::{CompiledRegion, CompilerOptions, LaunchDims};

/// Which sections [`compile_text`] renders.
#[derive(Debug, Clone, Copy)]
pub struct EmitFlags {
    pub hir: bool,
    pub kernel: bool,
    pub plan: bool,
    pub verify: bool,
}

impl Default for EmitFlags {
    fn default() -> Self {
        EmitFlags {
            hir: false,
            kernel: true,
            plan: true,
            verify: false,
        }
    }
}

/// Result of [`compile_text`]: the rendered text plus the error-level
/// static-verification finding count (nonzero => CLI exits 1).
pub struct CompileOutput {
    pub text: String,
    pub verify_errors: u64,
    /// The compiled artifacts, for callers (the daemon) that want to
    /// share them onward.
    pub regions: Vec<Arc<CompiledRegion>>,
}

/// Pluggable region compiler for [`compile_text`]: given a region index
/// and dims, produce the artifact. The CLI compiles directly; the daemon
/// passes a closure that consults its content-addressed cache first.
pub type RegionCompiler<'c> = dyn Fn(usize, LaunchDims) -> Result<Arc<CompiledRegion>, Diag> + 'c;

/// Render the compile products of every region — the exact text
/// `uhacc-cc` prints for `--emit`/`--verify`. Errors carry the region
/// index so the CLI can reproduce its `region N: <diag>` prefix.
pub fn compile_text(
    hir: &AnalyzedProgram,
    dims: LaunchDims,
    compiler_name: &str,
    emit: EmitFlags,
    compile: &RegionCompiler<'_>,
) -> Result<CompileOutput, (usize, Diag)> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// uhacc-cc: {} region(s), compiler = {}, dims = {}x{}x{}",
        hir.regions.len(),
        compiler_name,
        dims.gangs,
        dims.workers,
        dims.vector
    );
    if emit.hir {
        let _ = writeln!(out, "\n// ---- HIR ----");
        let _ = writeln!(
            out,
            "// hosts : {:?}",
            hir.hosts.iter().map(|h| &h.name).collect::<Vec<_>>()
        );
        let _ = writeln!(
            out,
            "// arrays: {:?}",
            hir.arrays.iter().map(|a| &a.name).collect::<Vec<_>>()
        );
        for (i, r) in hir.regions.iter().enumerate() {
            let _ = writeln!(
                out,
                "// region {i}: {} locals, {} data bindings",
                r.locals.len(),
                r.data.len()
            );
            accparse::hir::visit_loops(&r.body, &mut |l| {
                let _ = writeln!(
                    out,
                    "//   loop local#{} sched {:?} reductions {:?}",
                    l.var,
                    l.sched,
                    l.reductions
                        .iter()
                        .map(|rd| format!("{}:{:?}", rd.op.clause_token(), rd.span_levels))
                        .collect::<Vec<_>>()
                );
            });
        }
    }

    let mut verify_errors = 0u64;
    let mut regions = Vec::new();
    for region in 0..hir.regions.len() {
        let c = compile(region, dims).map_err(|d| (region, d))?;
        if emit.plan {
            let _ = writeln!(out, "\n// ---- region {region} plan ----");
            let _ = writeln!(out, "// params   : {:?}", c.params);
            let _ = writeln!(out, "// buffers  : {:?}", c.buffers);
            let _ = writeln!(out, "// finalize : {} pass(es)", c.finalize.len());
            let _ = writeln!(out, "// results  : {} host fold(s)", c.results.len());
            let _ = writeln!(out, "// mailbox  : {:?}", c.mailbox);
            let _ = writeln!(
                out,
                "// shared   : {} bytes/block, {} registers/thread, {} instructions",
                c.main.shared_bytes,
                c.main.num_regs,
                c.main.insts.len()
            );
        }
        if emit.kernel {
            let _ = writeln!(out, "\n{}", c.main.disasm());
            for f in &c.finalize {
                let _ = writeln!(out, "{}", f.kernel.disasm());
            }
        }
        if emit.verify {
            let vc = VerifyConfig::default();
            let main_cfg = LaunchConfig::gwv(dims.gangs, dims.workers, dims.vector);
            let _ = writeln!(out, "\n// ---- region {region} static verification ----");
            let mut reports = vec![verify_kernel(&c.main, main_cfg, &vc)];
            for f in &c.finalize {
                reports.push(verify_kernel(
                    &f.kernel,
                    LaunchConfig::d1(1, f.threads),
                    &vc,
                ));
            }
            for r in &reports {
                let _ = write!(out, "{r}");
                verify_errors += r.errors();
            }
        }
        regions.push(c);
    }
    Ok(CompileOutput {
        text: out,
        verify_errors,
        regions,
    })
}

/// A [`RegionCompiler`] that compiles directly (no shared cache) — what
/// the CLI uses.
pub fn direct_compiler<'c>(
    hir: &'c AnalyzedProgram,
    opts: &'c CompilerOptions,
) -> impl Fn(usize, LaunchDims) -> Result<Arc<CompiledRegion>, Diag> + 'c {
    move |region, dims| uhacc_core::compile_region(hir, region, dims, opts).map(Arc::new)
}

/// Everything a deterministic single-shot execution needs.
#[derive(Debug, Clone)]
pub struct RunRequest {
    pub opts: CompilerOptions,
    pub dims: LaunchDims,
    /// Problem size bound to every integer host scalar.
    pub n: u64,
    /// Simulator host worker threads (0 = auto; results identical at any
    /// setting).
    pub host_threads: u32,
    /// Simulator execution tier (results identical at any setting).
    pub exec_tier: gpsim::ExecTier,
}

impl Default for RunRequest {
    fn default() -> Self {
        RunRequest {
            opts: CompilerOptions::openuh(),
            dims: LaunchDims::paper(),
            n: 65536,
            host_threads: 0,
            exec_tier: gpsim::ExecTier::Auto,
        }
    }
}

/// Execute a prepared session under `req`: thread setting, optional
/// profiler, deterministic input binding, full run. Both the CLI (fresh
/// session) and the daemon (session built over cached artifacts via
/// [`AccRunner::from_shared`]) funnel through this, so execution is
/// identical regardless of how the session was constructed.
pub fn execute(r: &mut AccRunner, req: &RunRequest, profile: bool) -> Result<(), AccError> {
    r.set_host_threads(req.host_threads);
    r.set_exec_tier(req.exec_tier);
    if profile {
        r.profile(true);
    }
    r.bind_deterministic_inputs(req.n)?;
    r.run()
}

/// [`execute`] with the observability hook attached: the runtime records
/// per-region phase spans (codegen/h2d/launch/d2h) under `trace_id`, an
/// enclosing `exec` span brackets the whole run, and — when `profile` is
/// set — the device's modelled-cycle timeline is spliced into the tracer
/// as per-request stream/SM tracks anchored at the `exec` span's start,
/// so daemon request spans and uhprof device tracks land in one Perfetto
/// view on a shared timebase. Output bytes (results/profile JSON) are
/// identical to an untraced [`execute`]: observation never feeds back
/// into execution.
pub fn execute_traced(
    r: &mut AccRunner,
    req: &RunRequest,
    profile: bool,
    tracer: &Arc<uhobs::Tracer>,
    trace_id: u64,
    compile_hist: Option<uhobs::Histogram>,
) -> Result<(), AccError> {
    r.set_obs(accrt::RunnerObs {
        tracer: Arc::clone(tracer),
        trace_id,
        compile_hist,
    });
    let t_exec = tracer.now_us();
    let result = execute(r, req, profile);
    let t_end = tracer.now_us();
    tracer.record(trace_id, "exec", t_exec, t_end, &[]);
    if profile && result.is_ok() {
        let pid_base =
            uhobs::trace::DEVICE_PID_BASE.wrapping_add((trace_id as u32).wrapping_mul(2));
        let events =
            r.device()
                .profile()
                .chrome_trace_events(t_exec, pid_base, &format!("req {trace_id} "));
        tracer.record_device_events(events);
    }
    result
}

/// Build a session for `req`, bind the deterministic inputs, and run the
/// whole program. The `session` hook lets callers (the daemon) attach a
/// shared program/artifact cache before anything executes.
fn run_session(
    src: &str,
    req: &RunRequest,
    session: impl FnOnce(&mut AccRunner),
    profile: bool,
) -> Result<AccRunner, AccError> {
    let mut r = AccRunner::with_options(src, req.opts.clone(), req.dims, Device::default())?;
    session(&mut r);
    execute(&mut r, req, profile)?;
    Ok(r)
}

/// Render a finished session's scalar results and device statistics as
/// stable JSON — the `uhacc-cc --run` output and the `/run` endpoint
/// body. Integer-only except scalar values, which use Rust's shortest
/// round-trip float rendering (deterministic across platforms).
pub fn results_json(r: &AccRunner) -> String {
    let mut out = String::from("{\"scalars\":{");
    let mut first = true;
    for h in &r.program().hosts {
        let v = r.scalar(&h.name).expect("declared scalar");
        if !first {
            out.push(',');
        }
        first = false;
        let _ = match v {
            gpsim::Value::F32(_) | gpsim::Value::F64(_) => {
                write!(out, "\"{}\":{}", h.name, fmt_f64(v.as_f64()))
            }
            _ => write!(out, "\"{}\":{}", h.name, v.as_i64()),
        };
    }
    let s = r.device().stats();
    let _ = write!(
        out,
        "}},\"stats\":{{\"launches\":{},\"kernel_cycles\":{},\"transfer_cycles\":{},\
         \"total_cycles\":{},\"bytes_h2d\":{},\"bytes_d2h\":{},\"hazards\":{}}}}}",
        s.launches,
        s.kernel_cycles,
        s.transfer_cycles,
        s.total_cycles(),
        s.bytes_h2d,
        s.bytes_d2h,
        s.totals.hazards
    );
    out
}

/// Render the redflow fusion-legality analysis of a compiled program as
/// human-readable text — the `uhacc-cc --fusion-plan` output.
pub fn analyze_text(hir: &AnalyzedProgram) -> String {
    accparse::redflow::fusion_plan_text(&accparse::redflow::fusion_plan(hir))
}

/// Render the redflow fusion plan as stable JSON — byte-identical between
/// `uhacc-cc --fusion-plan=json` and the daemon `/analyze` endpoint for
/// the same source, because both call this one function.
pub fn analyze_json(hir: &AnalyzedProgram) -> String {
    accparse::redflow::fusion_plan_json(&accparse::redflow::fusion_plan(hir))
}

/// Problem sizes the certification driver runs at. Two sizes so a
/// verdict is never an artifact of one loop-trip count lining up with
/// the launch shape; per region the *worse* verdict is kept.
pub const CERT_NS: [u64; 2] = [3, 5];

/// Launch dims the certification driver defaults to: big enough to
/// exercise gang/worker/vector combining (2 gangs × 2 workers × 64
/// lanes = two full warps per block), small enough that symbolic
/// execution of every thread is instant.
pub fn certify_dims() -> LaunchDims {
    LaunchDims {
        gangs: 2,
        workers: 2,
        vector: 64,
    }
}

/// Certify every region of `src`: run the program under the translation
/// validator at each problem size in [`CERT_NS`] and keep, per region
/// execution, the report with the worse verdict. The `session` hook runs
/// before each execution (cache attachment, etc.).
pub fn certify_reports(
    src: &str,
    req: &RunRequest,
    session: impl Fn(&mut AccRunner),
) -> Result<Vec<gpsim::CertReport>, AccError> {
    let mut merged: Vec<gpsim::CertReport> = Vec::new();
    for &n in &CERT_NS {
        let mut r = AccRunner::with_options(src, req.opts.clone(), req.dims, Device::default())?;
        session(&mut r);
        r.set_host_threads(req.host_threads);
        r.set_exec_tier(req.exec_tier);
        r.certify(true);
        r.bind_deterministic_inputs(n)?;
        r.run()?;
        let reports = r.take_cert_reports();
        if merged.is_empty() {
            merged = reports;
        } else {
            for (i, rep) in reports.into_iter().enumerate() {
                if let Some(m) = merged.get_mut(i) {
                    if rep.verdict.severity() > m.verdict.severity() {
                        *m = rep;
                    }
                } else {
                    merged.push(rep);
                }
            }
        }
    }
    Ok(merged)
}

/// Human-readable certification rendering — the `uhacc-cc --certify`
/// output: one line per region report plus a summary line.
pub fn cert_reports_text(reports: &[gpsim::CertReport]) -> String {
    let mut out = String::new();
    let mut counts = [0u64; 4];
    for r in reports {
        let _ = writeln!(out, "{}", r.render_text());
        counts[r.verdict.severity() as usize] += 1;
    }
    let _ = writeln!(
        out,
        "certify: {} region(s) — {} certified, {} modulo-reassoc, {} unknown, {} refuted",
        reports.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3]
    );
    out
}

/// Stable certification JSON — byte-identical between
/// `uhacc-cc --certify=json` and the daemon `/certify` endpoint for the
/// same source, because both call this one function.
pub fn cert_reports_json(reports: &[gpsim::CertReport]) -> String {
    let mut out = String::from("{\"schema_version\":1,\"reports\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push_str("]}");
    out
}

/// Shortest-round-trip float rendering that is always a valid JSON
/// number (`1.0` stays `1.0`, never `1`; non-finite values have no JSON
/// form and render as null).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".into();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Deterministically execute `src` and return [`results_json`]. The
/// `session` hook runs before execution (cache attachment, etc.).
pub fn run_json(
    src: &str,
    req: &RunRequest,
    session: impl FnOnce(&mut AccRunner),
) -> Result<String, AccError> {
    Ok(results_json(&run_session(src, req, session, false)?))
}

/// Deterministically execute `src` under the profiler and return the
/// stable profile JSON — byte-identical to
/// `uhacc-cc --profile=json --n <n>` for the same request.
pub fn profile_json(
    src: &str,
    req: &RunRequest,
    session: impl FnOnce(&mut AccRunner),
) -> Result<String, AccError> {
    Ok(run_session(src, req, session, true)?.profile_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int N; double s;\ndouble a[N];\ns = 0.0;\n#pragma acc parallel \
                       loop gang vector reduction(+:s) copyin(a)\nfor (int i = 0; i < N; \
                       i++) { s += a[i]; }\n";

    #[test]
    fn compile_text_renders_plan_and_kernel() {
        let hir = accparse::compile(SRC).unwrap();
        let opts = CompilerOptions::openuh();
        let out = compile_text(
            &hir,
            LaunchDims::paper(),
            "openuh",
            EmitFlags::default(),
            &direct_compiler(&hir, &opts),
        )
        .unwrap();
        assert!(out
            .text
            .starts_with("// uhacc-cc: 1 region(s), compiler = openuh"));
        assert!(out.text.contains("// ---- region 0 plan ----"));
        assert!(out.text.contains(".kernel"), "kernel disasm present");
        assert_eq!(out.verify_errors, 0);
        assert_eq!(out.regions.len(), 1);
    }

    #[test]
    fn run_json_is_deterministic_and_sane() {
        let req = RunRequest {
            n: 1000,
            ..Default::default()
        };
        let a = run_json(SRC, &req, |_| {}).unwrap();
        let b = run_json(SRC, &req, |_| {}).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"scalars\""), "{a}");
        assert!(a.contains("\"launches\""), "{a}");
        // Floats render as JSON numbers with a decimal point.
        assert!(a.contains("\"s\":"), "{a}");
    }

    #[test]
    fn analyze_json_is_byte_stable() {
        let src = "int N; double s; double v;\ndouble a[N];\ns = 0; v = 0;\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:s)\n\
             for (int i = 0; i < N; i++) { s += a[i]; }\n}\n\
             #pragma acc parallel copyin(a)\n{\n\
             #pragma acc loop gang reduction(+:v)\n\
             for (int i = 0; i < N; i++) { v += (a[i] - s / N) * (a[i] - s / N); }\n}";
        let hir = accparse::compile(src).unwrap();
        let a = analyze_json(&hir);
        assert_eq!(a, analyze_json(&hir));
        assert!(a.starts_with("{\"schema_version\":1,"), "{a}");
        assert!(a.contains("\"chains\":[[0,1]]"), "{a}");
        let t = analyze_text(&hir);
        assert!(t.contains("fusion plan: 2 region(s)"), "{t}");
    }

    #[test]
    fn fmt_f64_is_json() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-3.25), "-3.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        // Whatever Rust's shortest rendering is, the result must parse
        // back as the same f64 and contain a decimal point or exponent.
        let big = fmt_f64(1e300);
        assert_eq!(big.parse::<f64>().unwrap(), 1e300);
        assert!(big.contains('.') || big.contains('e'));
    }
}
