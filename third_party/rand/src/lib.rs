//! Offline stand-in for the `rand` crate covering the API subset this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and `f64` ranges. The generator is
//! splitmix64 — statistically fine for simulation inputs, deterministic
//! given a seed, and dependency-free.

use std::ops::Range;

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value interface.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A value uniformly distributed over `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        SampleRange::sample(range, self)
    }

    /// A uniformly random value of a sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        Range {
            start: self.start as f64,
            end: self.end as f64,
        }
        .sample(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )+};
}
int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types `Rng::gen` can produce (from 64 random bits).
pub trait Standard {
    /// Build a value from uniformly random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        bits as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use crate::{Rng, SeedableRng};

    /// The standard generator: splitmix64 in this stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
            let n = a.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            b.gen_range(3usize..17);
        }
    }
}
