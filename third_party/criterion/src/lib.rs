//! Offline stand-in for the `criterion` crate: the group / bench_with_input
//! API surface our benches use, backed by a simple wall-clock timer. No
//! statistics, plotting, or CLI — each benchmark runs `sample_size`
//! iterations after one warm-up call and prints mean time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this stand-in does one warm-up call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; sampling is controlled by `sample_size`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b, input);
        b.total = Duration::ZERO;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:?}/iter ({} iters)",
            self.name, id.0, mean, b.iters
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one call of `routine`, keeping its output alive until after the
    /// measurement so returns aren't optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.total += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group as a function list.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
