//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the API subset our tests use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter` / `prop_recursive` / `boxed`,
//! - `any::<T>()` for the primitive types, ranges, tuples, `Just`,
//!   `prop_oneof!`, `prop::collection::vec`, `prop::sample::select`, and
//!   `&str` regex-ish string generation,
//! - the `proptest!` macro with `#![proptest_config(..)]`, `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assume!` and `TestCaseError`.
//!
//! Semantics differ from real proptest in two deliberate ways: generation
//! is a deterministic splitmix64 stream seeded from the test name (fully
//! reproducible runs, no persistence files), and there is **no shrinking**
//! — a failing case reports the raw inputs instead. Both are acceptable
//! for the property suites in this repository and keep the stand-in small.

use std::fmt;
use std::rc::Rc;

pub mod test_runner {
    //! Config, error and RNG types (mirrors `proptest::test_runner`).

    use std::fmt;

    /// Subset of proptest's run configuration that our suites set.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Accepted for compatibility; this stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case disproved the property.
        Fail(String),
        /// The case was discarded (`prop_assume!` / filter miss).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A discarded case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so every test has its own
        /// reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A generator of values of one type (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated type. `Debug` so failing inputs can be reported.
    type Value: fmt::Debug;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<R: Strategy, F: Fn(Self::Value) -> R>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Discard values failing the predicate (re-draws up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    /// Recursive strategies: `recurse` receives the strategy built so far
    /// and wraps it one level deeper; levels are mixed 50/50 so generated
    /// depths vary up to `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = strategy::Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, R: Strategy, F: Fn(S::Value) -> R> Strategy for FlatMap<S, F> {
    type Value = R::Value;
    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 10000 draws: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    //! Strategy combinator types (mirrors `proptest::strategy`).

    use crate::TestRng;
    pub use crate::{BoxedStrategy, Filter, FlatMap, Just, Map, Strategy};
    use std::fmt;

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].0.generate_dyn(rng)
        }
    }
}

// ---- primitive strategies -------------------------------------------------

/// Marker returned by [`any`]; `Strategy` impls exist per primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the canonical strategy for a primitive type.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )+};
}
any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        // Printable ASCII most of the time, occasional wide scalar.
        if rng.below(8) == 0 {
            char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¤')
        } else {
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}

macro_rules! any_float {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Finite values over a wide dynamic range (no NaN/inf, as
                // with proptest's default float strategies).
                let mag = rng.unit_f64() * 10f64.powi(rng.below(61) as i32 - 30);
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                (sign * mag) as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (self.start as f64, self.end as f64);
                (a + rng.unit_f64() * (b - a)) as $t
            }
        }
    )+};
}
any_float!(f32, f64);

/// String-pattern strategy: real proptest compiles the `&str` as a regex;
/// this stand-in generates arbitrary non-control text (the only pattern our
/// suites use is `"\\PC*"`, i.e. "any non-control chars").
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(48) as usize;
        (0..len).map(|_| any::<char>().generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with strategy-generated elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (mirrors `proptest::sample`).

    use crate::{Strategy, TestRng};
    use std::fmt;

    /// Uniform choice from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `select(options)`: draw one of the given values.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs (mirrors `proptest::prelude`).

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias so `prop::collection::vec` etc. resolve.
    pub use crate as prop;
}

// Make `proptest::prelude::prop::collection` (i.e. this crate root) expose
// the submodules directly; they are declared above.

// ---- macros ---------------------------------------------------------------

/// Fail the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the enclosing property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// Fail the enclosing property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($item)),+])
    };
}

/// The property-test declaration macro. Supports an optional leading
/// `#![proptest_config(..)]` and any number of test functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let mut __inputs = String::new();
                #[allow(unreachable_code, unused_mut)]
                let __case = {
                    $(
                        let __v = $crate::Strategy::generate(&($strat), &mut rng);
                        __inputs.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &__v
                        ));
                        let $arg = __v;
                    )+
                    move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    }
                };
                let __outcome = match ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__case),
                ) {
                    Ok(r) => r,
                    Err(payload) => {
                        eprintln!(
                            "proptest case #{} of `{}` panicked with inputs:\n{}",
                            accepted + 1, stringify!($name), __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                };
                match __outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > 10 * config.cases + 1000 {
                            panic!(
                                "proptest `{}`: too many rejected cases ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` case #{} failed: {}\ninputs:\n{}",
                            stringify!($name), accepted + 1, msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(v in 3i32..17, u in 0usize..5) {
            prop_assert!((3..17).contains(&v));
            prop_assert!(u < 5);
        }

        #[test]
        fn oneof_and_vec(xs in prop::collection::vec(prop_oneof![Just(1u32), Just(2u32)], 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn assume_rejects(v in 0i32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn recursive_and_select(
            s in Just("leaf".to_string()).prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
            }),
            w in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(s.contains("leaf"));
            prop_assert!(w == "x" || w == "y");
        }
    }
}
